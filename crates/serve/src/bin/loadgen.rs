//! `bsched-loadgen` — drive a `bsched serve` daemon with concurrent
//! clients and record throughput/latency/cache behaviour.
//!
//! The request mix is the eight Perfect Club stand-ins (optionally
//! crossed with several schedulers). Each pass sends every request once,
//! spread round-robin over `--clients` connections; repeated passes are
//! how the content-addressed cache shows up in the numbers — the second
//! pass should be nearly all hits.
//!
//! Exit status is the verdict: non-zero when any response is dropped or
//! malformed, or when `--expect-hit-rate` is given and the second pass's
//! measured hit rate falls short.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bsched_analyze::json::{self, Json};
use bsched_serve::{Router, RouterConfig, Server, ServerConfig};

const USAGE: &str = "\
bsched-loadgen: load-test a bsched serve daemon

USAGE:
    bsched-loadgen [--addr HOST:PORT | --spawn] [OPTIONS]

OPTIONS:
    --addr HOST:PORT       connect to a running daemon
    --spawn                start an in-process daemon on an ephemeral port
    --clients N            concurrent client connections   [default: 4]
    --passes N             times to send the full mix      [default: 2]
    --runs N               simulation runs per request     [default: 10]
    --system SPEC          memory system                   [default: L80(2,5)]
    --schedulers A,B       scheduler specs to cross with   [default: balanced]
    --analyze              request analyzer diagnostics too
    --burst N              afterwards, pipeline N extra requests at once and
                           report how many were shed as overloaded
    --sweep C1,C2,...      afterwards, warm the cache then replay the mix at
                           each client-concurrency level, recording a
                           throughput/latency curve (e.g. --sweep 1,2,4,8,16)
    --expect-hit-rate PCT  fail unless 2nd-pass cache hit rate >= PCT
    --out FILE             write the JSON report here      [default: stdout]
    --workers N            (with --spawn) worker threads   [default: 4]
    --io-threads N         (with --spawn) event-loop IO threads [default: 2]
    --queue-cap N          (with --spawn) admission bound  [default: 64]
    --fleet N              spawn N shard daemons (child processes) behind an
                           in-process router and drive the router instead
    --serve-bin PATH       (with --fleet) the bsched binary to spawn shards
                           with                  [default: target/release/bsched]
    --cache-log-dir DIR    (with --fleet) per-shard cache-log directory
                           [default: a fresh directory under the temp dir]
    --kill-shard           (with --fleet) chaos scenario: SIGKILL one shard
                           mid-mix (assert zero failed requests), restart it,
                           and verify it warm-starts from its cache log to a
                           >=90% replay hit rate; adds a \"fleet\" report
                           section and fails the run if either gate misses
    --add-shard-at N       (with --fleet >= 2) membership chaos: at request
                           index N of a 3-pass serial mix, spawn a fresh shard
                           and add it to the live router (assert the re-homed
                           key fraction stays <= 1.5/members)
    --drain-shard-at N     (with --fleet >= 2) membership chaos: at request
                           index N, drain shard 0 through the router (fence,
                           flush, remove, stop) and verify its cache log is
                           reusable; with --add-shard-at this is one combined
                           scenario reported as a \"membership\" section,
                           failing the run when any request drops
    --scaleout N1,N2,...   spawn a fresh fleet at each size and measure
                           aggregate throughput on a compute-bound mix,
                           recording a \"scaleout\" curve (e.g. --scaleout
                           1,2,3); needs --fleet mode for the shard binary
";

struct Args {
    addr: Option<String>,
    spawn: bool,
    clients: usize,
    passes: usize,
    runs: u32,
    system: String,
    schedulers: Vec<String>,
    analyze: bool,
    burst: usize,
    sweep: Vec<usize>,
    expect_hit_rate: Option<f64>,
    out: Option<String>,
    workers: usize,
    io_threads: usize,
    queue_cap: usize,
    fleet: usize,
    serve_bin: String,
    cache_log_dir: Option<String>,
    kill_shard: bool,
    add_shard_at: Option<usize>,
    drain_shard_at: Option<usize>,
    scaleout: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spawn: false,
        clients: 4,
        passes: 2,
        runs: 10,
        system: "L80(2,5)".to_owned(),
        schedulers: vec!["balanced".to_owned()],
        analyze: false,
        burst: 0,
        sweep: Vec::new(),
        expect_hit_rate: None,
        out: None,
        workers: 4,
        io_threads: 2,
        queue_cap: 64,
        fleet: 0,
        serve_bin: "target/release/bsched".to_owned(),
        cache_log_dir: None,
        kill_shard: false,
        add_shard_at: None,
        drain_shard_at: None,
        scaleout: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--spawn" => args.spawn = true,
            "--clients" => args.clients = parse_num(&value("--clients")?, "--clients")?,
            "--passes" => args.passes = parse_num(&value("--passes")?, "--passes")?,
            "--runs" => args.runs = parse_num(&value("--runs")?, "--runs")?,
            "--system" => args.system = value("--system")?,
            "--schedulers" => {
                args.schedulers = value("--schedulers")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--analyze" => args.analyze = true,
            "--burst" => args.burst = parse_num(&value("--burst")?, "--burst")?,
            "--sweep" => {
                args.sweep = value("--sweep")?
                    .split(',')
                    .map(|c| parse_num::<usize>(c.trim(), "--sweep"))
                    .collect::<Result<_, _>>()?;
                if args.sweep.contains(&0) {
                    return Err("--sweep: concurrency levels must be at least 1".to_owned());
                }
            }
            "--expect-hit-rate" => {
                let raw = value("--expect-hit-rate")?;
                let pct: f64 = raw
                    .parse()
                    .map_err(|_| format!("--expect-hit-rate: bad percentage {raw:?}"))?;
                args.expect_hit_rate = Some(pct);
            }
            "--out" => args.out = Some(value("--out")?),
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--io-threads" => args.io_threads = parse_num(&value("--io-threads")?, "--io-threads")?,
            "--queue-cap" => args.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?,
            "--fleet" => args.fleet = parse_num(&value("--fleet")?, "--fleet")?,
            "--serve-bin" => args.serve_bin = value("--serve-bin")?,
            "--cache-log-dir" => args.cache_log_dir = Some(value("--cache-log-dir")?),
            "--kill-shard" => args.kill_shard = true,
            "--add-shard-at" => {
                args.add_shard_at = Some(parse_num(&value("--add-shard-at")?, "--add-shard-at")?);
            }
            "--drain-shard-at" => {
                args.drain_shard_at =
                    Some(parse_num(&value("--drain-shard-at")?, "--drain-shard-at")?);
            }
            "--scaleout" => {
                args.scaleout = value("--scaleout")?
                    .split(',')
                    .map(|c| parse_num::<usize>(c.trim(), "--scaleout"))
                    .collect::<Result<_, _>>()?;
                if args.scaleout.contains(&0) {
                    return Err("--scaleout: fleet sizes must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let sources =
        usize::from(args.spawn) + usize::from(args.addr.is_some()) + usize::from(args.fleet > 0);
    if sources != 1 {
        return Err("give exactly one of --addr, --spawn, or --fleet".to_owned());
    }
    if args.kill_shard && args.fleet < 2 {
        return Err("--kill-shard needs --fleet N with N >= 2 (someone must fail over)".to_owned());
    }
    if (args.add_shard_at.is_some() || args.drain_shard_at.is_some()) && args.fleet < 2 {
        return Err(
            "--add-shard-at/--drain-shard-at need --fleet N with N >= 2 (membership \
             changes against a one-shard ring prove nothing)"
                .to_owned(),
        );
    }
    if !args.scaleout.is_empty() && args.fleet == 0 {
        return Err("--scaleout needs --fleet mode (it spawns fleets with --serve-bin)".to_owned());
    }
    if args.clients == 0 || args.passes == 0 {
        return Err("--clients and --passes must be at least 1".to_owned());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: bad number {raw:?}"))
}

/// One request line plus the id a well-behaved response must echo.
struct Prepared {
    id: String,
    line: String,
}

fn request_mix(args: &Args, pass: usize) -> Vec<Prepared> {
    let mut mix = Vec::new();
    for bench in bsched_workload::perfect_club() {
        for sched in &args.schedulers {
            let id = format!("p{pass}-{}-{sched}", bench.name());
            let line = format!(
                "{{\"op\":\"schedule\",\"id\":{},\"benchmark\":{},\"system\":{},\
                 \"scheduler\":{},\"runs\":{},\"analyze\":{}}}",
                json::string(&id),
                json::string(bench.name()),
                json::string(&args.system),
                json::string(sched),
                args.runs,
                args.analyze
            );
            mix.push(Prepared { id, line });
        }
    }
    mix
}

#[derive(Default, Clone)]
struct PassOutcome {
    ok: u64,
    cached: u64,
    /// Responses carrying the router's `degraded:true` annotation —
    /// answered, but by a failover shard or after retries.
    degraded: u64,
    errors: u64,
    overloaded: u64,
    timeouts: u64,
    dropped: u64,
    malformed: u64,
    latencies_us: Vec<u64>,
}

/// Connects with bounded retries and backoff: a daemon still binding
/// its socket (or a shard mid-restart) refuses connections for a few
/// milliseconds, which must not fail a whole run. When the daemon
/// really is absent the caller gets one clean, typed error instead of
/// a raw `ECONNREFUSED` bubbling up.
fn connect_with_retry(addr: &str) -> std::io::Result<TcpStream> {
    const ATTEMPTS: u32 = 8;
    let mut delay = Duration::from_millis(25);
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < ATTEMPTS {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(400));
        }
    }
    Err(std::io::Error::other(format!(
        "no daemon accepting connections at {addr} after {ATTEMPTS} attempts \
         (last error: {})",
        last.map_or_else(|| "none".to_owned(), |e| e.to_string())
    )))
}

fn classify(outcome: &mut PassOutcome, expected_id: &str, line: &str) {
    // The router splices its annotation at the end of the line, past
    // the payload, so it is counted from the full line (the substring
    // cannot occur inside schedule text or eval numbers).
    if line.contains("\"degraded\":true") {
        outcome.degraded += 1;
    }
    // Fast path: the id/status/cached fields live in the fixed response
    // envelope, so substring probes classify a response in ~1µs where a
    // full parse of a 5KB payload costs ~350µs — on a small box the
    // parse dominates the whole benchmark and measures the client, not
    // the server. Probe only the envelope — the prefix before the
    // `"schedule"` payload — so payload bytes that happen to contain
    // e.g. `"cached":true` can never masquerade as envelope fields.
    // Anything that doesn't match the envelope exactly falls back to a
    // strict full parse.
    let envelope = line.find(",\"schedule\":").map_or(line, |at| &line[..at]);
    let id_probe = format!("\"id\":{}", json::string(expected_id));
    if envelope.starts_with('{') && envelope.contains(&id_probe) {
        match extract_status(envelope) {
            Some("ok") => {
                outcome.ok += 1;
                if envelope.contains("\"cached\":true") {
                    outcome.cached += 1;
                }
                return;
            }
            Some("error") => {
                outcome.errors += 1;
                return;
            }
            Some("overloaded") => {
                outcome.overloaded += 1;
                return;
            }
            Some("timeout") => {
                outcome.timeouts += 1;
                return;
            }
            _ => {}
        }
    }
    let Some(v) = json::parse(line) else {
        outcome.malformed += 1;
        return;
    };
    if v.get("id").and_then(Json::as_str) != Some(expected_id) {
        outcome.malformed += 1;
        return;
    }
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => {
            outcome.ok += 1;
            if v.get("cached").and_then(Json::as_bool) == Some(true) {
                outcome.cached += 1;
            }
        }
        Some("error") => outcome.errors += 1,
        Some("overloaded") => outcome.overloaded += 1,
        Some("timeout") => outcome.timeouts += 1,
        _ => outcome.malformed += 1,
    }
}

/// Pulls the `"status":"…"` value out of a response line without
/// parsing the payload.
fn extract_status(line: &str) -> Option<&str> {
    let at = line.find("\"status\":\"")?;
    let rest = &line[at + "\"status\":\"".len()..];
    rest.split('"').next()
}

/// Sends `requests` over one connection, one at a time, timing each
/// round trip.
fn run_client(addr: &str, requests: &[Prepared]) -> std::io::Result<PassOutcome> {
    let mut outcome = PassOutcome::default();
    if requests.is_empty() {
        return Ok(outcome);
    }
    let stream = connect_with_retry(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut frame = Vec::new();
    for (idx, req) in requests.iter().enumerate() {
        let started = Instant::now();
        // One write syscall per request: splitting the newline into its
        // own segment trips client-side Nagle against the server's
        // delayed ACK (~40ms stall on an incomplete line).
        frame.clear();
        frame.extend_from_slice(req.line.as_bytes());
        frame.push(b'\n');
        writer.write_all(&frame)?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            // Server hung up: this request and everything after it on
            // this connection got no answer.
            outcome.dropped += u64::try_from(requests.len() - idx).unwrap_or(u64::MAX);
            break;
        }
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        outcome.latencies_us.push(micros);
        classify(&mut outcome, &req.id, line.trim());
    }
    Ok(outcome)
}

fn fetch_stats(addr: &str) -> Result<Json, String> {
    let stream = connect_with_retry(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    writer
        .write_all(b"/stats\n")
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send /stats: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read /stats: {e}"))?;
    json::parse(line.trim()).ok_or_else(|| format!("malformed /stats response: {line:?}"))
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Pipelines `n` requests down one connection without reading, then
/// reads every response — the over-capacity probe. Returns
/// (ok, overloaded, other, dropped).
fn run_burst(addr: &str, args: &Args, n: usize) -> std::io::Result<(u64, u64, u64, u64)> {
    let stream = connect_with_retry(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mix = request_mix(args, 9999);
    let mut frame = Vec::new();
    for i in 0..n {
        let req = &mix[i % mix.len()];
        frame.extend_from_slice(req.line.as_bytes());
        frame.push(b'\n');
    }
    writer.write_all(&frame)?;
    writer.flush()?;
    let (mut ok, mut overloaded, mut other, mut dropped) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..n {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            dropped += 1;
            continue;
        }
        match json::parse(line.trim())
            .as_ref()
            .and_then(|v| v.get("status"))
            .and_then(Json::as_str)
        {
            Some("ok") => ok += 1,
            Some("overloaded") => overloaded += 1,
            _ => other += 1,
        }
    }
    Ok((ok, overloaded, other, dropped))
}

/// One point on the concurrency-sweep curve.
struct SweepPoint {
    concurrency: usize,
    requests: usize,
    outcome: PassOutcome,
    wall_s: f64,
    throughput_rps: f64,
}

impl SweepPoint {
    fn render(&self) -> String {
        let o = &self.outcome;
        format!(
            "{{\"concurrency\":{},\"requests\":{},\"answered\":{},\"ok\":{},\
             \"cached\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\
             \"dropped\":{},\"malformed\":{},\"wall_s\":{:.6},\
             \"throughput_rps\":{:.3},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.concurrency,
            self.requests,
            o.latencies_us.len(),
            o.ok,
            o.cached,
            o.errors,
            o.overloaded,
            o.timeouts,
            o.dropped,
            o.malformed,
            self.wall_s,
            self.throughput_rps,
            percentile(&o.latencies_us, 0.50),
            percentile(&o.latencies_us, 0.95),
            percentile(&o.latencies_us, 0.99),
        )
    }
}

/// The concurrency sweep: warm the cache with one serial pass of the
/// mix, then replay the full mix once per connection at each
/// concurrency level, so the curve measures the serving path (framing,
/// admission, cache, completion plumbing) rather than first-touch
/// compilation.
fn run_sweep(addr: &str, args: &Args, levels: &[usize]) -> Result<Vec<SweepPoint>, String> {
    let warm = request_mix(args, 0);
    let warmed = run_client(addr, &warm).map_err(|e| format!("sweep warm-up: {e}"))?;
    if warmed.dropped > 0 || warmed.malformed > 0 {
        return Err("sweep warm-up pass lost responses".to_owned());
    }
    let mut points = Vec::new();
    for (at, &concurrency) in levels.iter().enumerate() {
        // Unique pass tag per level keeps request ids unambiguous in
        // logs; cache keys ignore ids, so hits still land.
        let mix = request_mix(args, at + 1);
        let started = Instant::now();
        let outcomes: Vec<PassOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|_| scope.spawn(|| run_client(addr, &mix)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(outcome)) => outcome,
                    Ok(Err(e)) => {
                        eprintln!("bsched-loadgen: sweep client error: {e}");
                        PassOutcome {
                            malformed: 1,
                            ..PassOutcome::default()
                        }
                    }
                    Err(_) => PassOutcome {
                        malformed: 1,
                        ..PassOutcome::default()
                    },
                })
                .collect()
        });
        let wall = started.elapsed();
        let mut merged = PassOutcome::default();
        for o in outcomes {
            merged.ok += o.ok;
            merged.cached += o.cached;
            merged.degraded += o.degraded;
            merged.errors += o.errors;
            merged.overloaded += o.overloaded;
            merged.timeouts += o.timeouts;
            merged.dropped += o.dropped;
            merged.malformed += o.malformed;
            merged.latencies_us.extend(o.latencies_us);
        }
        merged.latencies_us.sort_unstable();
        #[allow(clippy::cast_precision_loss)]
        let throughput = if wall.as_secs_f64() > 0.0 {
            merged.latencies_us.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let point = SweepPoint {
            concurrency,
            requests: mix.len() * concurrency,
            outcome: merged,
            wall_s: wall.as_secs_f64(),
            throughput_rps: throughput,
        };
        eprintln!(
            "sweep c={concurrency}: {}/{} answered in {:.3}s ({throughput:.1} req/s), \
             p99={}us",
            point.outcome.latencies_us.len(),
            point.requests,
            point.wall_s,
            percentile(&point.outcome.latencies_us, 0.99),
        );
        points.push(point);
    }
    Ok(points)
}

/// A spawned fleet: N shard daemons (child processes, each with its own
/// cache log) behind an in-process [`Router`] the load is driven
/// through.
struct Fleet {
    children: Vec<Option<std::process::Child>>,
    shard_addrs: Vec<String>,
    ports: Vec<u16>,
    log_paths: Vec<PathBuf>,
    router: Option<Router>,
    serve_bin: String,
    log_dir: PathBuf,
}

fn free_port() -> std::io::Result<u16> {
    // Bind-then-drop: the port stays free long enough for the child to
    // claim it (a small race, acceptable for a local bench fleet).
    Ok(std::net::TcpListener::bind("127.0.0.1:0")?
        .local_addr()?
        .port())
}

fn spawn_shard(
    serve_bin: &str,
    port: u16,
    log: &std::path::Path,
) -> Result<std::process::Child, String> {
    std::process::Command::new(serve_bin)
        .args([
            "serve",
            "--listen",
            &format!("127.0.0.1:{port}"),
            "--cache-log",
            &log.display().to_string(),
            "--workers",
            "2",
            "--io-threads",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .spawn()
        .map_err(|e| {
            format!(
                "spawn shard {serve_bin:?}: {e} \
                 (build it with `cargo build --release` or pass --serve-bin)"
            )
        })
}

/// Polls until the daemon at `addr` answers a protocol-level ping.
fn wait_for_daemon(addr: &str, deadline: Duration) -> Result<(), String> {
    let started = Instant::now();
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            if stream.write_all(b"{\"op\":\"ping\"}\n").is_ok() {
                let mut line = String::new();
                if BufReader::new(stream).read_line(&mut line).is_ok()
                    && line.contains("\"pong\":true")
                {
                    return Ok(());
                }
            }
        }
        if started.elapsed() > deadline {
            return Err(format!(
                "daemon at {addr} did not come up within {deadline:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

impl Fleet {
    fn start(
        count: usize,
        serve_bin: &str,
        cache_log_dir: Option<&str>,
        tag: &str,
    ) -> Result<Fleet, String> {
        let dir = match cache_log_dir {
            Some(d) => PathBuf::from(d),
            None => std::env::temp_dir().join(format!("bsched-{tag}-{}", std::process::id())),
        };
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut fleet = Fleet {
            children: Vec::new(),
            shard_addrs: Vec::new(),
            ports: Vec::new(),
            log_paths: Vec::new(),
            router: None,
            serve_bin: serve_bin.to_owned(),
            log_dir: dir.clone(),
        };
        for _ in 0..count {
            fleet.spawn_extra()?;
        }
        for addr in &fleet.shard_addrs {
            wait_for_daemon(addr, Duration::from_secs(10))?;
        }
        let router = Router::start(RouterConfig {
            listen: "127.0.0.1:0".to_owned(),
            shards: fleet.shard_addrs.clone(),
            ..RouterConfig::default()
        })
        .map_err(|e| format!("start router: {e}"))?;
        eprintln!(
            "fleet: {count} shards behind router {} (logs in {})",
            router.local_addr(),
            dir.display()
        );
        fleet.router = Some(router);
        Ok(fleet)
    }

    /// Spawns one more shard daemon (fresh port, fresh cache log) and
    /// waits for it to answer pings. The shard is NOT told to the
    /// router — membership changes go through the `add-shard` control
    /// op, which is the point of the chaos scenario. Returns its addr.
    fn spawn_extra(&mut self) -> Result<String, String> {
        let i = self.children.len();
        let port = free_port().map_err(|e| format!("pick shard port: {e}"))?;
        let log = self.log_dir.join(format!("shard-{i}.log"));
        let child = spawn_shard(&self.serve_bin, port, &log)?;
        let addr = format!("127.0.0.1:{port}");
        self.children.push(Some(child));
        self.shard_addrs.push(addr.clone());
        self.ports.push(port);
        self.log_paths.push(log);
        if self.router.is_some() {
            wait_for_daemon(&addr, Duration::from_secs(10))?;
        }
        Ok(addr)
    }

    /// Waits for a shard child to exit on its own (the drain path: the
    /// router sends it `op:"shutdown"`, it flushes and leaves). Unlike
    /// [`kill_shard`](Fleet::kill_shard) nothing is forced — a shard
    /// that lingers past the deadline is an error.
    fn wait_shard_exit(&mut self, index: usize, deadline: Duration) -> Result<(), String> {
        let child = self.children[index]
            .as_mut()
            .ok_or_else(|| format!("shard {index} is not running"))?;
        let started = Instant::now();
        loop {
            match child.try_wait() {
                Ok(Some(_)) => {
                    self.children[index] = None;
                    return Ok(());
                }
                Ok(None) => {}
                Err(e) => return Err(format!("wait for shard {index}: {e}")),
            }
            if started.elapsed() > deadline {
                return Err(format!(
                    "shard {index} still running {deadline:?} after its drain"
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn router_addr(&self) -> String {
        self.router
            .as_ref()
            .expect("router running")
            .local_addr()
            .to_string()
    }

    /// SIGKILLs one shard — no drain, no goodbye, exactly the failure
    /// the persistence log and the router's failover exist for.
    fn kill_shard(&mut self, index: usize) -> Result<(), String> {
        let child = self.children[index]
            .as_mut()
            .ok_or_else(|| format!("shard {index} is not running"))?;
        child
            .kill()
            .map_err(|e| format!("kill shard {index}: {e}"))?;
        let _ = child.wait();
        self.children[index] = None;
        Ok(())
    }

    /// Restarts a killed shard on its original port with its original
    /// cache log, so it warm-starts from whatever it flushed before
    /// dying.
    fn restart_shard(&mut self, index: usize) -> Result<(), String> {
        if self.children[index].is_some() {
            return Err(format!("shard {index} is already running"));
        }
        let child = spawn_shard(&self.serve_bin, self.ports[index], &self.log_paths[index])?;
        self.children[index] = Some(child);
        wait_for_daemon(&self.shard_addrs[index], Duration::from_secs(10))
    }

    fn shutdown(&mut self) {
        if let Some(router) = self.router.take() {
            router.begin_shutdown();
            router.join();
        }
        for child in self.children.iter_mut().filter_map(Option::as_mut) {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls the router's merged `/stats` until `want(shards_down)` holds.
fn wait_for_shards_down(
    router_addr: &str,
    deadline: Duration,
    want: impl Fn(u64) -> bool,
) -> Result<u64, String> {
    let started = Instant::now();
    loop {
        let down = stat_u64(&fetch_stats(router_addr)?, "shards_down");
        if want(down) {
            return Ok(down);
        }
        if started.elapsed() > deadline {
            return Err(format!(
                "router never reached the expected shard liveness (shards_down={down} \
                 after {deadline:?})"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The chaos scenario behind `--kill-shard` (DESIGN.md §12): SIGKILL a
/// shard mid-mix, assert zero failed client requests, watch the merged
/// stats notice the outage, restart the shard from its cache log, and
/// verify the fleet replays the whole mix at a warm (≥90%) hit rate —
/// which only happens if the restarted shard actually recovered its
/// cache, since the router routes its keys straight back to it.
fn run_fleet_chaos(
    fleet: &mut Fleet,
    args: &Args,
    router_addr: &str,
) -> Result<(String, bool), String> {
    let victim = 0usize;
    let mix = request_mix(args, 900);
    let half = mix.len() / 2;

    // Kill phase: half the mix against a healthy fleet, SIGKILL, the
    // other half against the wounded one.
    let mut kill_outcome = run_client(router_addr, &mix[..half])
        .map_err(|e| format!("kill-phase (before kill): {e}"))?;
    fleet.kill_shard(victim)?;
    eprintln!(
        "fleet: SIGKILLed shard {victim} ({})",
        fleet.shard_addrs[victim]
    );
    let after = run_client(router_addr, &mix[half..])
        .map_err(|e| format!("kill-phase (after kill): {e}"))?;
    kill_outcome.ok += after.ok;
    kill_outcome.cached += after.cached;
    kill_outcome.degraded += after.degraded;
    kill_outcome.errors += after.errors;
    kill_outcome.overloaded += after.overloaded;
    kill_outcome.timeouts += after.timeouts;
    kill_outcome.dropped += after.dropped;
    kill_outcome.malformed += after.malformed;
    kill_outcome.latencies_us.extend(after.latencies_us);
    let kill_total = u64::try_from(mix.len()).unwrap_or(u64::MAX);
    let kill_ok = kill_outcome.ok == kill_total
        && kill_outcome.dropped == 0
        && kill_outcome.malformed == 0
        && kill_outcome.errors == 0
        && kill_outcome.timeouts == 0
        && kill_outcome.overloaded == 0;
    eprintln!(
        "fleet: kill phase {}/{} ok ({} degraded), errors={} dropped={} malformed={}",
        kill_outcome.ok,
        kill_total,
        kill_outcome.degraded,
        kill_outcome.errors,
        kill_outcome.dropped,
        kill_outcome.malformed
    );

    // The merged stats must report the outage.
    let down_observed =
        wait_for_shards_down(router_addr, Duration::from_secs(5), |down| down >= 1).is_ok();
    eprintln!("fleet: router reports shards_down>=1: {down_observed}");

    // Restart from the same cache log; the prober rehabilitates it.
    let restart_started = Instant::now();
    fleet.restart_shard(victim)?;
    let recovered =
        wait_for_shards_down(router_addr, Duration::from_secs(10), |down| down == 0).is_ok();
    let recovery_s = restart_started.elapsed().as_secs_f64();
    let warm_entries = stat_u64(&fetch_stats(&fleet.shard_addrs[victim])?, "cache_entries");
    eprintln!(
        "fleet: shard {victim} restarted in {recovery_s:.2}s with {warm_entries} \
         warm-started cache entries (recovered={recovered})"
    );

    // Warm replay: every key routes back to its (now live) owner; the
    // fleet-wide hit rate only clears 90% if the restarted shard's
    // slice came back warm.
    let hits_before = stat_u64(&fetch_stats(router_addr)?, "cache_hits");
    let replay = request_mix(args, 901);
    let replay_outcome =
        run_client(router_addr, &replay).map_err(|e| format!("warm replay: {e}"))?;
    let hits_after = stat_u64(&fetch_stats(router_addr)?, "cache_hits");
    #[allow(clippy::cast_precision_loss)]
    let warm_hit_rate = if replay.is_empty() {
        0.0
    } else {
        hits_after.saturating_sub(hits_before) as f64 / replay.len() as f64
    };
    let replay_total = u64::try_from(replay.len()).unwrap_or(u64::MAX);
    let warm_ok = replay_outcome.ok == replay_total
        && replay_outcome.dropped == 0
        && replay_outcome.malformed == 0
        && warm_hit_rate >= 0.90;
    eprintln!(
        "fleet: warm replay {}/{} ok, hit_rate={:.1}%",
        replay_outcome.ok,
        replay_total,
        warm_hit_rate * 100.0
    );

    let final_merged = fetch_stats(router_addr)?;
    let passed = kill_ok && down_observed && recovered && warm_ok;
    let json = format!(
        "{{\"shards\":{},\"killed_shard\":{victim},\
         \"kill_phase\":{{\"requests\":{kill_total},\"ok\":{},\"degraded\":{},\
         \"errors\":{},\"overloaded\":{},\"timeouts\":{},\"dropped\":{},\"malformed\":{}}},\
         \"shard_down_observed\":{down_observed},\"recovered\":{recovered},\
         \"recovery_s\":{recovery_s:.3},\"warm_start_entries\":{warm_entries},\
         \"warm_replay\":{{\"requests\":{replay_total},\"ok\":{},\"degraded\":{},\
         \"hit_rate\":{warm_hit_rate:.4}}},\
         \"failovers\":{},\"retries\":{},\"passed\":{passed}}}",
        fleet.shard_addrs.len(),
        kill_outcome.ok,
        kill_outcome.degraded,
        kill_outcome.errors,
        kill_outcome.overloaded,
        kill_outcome.timeouts,
        kill_outcome.dropped,
        kill_outcome.malformed,
        replay_outcome.ok,
        replay_outcome.degraded,
        stat_u64(&final_merged, "failovers"),
        stat_u64(&final_merged, "retries"),
    );
    Ok((json, passed))
}

/// Sends one membership control op to the router and returns the parsed
/// response. Draining can wait on in-flight work server-side, so the
/// read deadline is generous.
fn control_op(router_addr: &str, line: &str) -> Result<Json, String> {
    let stream = connect_with_retry(router_addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("control op: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send control op: {e}"))?;
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read control response: {e}"))?;
    json::parse(response.trim()).ok_or_else(|| format!("malformed control response: {response:?}"))
}

/// Blanks volatile fields so two responses for the same cached request
/// compare byte-for-byte: `service_us` is wall-clock and differs per
/// hit.
fn normalize_response(line: &str) -> String {
    const NEEDLE: &str = "\"service_us\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(NEEDLE) {
        let tail = &rest[at + NEEDLE.len()..];
        let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
        out.push_str(&rest[..at + NEEDLE.len()]);
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Proves streamed responses reassemble bit-identical to plain ones
/// through the router: prime the cache with a plain request, replay it
/// plain (now a hit), replay it streamed with the same id, and compare
/// the reassembled bytes against the plain hit after blanking
/// `service_us`.
fn stream_identity_check(addr: &str, args: &Args) -> Result<bool, String> {
    let bench = bsched_workload::perfect_club()
        .into_iter()
        .next()
        .ok_or("no benchmarks")?;
    let fields = format!(
        "\"id\":\"stream-check\",\"benchmark\":{},\"system\":{},\"scheduler\":\"balanced\",\
         \"runs\":{},\"analyze\":false",
        json::string(bench.name()),
        json::string(&args.system),
        args.runs
    );
    let stream = connect_with_retry(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut ask = |line: String| -> Result<String, String> {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("stream check send: {e}"))?;
        let mut response = String::new();
        if reader
            .read_line(&mut response)
            .map_err(|e| format!("stream check read: {e}"))?
            == 0
        {
            return Err("stream check: connection closed".to_owned());
        }
        Ok(response.trim().to_owned())
    };
    // First plain request computes (cached:false); second is the
    // cache-hit reference the streamed replay must match.
    let _ = ask(format!("{{\"op\":\"schedule\",{fields}}}"))?;
    let plain = ask(format!("{{\"op\":\"schedule\",{fields}}}"))?;
    writer
        .write_all(format!("{{\"op\":\"schedule\",{fields},\"stream\":true}}\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("stream check send: {e}"))?;
    let mut chunks = Vec::new();
    let terminal = loop {
        let mut line = String::new();
        if reader
            .read_line(&mut line)
            .map_err(|e| format!("stream check read: {e}"))?
            == 0
        {
            return Err("stream check: connection closed mid-stream".to_owned());
        }
        let line = line.trim().to_owned();
        if bsched_serve::is_stream_end(&line) {
            break line;
        }
        if !bsched_serve::is_chunk_line(&line) {
            eprintln!("stream check: unexpected line in stream: {line}");
            return Ok(false);
        }
        chunks.push(line);
    };
    let Some(reassembled) = bsched_serve::reassemble_stream(&chunks, &terminal) else {
        eprintln!("stream check: terminal line did not reassemble");
        return Ok(false);
    };
    let identical = normalize_response(&reassembled) == normalize_response(&plain);
    if !identical {
        eprintln!(
            "stream check: reassembled response differs from the plain one\n  plain: {}…\n  \
             reassembled: {}…",
            &plain[..plain.len().min(160)],
            &reassembled[..reassembled.len().min(160)],
        );
    }
    Ok(identical)
}

/// The membership chaos scenario behind `--add-shard-at`/
/// `--drain-shard-at` (DESIGN.md §14): a serial 3-pass mix through the
/// router with live membership changes injected at the given request
/// indices. Every request must be answered `ok` — adds and drains are
/// invisible to clients — the add must re-home only ~1/N of the key
/// space, and the drained shard must exit on its own with a reusable
/// cache log.
#[allow(clippy::too_many_lines)]
fn run_membership_chaos(
    fleet: &mut Fleet,
    args: &Args,
    router_addr: &str,
) -> Result<(String, bool), String> {
    let mut mix = Vec::new();
    for pass in [950, 951, 952] {
        mix.extend(request_mix(args, pass));
    }
    let add_at = args.add_shard_at.map(|n| n.min(mix.len()));
    let drain_at = args.drain_shard_at.map(|n| n.min(mix.len()));

    let mut outcome = PassOutcome::default();
    let mut added: Option<(String, f64, u64)> = None; // (addr, rehomed, members)
    let mut drained: Option<(bool, bool)> = None; // (drained ok, child exited)
    let victim = 0usize;
    let before_members = u64::try_from(fleet.shard_addrs.len()).unwrap_or(u64::MAX);

    {
        let stream = connect_with_retry(router_addr).map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = stream;
        let mut frame = Vec::new();
        for idx in 0..=mix.len() {
            if add_at == Some(idx) {
                let addr = fleet.spawn_extra()?;
                let response = control_op(
                    router_addr,
                    &format!("{{\"op\":\"add-shard\",\"addr\":{}}}", json::string(&addr)),
                )?;
                let rehomed = response
                    .get("rehomed_fraction")
                    .and_then(Json::as_f64)
                    .unwrap_or(1.0);
                let members = response.get("members").and_then(Json::as_u64).unwrap_or(0);
                eprintln!(
                    "membership: added {addr} at request {idx} (members={members}, \
                     rehomed_fraction={rehomed:.4})"
                );
                added = Some((addr, rehomed, members));
            }
            if drain_at == Some(idx) {
                let addr = fleet.shard_addrs[victim].clone();
                let response = control_op(
                    router_addr,
                    &format!(
                        "{{\"op\":\"drain-shard\",\"addr\":{},\"stop\":true}}",
                        json::string(&addr)
                    ),
                )?;
                let ok = response.get("drained").and_then(Json::as_str) == Some(addr.as_str())
                    && response.get("stopped").and_then(Json::as_bool) == Some(true);
                let exited = fleet
                    .wait_shard_exit(victim, Duration::from_secs(10))
                    .is_ok();
                eprintln!(
                    "membership: drained {addr} at request {idx} (accepted={ok}, exited={exited})"
                );
                drained = Some((ok, exited));
            }
            let Some(req) = mix.get(idx) else { break };
            frame.clear();
            frame.extend_from_slice(req.line.as_bytes());
            frame.push(b'\n');
            writer
                .write_all(&frame)
                .map_err(|e| format!("membership mix send: {e}"))?;
            let started = Instant::now();
            let mut line = String::new();
            if reader
                .read_line(&mut line)
                .map_err(|e| format!("membership mix read: {e}"))?
                == 0
            {
                outcome.dropped += u64::try_from(mix.len() - idx).unwrap_or(u64::MAX);
                break;
            }
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            outcome.latencies_us.push(micros);
            classify(&mut outcome, &req.id, line.trim());
        }
    }

    let total = u64::try_from(mix.len()).unwrap_or(u64::MAX);
    let requests_ok = outcome.ok == total
        && outcome.dropped == 0
        && outcome.malformed == 0
        && outcome.errors == 0
        && outcome.timeouts == 0
        && outcome.overloaded == 0;
    eprintln!(
        "membership: mix {}/{total} ok ({} degraded), errors={} dropped={} malformed={}",
        outcome.ok, outcome.degraded, outcome.errors, outcome.dropped, outcome.malformed
    );

    // Re-homed fraction gate: adding one member to an N-shard ring may
    // only move the keys the new member now owns (~1/N of the space,
    // 1.5/N with sampling slack).
    let (rehomed, rehome_ok) = match &added {
        Some((_, rehomed, members)) => {
            #[allow(clippy::cast_precision_loss)]
            let bound = 1.5 / (*members).max(1) as f64;
            (*rehomed, *rehomed <= bound && *rehomed > 0.0)
        }
        None => (0.0, add_at.is_none()),
    };
    let drain_ok = match drained {
        Some((ok, exited)) => ok && exited,
        None => drain_at.is_none(),
    };

    // The drained shard flushed its cache log on the way out; a fresh
    // in-process server warm-starting from that log proves the flush.
    let log_reusable = if drain_at.is_some() && drain_ok {
        let reuse = Server::start(ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            cache_log: Some(fleet.log_paths[victim].display().to_string()),
            workers: 1,
            io_threads: 1,
            ..ServerConfig::default()
        })
        .map_err(|e| format!("reuse drained cache log: {e}"))?;
        let entries = stat_u64(
            &fetch_stats(&reuse.local_addr().to_string())?,
            "cache_entries",
        );
        reuse.begin_shutdown();
        reuse.join();
        eprintln!("membership: drained shard's log warm-starts {entries} entries");
        entries >= 1
    } else {
        drain_at.is_none()
    };

    let stream_identical = stream_identity_check(router_addr, args)?;
    eprintln!("membership: streamed == plain through the router: {stream_identical}");

    let final_merged = fetch_stats(router_addr)?;
    let passed = requests_ok && rehome_ok && drain_ok && log_reusable && stream_identical;
    let json = format!(
        "{{\"initial_shards\":{before_members},\"requests\":{total},\"ok\":{},\
         \"degraded\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\"dropped\":{},\
         \"malformed\":{},\"added\":{},\"rehomed_fraction\":{rehomed:.4},\
         \"rehome_ok\":{rehome_ok},\"drained\":{},\"drain_ok\":{drain_ok},\
         \"drained_log_reusable\":{log_reusable},\"stream_identical\":{stream_identical},\
         \"members_now\":{},\"passed\":{passed}}}",
        outcome.ok,
        outcome.degraded,
        outcome.errors,
        outcome.overloaded,
        outcome.timeouts,
        outcome.dropped,
        outcome.malformed,
        added
            .as_ref()
            .map_or_else(|| "null".to_owned(), |(a, _, _)| json::string(a)),
        drain_at.map_or_else(
            || "null".to_owned(),
            |_| json::string(&fleet.shard_addrs[victim])
        ),
        stat_u64(&final_merged, "members"),
    );
    Ok((json, passed))
}

/// One point on the `--scaleout` aggregate-throughput curve.
struct ScalePoint {
    shards: usize,
    clients: usize,
    requests: usize,
    stall_us: u64,
    outcome: PassOutcome,
    wall_s: f64,
    throughput_rps: f64,
}

impl ScalePoint {
    fn render(&self) -> String {
        let o = &self.outcome;
        format!(
            "{{\"shards\":{},\"clients\":{},\"requests\":{},\"stall_us\":{},\"ok\":{},\
             \"cached\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\"dropped\":{},\
             \"malformed\":{},\"wall_s\":{:.6},\"throughput_rps\":{:.3},\
             \"p50_us\":{},\"p99_us\":{}}}",
            self.shards,
            self.clients,
            self.requests,
            self.stall_us,
            o.ok,
            o.cached,
            o.errors,
            o.overloaded,
            o.timeouts,
            o.dropped,
            o.malformed,
            self.wall_s,
            self.throughput_rps,
            percentile(&o.latencies_us, 0.50),
            percentile(&o.latencies_us, 0.99),
        )
    }
}

/// Request mix for the scale-out curve: every request carries a
/// distinct seed (240 distinct cache keys per point, spread across the
/// ring by rendezvous hashing). With `stall_us` > 0 each request also
/// carries a simulated service stall, which the shard sleeps on a
/// worker thread before consulting its cache.
fn scaleout_mix(
    args: &Args,
    shards: usize,
    per_client: usize,
    clients: usize,
    stall_us: u64,
) -> Vec<Vec<Prepared>> {
    let club = bsched_workload::perfect_club();
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let n = c * per_client + i;
                    let bench = &club[n % club.len()];
                    let seed = 100_000 * shards + n;
                    let id = format!("scale{shards}-c{c}-{n}");
                    let stall = if stall_us > 0 {
                        format!(",\"stall_us\":{stall_us}")
                    } else {
                        String::new()
                    };
                    let line = format!(
                        "{{\"op\":\"schedule\",\"id\":{},\"benchmark\":{},\"system\":{},\
                         \"scheduler\":\"balanced\",\"runs\":{},\"seed\":{seed},\
                         \"analyze\":false{stall}}}",
                        json::string(&id),
                        json::string(bench.name()),
                        json::string(&args.system),
                        args.runs,
                    );
                    Prepared { id, line }
                })
                .collect()
        })
        .collect()
}

/// Drives one full mix (one thread per client) and merges the
/// per-client outcomes into the given list.
fn drive_mix(addr: &str, per_client: &[Vec<Prepared>]) -> Vec<PassOutcome> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .iter()
            .map(|reqs| {
                let addr = addr.to_owned();
                scope.spawn(move || run_client(&addr, reqs))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(e)) => {
                    eprintln!("bsched-loadgen: scaleout client error: {e}");
                    PassOutcome {
                        malformed: 1,
                        ..PassOutcome::default()
                    }
                }
                Err(_) => PassOutcome {
                    malformed: 1,
                    ..PassOutcome::default()
                },
            })
            .collect()
    })
}

/// The `--scaleout` sweep: for each requested fleet size, stand up a
/// fresh fleet (own shards, own router, own logs), warm every cache key
/// with an untimed pass, then drive the same mix again with a 20 ms
/// simulated service stall per request and record aggregate throughput.
///
/// The timed pass is **service-time-bound, not CPU-bound**: each
/// request pins a shard worker for the stall duration, so aggregate
/// throughput is capped by fleet-wide worker concurrency
/// (shards × workers), exactly the capacity that adding a shard buys.
/// That makes the curve a portable proof that the router drives shards
/// concurrently (no hidden serialization in forwarding, admission, or
/// placement) — it scales with shard count even on a single-core host,
/// where a compute-bound mix could only measure core count. The
/// workload and client concurrency never change across points; only
/// the shard count does.
fn run_scaleout(args: &Args, sizes: &[usize]) -> Result<Vec<ScalePoint>, String> {
    const CLIENTS: usize = 16;
    const PER_CLIENT: usize = 15;
    const STALL_US: u64 = 20_000;
    let mut points = Vec::new();
    for &shards in sizes {
        let mut fleet = Fleet::start(shards, &args.serve_bin, None, &format!("scale{shards}"))?;
        let addr = fleet.router_addr();
        let warm = scaleout_mix(args, shards, PER_CLIENT, CLIENTS, 0);
        let warmed: u64 = drive_mix(&addr, &warm).iter().map(|o| o.ok).sum();
        if warmed < (CLIENTS * PER_CLIENT) as u64 {
            eprintln!(
                "bsched-loadgen: scaleout warm pass shards={shards}: only {warmed}/{} ok",
                CLIENTS * PER_CLIENT
            );
        }
        let timed = scaleout_mix(args, shards, PER_CLIENT, CLIENTS, STALL_US);
        let started = Instant::now();
        let outcomes = drive_mix(&addr, &timed);
        let wall = started.elapsed();
        fleet.shutdown();
        let mut merged = PassOutcome::default();
        for o in outcomes {
            merged.ok += o.ok;
            merged.cached += o.cached;
            merged.degraded += o.degraded;
            merged.errors += o.errors;
            merged.overloaded += o.overloaded;
            merged.timeouts += o.timeouts;
            merged.dropped += o.dropped;
            merged.malformed += o.malformed;
            merged.latencies_us.extend(o.latencies_us);
        }
        merged.latencies_us.sort_unstable();
        #[allow(clippy::cast_precision_loss)]
        let throughput = if wall.as_secs_f64() > 0.0 {
            merged.latencies_us.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let point = ScalePoint {
            shards,
            clients: CLIENTS,
            requests: CLIENTS * PER_CLIENT,
            stall_us: STALL_US,
            outcome: merged,
            wall_s: wall.as_secs_f64(),
            throughput_rps: throughput,
        };
        eprintln!(
            "scaleout shards={shards}: {}/{} answered in {:.3}s ({throughput:.1} req/s)",
            point.outcome.latencies_us.len(),
            point.requests,
            point.wall_s,
        );
        points.push(point);
    }
    Ok(points)
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<i32, String> {
    let args = parse_args()?;
    let server = if args.spawn {
        Some(
            Server::start(ServerConfig {
                listen: "127.0.0.1:0".to_owned(),
                workers: args.workers,
                io_threads: args.io_threads,
                queue_capacity: args.queue_cap,
                ..ServerConfig::default()
            })
            .map_err(|e| format!("spawn server: {e}"))?,
        )
    } else {
        None
    };
    let mut fleet = if args.fleet > 0 {
        Some(Fleet::start(
            args.fleet,
            &args.serve_bin,
            args.cache_log_dir.as_deref(),
            "fleet",
        )?)
    } else {
        None
    };
    let addr = match (&server, &fleet) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(f)) => f.router_addr(),
        (None, None) => args.addr.clone().unwrap(),
    };

    let mut pass_reports = Vec::new();
    let mut hit_rate_last_pass = 0.0f64;
    let mut total_dropped = 0u64;
    let mut total_malformed = 0u64;
    for pass in 1..=args.passes {
        let mix = request_mix(&args, pass);
        let hits_before = stat_u64(&fetch_stats(&addr)?, "cache_hits");
        // Round-robin split over the client connections.
        let mut per_client: Vec<Vec<Prepared>> = (0..args.clients).map(|_| Vec::new()).collect();
        let total = mix.len();
        for (i, req) in mix.into_iter().enumerate() {
            per_client[i % args.clients].push(req);
        }
        let started = Instant::now();
        let outcomes: Vec<PassOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_client
                .iter()
                .map(|reqs| {
                    let addr = addr.clone();
                    scope.spawn(move || run_client(&addr, reqs))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(outcome)) => outcome,
                    Ok(Err(e)) => {
                        eprintln!("bsched-loadgen: client error: {e}");
                        PassOutcome {
                            malformed: 1,
                            ..PassOutcome::default()
                        }
                    }
                    Err(_) => PassOutcome {
                        malformed: 1,
                        ..PassOutcome::default()
                    },
                })
                .collect()
        });
        let wall = started.elapsed();
        let hits_after = stat_u64(&fetch_stats(&addr)?, "cache_hits");

        let mut merged = PassOutcome::default();
        for o in outcomes {
            merged.ok += o.ok;
            merged.cached += o.cached;
            merged.degraded += o.degraded;
            merged.errors += o.errors;
            merged.overloaded += o.overloaded;
            merged.timeouts += o.timeouts;
            merged.dropped += o.dropped;
            merged.malformed += o.malformed;
            merged.latencies_us.extend(o.latencies_us);
        }
        merged.latencies_us.sort_unstable();
        let answered = merged.latencies_us.len();
        #[allow(clippy::cast_precision_loss)]
        let throughput = if wall.as_secs_f64() > 0.0 {
            answered as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = if total > 0 {
            (hits_after.saturating_sub(hits_before)) as f64 / total as f64
        } else {
            0.0
        };
        hit_rate_last_pass = hit_rate;
        total_dropped += merged.dropped;
        total_malformed += merged.malformed;
        eprintln!(
            "pass {pass}: {answered}/{total} answered in {:.3}s ({throughput:.1} req/s), \
             ok={} cached={} errors={} overloaded={} timeouts={} hit_rate={:.0}%",
            wall.as_secs_f64(),
            merged.ok,
            merged.cached,
            merged.errors,
            merged.overloaded,
            merged.timeouts,
            hit_rate * 100.0
        );
        pass_reports.push(format!(
            "{{\"pass\":{pass},\"requests\":{total},\"answered\":{answered},\
             \"ok\":{},\"cached\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\
             \"dropped\":{},\"malformed\":{},\"wall_s\":{:.6},\"throughput_rps\":{throughput:.3},\
             \"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"cache_hit_rate\":{hit_rate:.4}}}",
            merged.ok,
            merged.cached,
            merged.errors,
            merged.overloaded,
            merged.timeouts,
            merged.dropped,
            merged.malformed,
            wall.as_secs_f64(),
            percentile(&merged.latencies_us, 0.50),
            percentile(&merged.latencies_us, 0.95),
            percentile(&merged.latencies_us, 0.99),
        ));
    }

    let burst_report = if args.burst > 0 {
        let (ok, overloaded, other, dropped) =
            run_burst(&addr, &args, args.burst).map_err(|e| format!("burst: {e}"))?;
        eprintln!(
            "burst {}: ok={ok} overloaded={overloaded} other={other} dropped={dropped}",
            args.burst
        );
        format!(
            ",\"burst\":{{\"requests\":{},\"ok\":{ok},\"overloaded\":{overloaded},\
             \"other\":{other},\"dropped\":{dropped}}}",
            args.burst
        )
    } else {
        String::new()
    };

    let sweep_report = if args.sweep.is_empty() {
        String::new()
    } else {
        let points = run_sweep(&addr, &args, &args.sweep)?;
        for p in &points {
            total_dropped += p.outcome.dropped;
            total_malformed += p.outcome.malformed;
        }
        format!(
            ",\"sweep\":[{}]",
            points
                .iter()
                .map(SweepPoint::render)
                .collect::<Vec<_>>()
                .join(",")
        )
    };

    let mut fleet_failed = false;
    let fleet_report = if args.kill_shard {
        let fleet_ref = fleet
            .as_mut()
            .expect("--kill-shard validated to imply --fleet");
        let (json, passed) = run_fleet_chaos(fleet_ref, &args, &addr)?;
        fleet_failed = !passed;
        format!(",\"fleet\":{json}")
    } else {
        String::new()
    };

    let mut membership_failed = false;
    let membership_report = if args.add_shard_at.is_some() || args.drain_shard_at.is_some() {
        let fleet_ref = fleet
            .as_mut()
            .expect("--add-shard-at/--drain-shard-at validated to imply --fleet");
        let (json, passed) = run_membership_chaos(fleet_ref, &args, &addr)?;
        membership_failed = !passed;
        format!(",\"membership\":{json}")
    } else {
        String::new()
    };

    let scaleout_report = if args.scaleout.is_empty() {
        String::new()
    } else {
        let points = run_scaleout(&args, &args.scaleout)?;
        for p in &points {
            total_dropped += p.outcome.dropped;
            total_malformed += p.outcome.malformed;
        }
        format!(
            ",\"scaleout\":[{}]",
            points
                .iter()
                .map(ScalePoint::render)
                .collect::<Vec<_>>()
                .join(",")
        )
    };

    let final_stats = fetch_stats(&addr)?;
    let report = format!(
        "{{\"bench\":\"serve\",\"system\":{},\"schedulers\":[{}],\"clients\":{},\
         \"passes\":[{}],\"final_stats\":{}{burst_report}{sweep_report}{fleet_report}\
         {membership_report}{scaleout_report}}}",
        json::string(&args.system),
        args.schedulers
            .iter()
            .map(|s| json::string(s))
            .collect::<Vec<_>>()
            .join(","),
        args.clients,
        pass_reports.join(","),
        render_stats_obj(&final_stats),
    );
    match &args.out {
        Some(path) => {
            // Temp + rename so an interrupted run never leaves a
            // truncated report where a previous good one stood.
            let tmp = format!("{path}.tmp");
            std::fs::write(&tmp, format!("{report}\n")).map_err(|e| format!("write {tmp}: {e}"))?;
            std::fs::rename(&tmp, path).map_err(|e| format!("rename {tmp} -> {path}: {e}"))?;
        }
        None => println!("{report}"),
    }

    if let Some(server) = server {
        server.begin_shutdown();
        server.join();
    }
    if let Some(mut fleet) = fleet {
        fleet.shutdown();
    }

    if fleet_failed {
        eprintln!("bsched-loadgen: FAIL: fleet chaos gates missed (see the \"fleet\" report)");
        return Ok(1);
    }
    if membership_failed {
        eprintln!(
            "bsched-loadgen: FAIL: membership chaos gates missed (see the \"membership\" report)"
        );
        return Ok(1);
    }
    if total_dropped > 0 || total_malformed > 0 {
        eprintln!(
            "bsched-loadgen: FAIL: {total_dropped} dropped, {total_malformed} malformed responses"
        );
        return Ok(1);
    }
    if let Some(expect) = args.expect_hit_rate {
        let measured = hit_rate_last_pass * 100.0;
        if measured + 1e-9 < expect {
            eprintln!(
                "bsched-loadgen: FAIL: final-pass cache hit rate {measured:.1}% < expected {expect:.1}%"
            );
            return Ok(1);
        }
    }
    Ok(0)
}

/// Re-renders the `stats` object from a `/stats` response (stripping the
/// envelope) so the report embeds plain counters.
fn render_stats_obj(resp: &Json) -> String {
    fn render(v: &Json) -> String {
        match v {
            Json::Null => "null".to_owned(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{n:.0}")
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => json::string(s),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json::string(k), render(v)))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
    resp.get("stats").map_or_else(|| "{}".to_owned(), render)
}

fn main() {
    bsched_faults::init_from_env();
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("bsched-loadgen: {e}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}
