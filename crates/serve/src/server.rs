//! The daemon: epoll event loop, admission control, worker pool,
//! lifecycle.
//!
//! On Linux a small fixed set of IO threads multiplexes every
//! connection over raw `epoll` (see [`crate::eventloop`]): thread 0
//! owns the non-blocking listener and hands accepted sockets out
//! round-robin; each IO thread runs an edge-triggered loop over its
//! connections' read/write readiness plus a wake pipe. Request lines
//! are framed *in place* — the parser is handed a `&str` view into the
//! connection's read buffer, never a copied-out line. Schedule requests
//! are admitted against a bounded queue and executed on a persistent
//! [`bsched_par::WorkerPool`]; the worker posts the finished response
//! back to the owning IO thread's completion queue and tickles its wake
//! pipe, so pipelined responses interleave out of order — the protocol
//! echoes ids for exactly this reason. Control requests (`stats`,
//! `ping`, `shutdown`) are answered inline on the IO thread and never
//! queue. Non-Linux builds fall back to the original thread-per-
//! connection loop with identical semantics.
//!
//! Backpressure is a counter, not a buffer: admission increments the
//! queue depth and rejects with a typed `overloaded` response when it
//! would exceed the configured capacity. Nothing is dropped silently
//! and nothing queues unboundedly.
//!
//! Shutdown is a drain, not an abort: `op:"shutdown"`, SIGTERM, or
//! SIGINT stop new admissions (subsequent schedule requests get
//! `overloaded`), the listener closes, queued work finishes and its
//! responses are flushed, and a connection caught mid-line gets a typed
//! `overloaded` response rather than a silently closed socket. Only
//! then does [`Server::join`] return.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bsched_par::sync::thread::JoinHandle;
use bsched_par::sync::{thread, AtomicBool, Mutex, Ordering};

use bsched_faults::{fault_point, Site};
use bsched_par::{run_with_timeout, WorkerPool};

use crate::cache::LruCache;
use crate::protocol::{
    error_response, ok_response, overloaded_response, parse_request, request_id, timeout_response,
    Request, ScheduleRequest,
};
use crate::stats::ServerStats;
use crate::{evaluate_prepared, prepare_request};

/// Knobs for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Persistent worker threads evaluating schedule requests.
    pub workers: usize,
    /// Event-loop IO threads multiplexing connections (Linux backend).
    pub io_threads: usize,
    /// Admission bound: queued + executing schedule requests.
    pub queue_capacity: usize,
    /// Response cache bound, in entries.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Path of the append-only cache persistence log (`--cache-log`);
    /// `None` serves from a memory-only cache that dies with the
    /// process.
    pub cache_log: Option<String>,
    /// Inbound request-line cap in bytes. A longer line gets a typed
    /// `too_large` error and the connection is closed — the partial-tail
    /// buffer never grows without bound on a runaway client.
    pub max_line_bytes: usize,
    /// Outbound per-connection backlog cap in bytes. Reads pause
    /// (backpressure) at half this backlog; a consumer that still lets
    /// in-flight responses exceed it gets a typed `slow_consumer`
    /// notice and is disconnected.
    pub write_cap_bytes: usize,
}

/// Default inbound request-line cap (4 MiB).
pub const DEFAULT_MAX_LINE_BYTES: usize = 4 * 1024 * 1024;
/// Default outbound backlog cap (16 MiB).
pub const DEFAULT_WRITE_CAP_BYTES: usize = 16 * 1024 * 1024;

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 4,
            io_threads: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline_ms: None,
            cache_log: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            write_cap_bytes: DEFAULT_WRITE_CAP_BYTES,
        }
    }
}

/// Set by the raw SIGTERM/SIGINT handlers; polled by every IO loop.
///
/// Deliberately a plain `std` atomic, never the model-checker shim: the
/// store below runs in async-signal context, which must stay lock-free.
static SIGNALLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // A relaxed atomic store is async-signal-safe: no locks, no
    // allocation. Everything else happens on normal threads.
    SIGNALLED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// True once SIGTERM/SIGINT has been observed (shared with the router,
/// which has its own drain flag but the same signals).
pub(crate) fn signalled() -> bool {
    SIGNALLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Installs SIGTERM/SIGINT handlers that begin a graceful drain.
///
/// Uses the C `signal()` entry point directly (the workspace vendors no
/// libc binding); on non-unix platforms this compiles to a no-op and
/// drains rely on `op:"shutdown"`.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` as POSIX
        // requires, and only performs an atomic store.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// A response computed on a worker, addressed back to the connection
/// slot (`token`) it came from. The generation guards against slot
/// reuse: if the connection died and the slot was recycled, the stale
/// completion is dropped instead of being written to a stranger.
#[cfg(target_os = "linux")]
struct Completion {
    token: usize,
    generation: u64,
    line: String,
}

/// The cross-thread half of one IO thread: workers push completions and
/// thread 0 pushes handed-over sockets, then wake the pipe.
#[cfg(target_os = "linux")]
struct IoHandle {
    completions: Mutex<Vec<Completion>>,
    incoming: Mutex<Vec<std::net::TcpStream>>,
    wake: crate::eventloop::WakePipe,
}

struct Inner {
    cfg: ServerConfig,
    pool: WorkerPool,
    cache: Mutex<LruCache>,
    /// The cache persistence log, when `--cache-log` is configured.
    /// Locked *after* `cache` everywhere (put-then-append ordering).
    log: Option<Mutex<crate::persist::CacheLog>>,
    /// Append/compaction failures downgraded to this counter — a full
    /// disk degrades durability, never serving.
    persist_errors: std::sync::atomic::AtomicU64,
    /// Cache keys with a background policy search in flight — the
    /// dedup guard that keeps a hot `"tune":true` key from spawning one
    /// search per miss.
    tuning: Mutex<std::collections::HashSet<u128>>,
    /// Tuned schedules installed into the cache by background searches.
    tuned_installs: std::sync::atomic::AtomicU64,
    stats: ServerStats,
    shutdown: AtomicBool,
    #[cfg(target_os = "linux")]
    io: Vec<Arc<IoHandle>>,
}

impl Inner {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || SIGNALLED.load(Ordering::Relaxed)
    }
}

/// A running daemon. Dropping it without [`Server::join`] detaches the
/// IO threads but lets in-flight work finish under the pool's own
/// shutdown.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.listen` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …) or,
    /// on Linux, an `epoll`/pipe setup failure.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = std::net::TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (log, cache) = open_cache(&cfg)?;
        #[cfg(target_os = "linux")]
        {
            let io_count = cfg.io_threads.max(1);
            let mut io = Vec::with_capacity(io_count);
            for _ in 0..io_count {
                io.push(Arc::new(IoHandle {
                    completions: Mutex::new(Vec::new()),
                    incoming: Mutex::new(Vec::new()),
                    wake: crate::eventloop::WakePipe::new()?,
                }));
            }
            let inner = Arc::new(Inner {
                pool: WorkerPool::new(cfg.workers.max(1)),
                cache: Mutex::new(cache),
                log,
                persist_errors: std::sync::atomic::AtomicU64::new(0),
                tuning: Mutex::new(std::collections::HashSet::new()),
                tuned_installs: std::sync::atomic::AtomicU64::new(0),
                cfg,
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                io,
            });
            let mut threads = Vec::with_capacity(io_count);
            let mut listener = Some(listener);
            for index in 0..io_count {
                let io_inner = Arc::clone(&inner);
                let listener = if index == 0 { listener.take() } else { None };
                threads.push(
                    thread::Builder::new()
                        .name(format!("bsched-serve-io{index}"))
                        .spawn(move || event::io_loop(&io_inner, index, listener))
                        .expect("spawn io thread"),
                );
            }
            Ok(Server {
                inner,
                addr,
                threads,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let inner = Arc::new(Inner {
                pool: WorkerPool::new(cfg.workers.max(1)),
                cache: Mutex::new(cache),
                log,
                persist_errors: std::sync::atomic::AtomicU64::new(0),
                tuning: Mutex::new(std::collections::HashSet::new()),
                tuned_installs: std::sync::atomic::AtomicU64::new(0),
                cfg,
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
            });
            let accept_inner = Arc::clone(&inner);
            let accept = thread::Builder::new()
                .name("bsched-serve-accept".to_owned())
                .spawn(move || fallback::accept_loop(&listener, &accept_inner))
                .expect("spawn accept thread");
            Ok(Server {
                inner,
                addr,
                threads: vec![accept],
            })
        }
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, as if `op:"shutdown"` had arrived.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        #[cfg(target_os = "linux")]
        for handle in &self.inner.io {
            handle.wake.wake();
        }
    }

    /// Blocks until the drain completes: the listener has closed, every
    /// admitted request has flushed its response, and the IO threads
    /// have exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Opens the persistence log (when configured) and warm-starts the
/// cache from its recovered entries. Recovery replays oldest-first, so
/// the cache's LRU order matches the one the previous process died
/// with.
fn open_cache(
    cfg: &ServerConfig,
) -> std::io::Result<(Option<Mutex<crate::persist::CacheLog>>, LruCache)> {
    let mut cache = LruCache::new(cfg.cache_capacity);
    let log = match &cfg.cache_log {
        None => None,
        Some(path) => {
            let (log, recovery) =
                crate::persist::CacheLog::open(std::path::Path::new(path), cfg.cache_capacity)?;
            let recovered = recovery.entries.len();
            for (key, payload) in recovery.entries {
                cache.preload(key, payload);
            }
            if recovered > 0 {
                eprintln!("bsched-serve: warm start: {recovered} cached responses from {path}");
            }
            Some(Mutex::new(log))
        }
    };
    Ok((log, cache))
}

/// What one request line asks the transport to do — computed by the
/// shared dispatcher so both backends speak identical protocol.
enum Action {
    /// Answer now, on the IO/connection thread.
    Respond(String),
    /// Admitted: run on the pool, deliver the returned line, and only
    /// then release the queue slot.
    Execute {
        id: Option<String>,
        req: Box<ScheduleRequest>,
        admitted_at: Instant,
    },
}

/// Parses and dispatches one request line (a borrowed view into the
/// connection's read buffer — never a copied-out line). Control ops are
/// answered inline; schedule requests pass admission control here:
/// reserve a queue slot or shed with a typed `overloaded` response —
/// never an unbounded queue, never a silent drop.
fn handle_line(inner: &Arc<Inner>, line: &str) -> Option<Action> {
    if line.trim().is_empty() {
        return None;
    }
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let id = request_id(line);
    Some(match parse_request(line) {
        Err(reason) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            Action::Respond(error_response(id.as_deref(), "parse", &reason))
        }
        Ok(Request::Ping) => Action::Respond(format!(
            "{{{}\"status\":\"ok\",\"pong\":true}}",
            crate::protocol::id_fragment(id.as_deref())
        )),
        Ok(Request::Stats) => Action::Respond(render_stats(inner, id.as_deref())),
        Ok(Request::Shutdown) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            Action::Respond(format!(
                "{{{}\"status\":\"ok\",\"draining\":true}}",
                crate::protocol::id_fragment(id.as_deref())
            ))
        }
        Ok(Request::AddShard { .. } | Request::DrainShard { .. } | Request::Members) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            Action::Respond(error_response(
                id.as_deref(),
                "unsupported",
                "membership ops need the router (bsched serve --route)",
            ))
        }
        Ok(Request::Schedule(req)) => {
            let capacity = inner.cfg.queue_capacity.max(1);
            let injected_reject = fault_point!(Site::ServeReject).is_some();
            let depth = inner.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
            if depth >= capacity || inner.draining() || injected_reject {
                inner.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                Action::Respond(overloaded_response(id.as_deref(), depth, capacity))
            } else {
                Action::Execute {
                    id,
                    req,
                    admitted_at: Instant::now(),
                }
            }
        }
    })
}

/// The full service path for one admitted request: fault points, cache
/// probe, compile + simulate under the deadline, stats. Returns the
/// response line; the transport decides how it travels.
fn run_schedule(
    inner: &Arc<Inner>,
    id: Option<&str>,
    req: &ScheduleRequest,
    admitted_at: Instant,
) -> String {
    if let Some(fault) = fault_point!(Site::SlowWorker) {
        thread::sleep(Duration::from_millis(fault.arg));
    }
    if req.stall_us > 0 {
        // Simulated service stall (load-testing knob): before the cache
        // lookup, so hits and misses stall alike.
        thread::sleep(Duration::from_micros(req.stall_us));
    }
    let response = match prepare_request(req) {
        Err((kind, reason)) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_response(id, kind.id(), &reason)
        }
        Ok(prepared) => {
            let key = prepared.key();
            let hit = inner.cache.lock().unwrap().get(key);
            match hit {
                Some(payload) => {
                    inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                    ok_response(id, true, &payload, service_us(admitted_at))
                }
                None => {
                    let deadline = req.deadline_ms.or(inner.cfg.default_deadline_ms);
                    let req_owned = req.clone();
                    let outcome = match deadline {
                        Some(ms) => run_with_timeout(Duration::from_millis(ms), move || {
                            evaluate_prepared(&req_owned, prepared)
                        })
                        .map_err(|_| ()),
                        None => Ok(evaluate_prepared(&req_owned, prepared)),
                    };
                    match outcome {
                        Ok(Ok(done)) => {
                            let payload: Arc<str> = Arc::from(done.payload);
                            {
                                let mut cache = inner.cache.lock().unwrap();
                                cache.put(done.key, Arc::clone(&payload));
                                if let Some(log) = &inner.log {
                                    // Durability is best-effort under IO
                                    // failure: a full disk costs warm
                                    // restarts, never live serving.
                                    let mut log = log.lock().unwrap();
                                    if let Err(e) = log.append(done.key, &payload) {
                                        inner.persist_errors.fetch_add(1, Ordering::Relaxed);
                                        eprintln!("bsched-serve: cache-log append failed: {e}");
                                    } else if log.needs_compaction() {
                                        let snapshot = cache.iter_lru();
                                        if let Err(e) = log.compact(&snapshot) {
                                            inner.persist_errors.fetch_add(1, Ordering::Relaxed);
                                            eprintln!(
                                                "bsched-serve: cache-log compaction failed: {e}"
                                            );
                                        }
                                    }
                                }
                            }
                            inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                            if req.tune {
                                maybe_spawn_tune(inner, key, req);
                            }
                            ok_response(id, false, &payload, service_us(admitted_at))
                        }
                        Ok(Err((kind, reason))) => {
                            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                            error_response(id, kind.id(), &reason)
                        }
                        Err(_timeout) => {
                            inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            timeout_response(id, deadline.unwrap_or(0))
                        }
                    }
                }
            }
        }
    };
    inner.stats.record_service(service_us(admitted_at));
    if req.stream {
        if let Some((chunks, terminal)) = crate::protocol::split_stream(id, &response) {
            inner.stats.streams.fetch_add(1, Ordering::Relaxed);
            // The transport writes one trailing newline; join the chunk
            // lines and the terminal here so both backends stream for
            // free. Blockless responses (errors, timeout) fall through
            // and stay single-line.
            let mut blob = String::with_capacity(
                response.len() + chunks.iter().map(String::len).sum::<usize>(),
            );
            for chunk in &chunks {
                blob.push_str(chunk);
                blob.push('\n');
            }
            blob.push_str(&terminal);
            return blob;
        }
    }
    response
}

/// Enqueues a background policy search for a cache-missed `"tune":true`
/// request, unless one is already in flight for the same key. The
/// search runs on the worker pool behind live requests; the winning
/// policy's schedule is evaluated through the normal service path and
/// installed under the **original** request key (and appended to the
/// cache log), so the next identical request is served tuned.
fn maybe_spawn_tune(inner: &Arc<Inner>, key: u128, req: &ScheduleRequest) {
    if inner.draining() || !inner.tuning.lock().unwrap().insert(key) {
        return;
    }
    let job_inner = Arc::clone(inner);
    let req = req.clone();
    inner.pool.spawn(move || {
        background_tune(&job_inner, key, &req);
        job_inner.tuning.lock().unwrap().remove(&key);
    });
}

/// The background search itself. Failures are silent by design — tuning
/// is an optimization, never a correctness dependency of serving.
fn background_tune(inner: &Arc<Inner>, key: u128, req: &ScheduleRequest) -> Option<()> {
    if inner.draining() {
        return None;
    }
    let function = prepare_request(req).ok()?.resolved.function;
    // Deterministic per-key seed: the same kernel + configuration tunes
    // identically on every shard of the fleet, so cached policies are
    // interchangeable across daemons.
    #[allow(clippy::cast_possible_truncation)]
    let seed = req.seed ^ (key as u64) ^ ((key >> 64) as u64);
    let cfg = bsched_tune::TuneConfig {
        seed,
        runs: req.runs,
        // One worker thread: the search yields to live requests rather
        // than saturating the pool.
        threads: 1,
        beam_width: 2,
        processor: req.processor,
        alias: req.alias,
        candidate_timeout: Some(Duration::from_secs(5)),
        ..bsched_tune::TuneConfig::default()
    };
    let report = bsched_tune::tune(&function, &req.system, &cfg).ok()?;
    let mut tuned = req.clone();
    tuned.scheduler_spec = format!("policy:{}", report.best.canonical());
    tuned.scheduler = bsched_pipeline::SchedulerChoice::Tuned(report.best);
    let done = crate::evaluate_request(&tuned).ok()?;
    let payload: Arc<str> = Arc::from(done.payload);
    {
        let mut cache = inner.cache.lock().unwrap();
        cache.put(key, Arc::clone(&payload));
        if let Some(log) = &inner.log {
            let mut log = log.lock().unwrap();
            if let Err(e) = log.append(key, &payload) {
                inner.persist_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("bsched-serve: cache-log append failed: {e}");
            }
        }
    }
    inner.tuned_installs.fetch_add(1, Ordering::Relaxed);
    Some(())
}

fn service_us(admitted_at: Instant) -> u64 {
    u64::try_from(admitted_at.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn render_stats(inner: &Inner, id: Option<&str>) -> String {
    let (cache_hits, cache_misses, cache_entries) = {
        let cache = inner.cache.lock().unwrap();
        let (h, m) = cache.counters();
        (h, m, cache.len())
    };
    let pool = inner.pool.metrics();
    let (persist_appends, persist_compactions, persist_bytes) =
        inner.log.as_ref().map_or((0, 0, 0), |log| {
            let log = log.lock().unwrap();
            let (appends, compactions) = log.counters();
            (appends, compactions, log.file_bytes())
        });
    format!(
        "{{{}\"status\":\"ok\",\"stats\":{{{},\"cache_hits\":{cache_hits},\
         \"cache_misses\":{cache_misses},\"cache_entries\":{cache_entries},\
         \"persist_appends\":{persist_appends},\"persist_compactions\":{persist_compactions},\
         \"persist_bytes\":{persist_bytes},\"persist_errors\":{},\
         \"tuned_installs\":{},\"tuning_in_flight\":{},\
         \"workers\":{},\"queue_capacity\":{},\"steals\":{},\"parks\":{},\
         \"pool_queued\":{},\"io_threads\":{},\"open_connections\":{},\
         \"max_line_bytes\":{},\"write_cap_bytes\":{},\
         \"draining\":{}}}}}",
        crate::protocol::id_fragment(id),
        inner.stats.render_fields(),
        inner.persist_errors.load(Ordering::Relaxed),
        inner.tuned_installs.load(Ordering::Relaxed),
        inner.tuning.lock().unwrap().len(),
        inner.cfg.workers.max(1),
        inner.cfg.queue_capacity.max(1),
        pool.steals,
        pool.parks,
        pool.queued,
        inner.cfg.io_threads.max(1),
        inner.stats.conns_open.load(Ordering::Relaxed),
        inner.cfg.max_line_bytes,
        inner.cfg.write_cap_bytes,
        inner.draining()
    )
}

#[cfg(target_os = "linux")]
mod event {
    //! The Linux backend: one edge-triggered epoll loop per IO thread.
    //!
    //! Per-loop state is plain single-threaded Rust — a slab of
    //! connections indexed by epoll token, each with its own read/write
    //! buffer. The only cross-thread traffic is the [`IoHandle`]:
    //! workers post completions, thread 0 posts accepted sockets, and
    //! both wake the pipe so a blocked `epoll_wait` notices.

    use super::{handle_line, run_schedule, Action, Completion, Inner};
    use crate::eventloop::{
        EpollEvent, Poller, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
    };
    use crate::protocol::overloaded_response;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Wake-pipe readability.
    const WAKE_TOKEN: u64 = u64::MAX;
    /// Listener readability (thread 0 only).
    const LISTEN_TOKEN: u64 = u64::MAX - 1;
    /// Poll granularity: an idle loop re-checks the drain flag this
    /// often, so SIGTERM is noticed promptly even with no IO.
    const POLL_MS: i32 = 25;
    /// How long the final drain phase keeps flushing response bytes to
    /// slow readers before closing on them.
    const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(2);
    /// Compact a partially written buffer past this many flushed bytes.
    const WRITE_COMPACT: usize = 64 * 1024;

    struct Conn {
        stream: TcpStream,
        /// Unparsed request bytes; complete lines are framed and
        /// dispatched *in place* (no per-line copy), and only the
        /// partial tail survives between readiness events.
        read_buf: Vec<u8>,
        /// Response bytes not yet accepted by the kernel.
        write_buf: Vec<u8>,
        /// Prefix of `write_buf` already written to the socket.
        written: usize,
        /// Admitted requests whose completions have not come back yet.
        inflight: usize,
        /// Read side saw EOF; close once `inflight` and the write
        /// buffer drain (the client may still be reading responses).
        peer_closed: bool,
        /// This connection already got its mid-line drain notice.
        drain_notified: bool,
        /// The last read pass stopped before `WouldBlock` (inbound cap
        /// or write backpressure). Edge-triggered epoll guarantees no
        /// further readiness edge for bytes already in the kernel, so
        /// the loop re-scans these connections every poll tick — the
        /// same re-arm pattern as `accept_retry`.
        read_pending: bool,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                inflight: 0,
                peer_closed: false,
                drain_notified: false,
                read_pending: false,
            }
        }

        /// Bytes accepted by `respond` but not yet by the kernel.
        fn backlog(&self) -> usize {
            self.write_buf.len() - self.written
        }

        fn flushed(&self) -> bool {
            self.written == self.write_buf.len()
        }
    }

    struct IoLoop {
        inner: Arc<Inner>,
        index: usize,
        poller: Poller,
        /// Connection slab: the epoll token is the slot index.
        conns: Vec<Option<Conn>>,
        /// Bumped on every close; stale completions for a recycled slot
        /// fail the generation check and are dropped.
        generations: Vec<u64>,
        free: Vec<usize>,
        listener: Option<TcpListener>,
        /// Round-robin cursor for handing accepted sockets out.
        next_assign: usize,
        /// Accept hit a transient error (fd exhaustion): the listener
        /// is edge-triggered, so already-backlogged connections will
        /// never produce another readiness edge — re-attempt the
        /// accept on the next poll tick instead of waiting for one.
        accept_retry: bool,
    }

    pub(super) fn io_loop(inner: &Arc<Inner>, index: usize, listener: Option<TcpListener>) {
        let poller = Poller::new().expect("epoll_create1");
        let handle = &inner.io[index];
        poller
            .add(handle.wake.read_fd(), EPOLLIN | EPOLLET, WAKE_TOKEN)
            .expect("register wake pipe");
        if let Some(l) = &listener {
            poller
                .add(l.as_raw_fd(), EPOLLIN | EPOLLET, LISTEN_TOKEN)
                .expect("register listener");
        }
        let mut io = IoLoop {
            inner: Arc::clone(inner),
            index,
            poller,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            listener,
            next_assign: 0,
            accept_retry: false,
        };
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 64];
        let mut flush_deadline = None;
        loop {
            let n = io.poller.wait(&mut events, POLL_MS).unwrap_or(0);
            for ev in &events[..n] {
                let token = ev.data;
                let flags = ev.events;
                match token {
                    WAKE_TOKEN => io.inner.io[io.index].wake.drain(),
                    LISTEN_TOKEN => io.accept_burst(),
                    t => {
                        #[allow(clippy::cast_possible_truncation)]
                        io.on_conn_event(t as usize, flags);
                    }
                }
            }
            if io.accept_retry {
                io.accept_retry = false;
                io.accept_burst();
            }
            io.adopt_incoming();
            io.apply_completions();
            io.resume_pending_reads();
            if io.inner.draining() && io.drain_step(&mut flush_deadline) {
                break;
            }
        }
    }

    impl IoLoop {
        /// ET discipline: accept until the listener runs dry.
        fn accept_burst(&mut self) {
            loop {
                let Some(listener) = &self.listener else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let target = self.next_assign % self.inner.io.len();
                        self.next_assign = self.next_assign.wrapping_add(1);
                        if target == self.index {
                            self.register(stream);
                        } else {
                            let peer = &self.inner.io[target];
                            peer.incoming.lock().unwrap().push(stream);
                            peer.wake.wake();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // The aborted connection consumed its readiness;
                    // keep accepting the rest of the backlog.
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {}
                    Err(_) => {
                        // EMFILE/ENFILE and friends: give up for now
                        // but retry on the next poll tick — closing
                        // connections frees fds without generating a
                        // listener edge.
                        self.accept_retry = true;
                        return;
                    }
                }
            }
        }

        /// Takes ownership of sockets thread 0 handed over.
        fn adopt_incoming(&mut self) {
            let streams = std::mem::take(&mut *self.inner.io[self.index].incoming.lock().unwrap());
            for stream in streams {
                self.register(stream);
            }
        }

        fn register(&mut self, stream: TcpStream) {
            let token = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            });
            let fd = stream.as_raw_fd();
            self.conns[token] = Some(Conn::new(stream));
            let interest = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
            if self.poller.add(fd, interest, token as u64).is_err() {
                self.conns[token] = None;
                self.free.push(token);
                return;
            }
            self.inner.stats.conns_open.fetch_add(1, Ordering::Relaxed);
        }

        fn close(&mut self, token: usize) {
            if let Some(conn) = self.conns[token].take() {
                let _ = self.poller.delete(conn.stream.as_raw_fd());
                self.generations[token] += 1;
                self.free.push(token);
                self.inner.stats.conns_open.fetch_sub(1, Ordering::Relaxed);
                // In-flight jobs for this connection will post stale
                // completions; the generation check drops them (the
                // queue slot is still released when they land).
            }
        }

        fn on_conn_event(&mut self, token: usize, flags: u32) {
            if self.conns.get(token).is_none_or(Option::is_none) {
                return; // stale event for an already-closed slot
            }
            if flags & EPOLLERR != 0 {
                self.close(token);
                return;
            }
            if flags & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 && !self.read_and_dispatch(token) {
                self.close(token);
                return;
            }
            if flags & EPOLLOUT != 0 && self.conns[token].is_some() && !self.flush(token) {
                self.close(token);
                return;
            }
            self.maybe_close(token);
        }

        /// Re-scans connections whose read pass stopped early (inbound
        /// cap or write backpressure): no future epoll edge is
        /// guaranteed for bytes already buffered in the kernel, so the
        /// poll tick retries them until they drain or close.
        fn resume_pending_reads(&mut self) {
            for token in 0..self.conns.len() {
                let pending = self.conns[token].as_ref().is_some_and(|c| c.read_pending);
                if pending {
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.read_pending = false;
                    }
                    if self.read_and_dispatch(token) {
                        self.maybe_close(token);
                    } else {
                        self.close(token);
                    }
                }
            }
        }

        /// ET read discipline: drain the socket, then frame and
        /// dispatch every complete line in place. Returns `false` when
        /// the connection is broken.
        fn read_and_dispatch(&mut self, token: usize) -> bool {
            let max_line = self.inner.cfg.max_line_bytes.max(1);
            let mut capped = false;
            let mut scratch = [0u8; 8192];
            {
                let Some(conn) = self.conns[token].as_mut() else {
                    return true;
                };
                if conn.peer_closed {
                    return true;
                }
                // Write backpressure: a consumer that is not draining
                // its responses does not get more requests read. The
                // poll tick re-checks via `read_pending`; TCP flow
                // control pushes back on the client in the meantime.
                if conn.backlog() > self.inner.cfg.write_cap_bytes.max(1) / 2 {
                    conn.read_pending = true;
                    return true;
                }
                loop {
                    // Inbound cap: stop pulling once the unframed
                    // buffer is over the line limit; after framing,
                    // either complete lines drained it (resume next
                    // tick) or one line really is too large.
                    if conn.read_buf.len() > max_line {
                        capped = true;
                        break;
                    }
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.peer_closed = true;
                            break;
                        }
                        Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
            }
            // Take the buffer (a move, not a copy) so each framed line
            // can be borrowed while the handlers mutate the connection.
            let buf = {
                let Some(conn) = self.conns[token].as_mut() else {
                    return true;
                };
                std::mem::take(&mut conn.read_buf)
            };
            let mut consumed = 0;
            while let Some(at) = buf[consumed..].iter().position(|&b| b == b'\n') {
                if self.conns[token].is_none() {
                    // A handler closed the connection (write failure)
                    // partway through this batch. Stop framing: the
                    // remaining pipelined lines have nowhere to
                    // respond, and dispatching them would capture the
                    // post-close generation — if the freed slot were
                    // recycled before the completion landed, the stale
                    // response would pass the generation check and be
                    // written to an unrelated client.
                    break;
                }
                let mut line = &buf[consumed..consumed + at];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                if line.len() > max_line {
                    // A complete line can still blow the cap when its
                    // newline lands inside the read chunk that tripped
                    // it; it gets the same typed notice + close as a
                    // newline-less flood, never a parse attempt.
                    consumed += at + 1;
                    self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.inner.stats.too_large.fetch_add(1, Ordering::Relaxed);
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.peer_closed = true;
                    }
                    let notice = crate::protocol::too_large_response(None, max_line);
                    self.respond(token, &notice);
                    break;
                }
                self.dispatch_line(token, line);
                consumed += at + 1;
            }
            let too_large = {
                let Some(conn) = self.conns[token].as_mut() else {
                    // A handler closed the connection (write failure).
                    return false;
                };
                // Only the partial tail is retained (and shifted) —
                // complete lines were consumed without leaving the
                // buffer.
                conn.read_buf = buf;
                conn.read_buf.drain(..consumed);
                if conn.read_buf.len() > max_line {
                    // One newline-less line blew the cap: drop the
                    // junk and stop reading — the connection closes
                    // once the typed notice (and any pipelined
                    // responses) flush.
                    conn.read_buf.clear();
                    conn.read_buf.shrink_to_fit();
                    conn.peer_closed = true;
                    true
                } else {
                    if capped {
                        conn.read_pending = true;
                    }
                    false
                }
            };
            if too_large {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.too_large.fetch_add(1, Ordering::Relaxed);
                let notice = crate::protocol::too_large_response(None, max_line);
                self.respond(token, &notice);
            }
            self.conns[token].is_some()
        }

        fn dispatch_line(&mut self, token: usize, raw: &[u8]) {
            if self.conns[token].is_none() {
                // Already closed: spawning now would tag the job with
                // the post-close generation, defeating the slot-reuse
                // guard in `apply_completions` (see the framing loop).
                return;
            }
            let Ok(line) = std::str::from_utf8(raw) else {
                self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                let reason = crate::protocol::error_response(None, "parse", "invalid UTF-8");
                self.respond(token, &reason);
                return;
            };
            match handle_line(&self.inner, line) {
                None => {}
                Some(Action::Respond(response)) => self.respond(token, &response),
                Some(Action::Execute {
                    id,
                    req,
                    admitted_at,
                }) => {
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.inflight += 1;
                    }
                    let job_inner = Arc::clone(&self.inner);
                    let io_index = self.index;
                    let generation = self.generations[token];
                    self.inner.pool.spawn(move || {
                        let line = run_schedule(&job_inner, id.as_deref(), &req, admitted_at);
                        let handle = &job_inner.io[io_index];
                        handle.completions.lock().unwrap().push(Completion {
                            token,
                            generation,
                            line,
                        });
                        handle.wake.wake();
                    });
                }
            }
        }

        /// Queues a response line, opportunistically flushes, and
        /// enforces the outbound backlog cap: a consumer that lets
        /// unflushed responses exceed it gets a best-effort typed
        /// `slow_consumer` notice and is disconnected — bounded memory
        /// beats an unbounded `Vec` growing until OOM.
        fn respond(&mut self, token: usize, line: &str) {
            let Some(conn) = self.conns[token].as_mut() else {
                return;
            };
            conn.write_buf.extend_from_slice(line.as_bytes());
            conn.write_buf.push(b'\n');
            if !self.flush(token) {
                self.close(token);
                return;
            }
            let cap = self.inner.cfg.write_cap_bytes.max(1);
            let over = self.conns[token]
                .as_ref()
                .is_some_and(|c| c.backlog() > cap);
            if over {
                self.inner
                    .stats
                    .slow_consumers
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns[token].as_mut() {
                    let notice = crate::protocol::slow_consumer_response(cap);
                    conn.write_buf.extend_from_slice(notice.as_bytes());
                    conn.write_buf.push(b'\n');
                }
                let _ = self.flush(token);
                self.close(token);
            }
        }

        /// ET write discipline: write until the kernel pushes back.
        /// Returns `false` when the connection is broken.
        fn flush(&mut self, token: usize) -> bool {
            let Some(conn) = self.conns[token].as_mut() else {
                return true;
            };
            while conn.written < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => return false,
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
            if conn.flushed() {
                conn.write_buf.clear();
                conn.written = 0;
            } else if conn.written > WRITE_COMPACT {
                conn.write_buf.drain(..conn.written);
                conn.written = 0;
            }
            true
        }

        /// Delivers worker responses posted to this thread's completion
        /// queue. The queue-depth slot is released here — after the
        /// response bytes are in the connection's write buffer — so the
        /// drain's `depth == 0` means every response has at least
        /// reached its buffer.
        fn apply_completions(&mut self) {
            let pending =
                std::mem::take(&mut *self.inner.io[self.index].completions.lock().unwrap());
            for completion in pending {
                let token = completion.token;
                let live = self.generations.get(token) == Some(&completion.generation)
                    && self.conns[token].is_some();
                if live {
                    if let Some(conn) = self.conns[token].as_mut() {
                        conn.inflight -= 1;
                    }
                    self.respond(token, &completion.line);
                    self.maybe_close(token);
                }
                self.inner.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            }
        }

        /// Closes a half-closed connection once nothing more can arrive
        /// for it: the peer sent EOF, every admitted request answered,
        /// and the answers are flushed.
        fn maybe_close(&mut self, token: usize) {
            let done = self.conns[token]
                .as_ref()
                .is_some_and(|c| c.peer_closed && c.inflight == 0 && c.flushed());
            if done {
                self.close(token);
            }
        }

        /// One drain tick; returns true when this IO thread is finished.
        ///
        /// Phases: stop accepting; wait for the global queue depth to
        /// hit zero (every admitted response buffered); give mid-line
        /// connections a typed `overloaded` notice instead of a silent
        /// close; flush everything (bounded grace); close and exit.
        fn drain_step(&mut self, flush_deadline: &mut Option<Instant>) -> bool {
            if let Some(listener) = self.listener.take() {
                let _ = self.poller.delete(listener.as_raw_fd());
            }
            if self.inner.stats.queue_depth.load(Ordering::Relaxed) > 0 {
                return false;
            }
            if flush_deadline.is_none() {
                *flush_deadline = Some(Instant::now() + DRAIN_FLUSH_GRACE);
                let capacity = self.inner.cfg.queue_capacity.max(1);
                for token in 0..self.conns.len() {
                    let mid_line = self.conns[token]
                        .as_mut()
                        .is_some_and(|c| !c.read_buf.is_empty() && !c.drain_notified);
                    if mid_line {
                        if let Some(conn) = self.conns[token].as_mut() {
                            conn.drain_notified = true;
                        }
                        self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                        self.respond(token, &overloaded_response(None, 0, capacity));
                    }
                }
            }
            let mut all_flushed = true;
            for token in 0..self.conns.len() {
                if self.conns[token].is_some() {
                    if !self.flush(token) {
                        self.close(token);
                    } else if self.conns[token].as_ref().is_some_and(|c| !c.flushed()) {
                        all_flushed = false;
                    }
                }
            }
            if all_flushed || flush_deadline.is_some_and(|d| Instant::now() >= d) {
                for token in 0..self.conns.len() {
                    self.close(token);
                }
                return true;
            }
            false
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    //! Portable backend: one thread per connection, blocking IO. Same
    //! protocol, admission, and drain semantics as the epoll backend.

    use super::{handle_line, run_schedule, Action, Inner};
    use std::io::{BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    type SharedWriter = Arc<Mutex<TcpStream>>;

    fn write_line(writer: &SharedWriter, line: &str) {
        let mut w = writer.lock().unwrap();
        // A vanished client is not a server error; the work is done
        // either way.
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }

    pub(super) fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
        loop {
            if inner.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn_inner = Arc::clone(inner);
                    let _ = std::thread::Builder::new()
                        .name("bsched-serve-conn".to_owned())
                        .spawn(move || serve_connection(stream, &conn_inner));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        // Drain: every admitted request releases its queue slot only
        // after its response hits the socket, so depth == 0 means all
        // work is flushed.
        while inner.stats.queue_depth.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) {
        let writer: SharedWriter = match stream.try_clone() {
            Ok(clone) => Arc::new(Mutex::new(clone)),
            Err(_) => return,
        };
        inner.stats.conns_open.fetch_add(1, Ordering::Relaxed);
        let max_line = inner.cfg.max_line_bytes.max(1);
        let mut reader = BufReader::new(stream);
        loop {
            let line = match crate::protocol::read_line_bounded(&mut reader, max_line) {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Inbound cap: typed error, then hang up — same
                    // semantics as the epoll backend. Blocking writes
                    // give this backend its outbound backpressure.
                    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                    inner.stats.too_large.fetch_add(1, Ordering::Relaxed);
                    write_line(
                        &writer,
                        &crate::protocol::too_large_response(None, max_line),
                    );
                    break;
                }
                Err(_) => break,
            };
            match handle_line(inner, &line) {
                None => {}
                Some(Action::Respond(response)) => write_line(&writer, &response),
                Some(Action::Execute {
                    id,
                    req,
                    admitted_at,
                }) => {
                    let job_inner = Arc::clone(inner);
                    let job_writer = Arc::clone(&writer);
                    inner.pool.spawn(move || {
                        let response = run_schedule(&job_inner, id.as_deref(), &req, admitted_at);
                        write_line(&job_writer, &response);
                        job_inner.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    });
                }
            }
        }
        inner.stats.conns_open.fetch_sub(1, Ordering::Relaxed);
    }
}
