//! The daemon: TCP listener, admission control, worker pool, lifecycle.
//!
//! One thread accepts connections; one thread per connection reads
//! request lines; schedule requests are admitted against a bounded
//! queue and executed on a persistent [`bsched_par::WorkerPool`], which
//! writes the response itself (so pipelined responses may be out of
//! order — the protocol echoes ids for exactly this reason). Control
//! requests (`stats`, `ping`, `shutdown`) are answered inline on the
//! connection thread and never queue.
//!
//! Backpressure is a counter, not a buffer: admission increments the
//! queue depth and rejects with a typed `overloaded` response when it
//! would exceed the configured capacity. Nothing is dropped silently
//! and nothing queues unboundedly.
//!
//! Shutdown is a drain, not an abort: `op:"shutdown"`, SIGTERM, or
//! SIGINT stop new admissions (subsequent schedule requests get
//! `overloaded`), the accept loop closes, queued work finishes and its
//! responses are written, and only then does [`Server::join`] return.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bsched_faults::{fault_point, Site};
use bsched_par::{run_with_timeout, WorkerPool};

use crate::cache::LruCache;
use crate::protocol::{
    error_response, ok_response, overloaded_response, parse_request, request_id, timeout_response,
    Request, ScheduleRequest,
};
use crate::stats::ServerStats;
use crate::{evaluate_prepared, prepare_request};

/// Knobs for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Persistent worker threads evaluating schedule requests.
    pub workers: usize,
    /// Admission bound: queued + executing schedule requests.
    pub queue_capacity: usize,
    /// Response cache bound, in entries.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline_ms: None,
        }
    }
}

/// Set by the raw SIGTERM/SIGINT handlers; polled by every accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // A relaxed atomic store is async-signal-safe: no locks, no
    // allocation. Everything else happens on normal threads.
    SIGNALLED.store(true, Ordering::Relaxed);
}

/// Installs SIGTERM/SIGINT handlers that begin a graceful drain.
///
/// Uses the C `signal()` entry point directly (the workspace vendors no
/// libc binding); on non-unix platforms this compiles to a no-op and
/// drains rely on `op:"shutdown"`.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` as POSIX
        // requires, and only performs an atomic store.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    pool: WorkerPool,
    cache: Mutex<LruCache>,
    stats: ServerStats,
    shutdown: AtomicBool,
}

impl Inner {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || SIGNALLED.load(Ordering::Relaxed)
    }
}

/// A running daemon. Dropping it without [`Server::join`] aborts the
/// accept loop but lets in-flight work finish under the pool's own
/// shutdown.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.listen` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            pool: WorkerPool::new(cfg.workers.max(1)),
            cfg,
            cache: Mutex::new(LruCache::new(0)),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
        });
        *inner.cache.lock().unwrap() = LruCache::new(inner.cfg.cache_capacity);
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("bsched-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .expect("spawn accept thread");
        Ok(Server {
            inner,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain, as if `op:"shutdown"` had arrived.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the drain completes: the accept loop has exited and
    /// every admitted request has written its response.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("bsched-serve-conn".to_owned())
                    .spawn(move || serve_connection(stream, &conn_inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Drain: every admitted request decrements the depth only after its
    // response hits the socket, so depth == 0 means all work is flushed.
    while inner.stats.queue_depth.load(Ordering::Relaxed) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
}

type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_line(writer: &SharedWriter, line: &str) {
    let mut w = writer.lock().unwrap();
    // A vanished client is not a server error; the work is done either
    // way and the next read on the connection will see the hangup.
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let writer: SharedWriter = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        let id = request_id(&line);
        match parse_request(&line) {
            Err(reason) => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                write_line(&writer, &error_response(id.as_deref(), "parse", &reason));
            }
            Ok(Request::Ping) => {
                write_line(
                    &writer,
                    &format!(
                        "{{{}\"status\":\"ok\",\"pong\":true}}",
                        crate::protocol::id_fragment(id.as_deref())
                    ),
                );
            }
            Ok(Request::Stats) => {
                write_line(&writer, &render_stats(inner, id.as_deref()));
            }
            Ok(Request::Shutdown) => {
                inner.shutdown.store(true, Ordering::Relaxed);
                write_line(
                    &writer,
                    &format!(
                        "{{{}\"status\":\"ok\",\"draining\":true}}",
                        crate::protocol::id_fragment(id.as_deref())
                    ),
                );
            }
            Ok(Request::Schedule(req)) => {
                admit_schedule(inner, &writer, id, *req);
            }
        }
    }
}

/// Admission control: reserve a queue slot or shed the request with a
/// typed `overloaded` response — never an unbounded queue, never a
/// silent drop.
fn admit_schedule(
    inner: &Arc<Inner>,
    writer: &SharedWriter,
    id: Option<String>,
    req: ScheduleRequest,
) {
    let capacity = inner.cfg.queue_capacity.max(1);
    let injected_reject = fault_point!(Site::ServeReject).is_some();
    let depth = inner.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    if depth >= capacity || inner.draining() || injected_reject {
        inner.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
        write_line(writer, &overloaded_response(id.as_deref(), depth, capacity));
        return;
    }
    let job_inner = Arc::clone(inner);
    let job_writer = Arc::clone(writer);
    let admitted_at = Instant::now();
    inner.pool.spawn(move || {
        run_schedule(&job_inner, &job_writer, id.as_deref(), &req, admitted_at);
        job_inner.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
    });
}

fn run_schedule(
    inner: &Arc<Inner>,
    writer: &SharedWriter,
    id: Option<&str>,
    req: &ScheduleRequest,
    admitted_at: Instant,
) {
    if let Some(fault) = fault_point!(Site::SlowWorker) {
        std::thread::sleep(Duration::from_millis(fault.arg));
    }
    let response = match prepare_request(req) {
        Err((kind, reason)) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_response(id, kind.id(), &reason)
        }
        Ok(prepared) => {
            let key = prepared.key();
            let hit = inner.cache.lock().unwrap().get(key);
            match hit {
                Some(payload) => {
                    inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                    ok_response(id, true, &payload, service_us(admitted_at))
                }
                None => {
                    let deadline = req.deadline_ms.or(inner.cfg.default_deadline_ms);
                    let req_owned = req.clone();
                    let outcome = match deadline {
                        Some(ms) => run_with_timeout(Duration::from_millis(ms), move || {
                            evaluate_prepared(&req_owned, prepared)
                        })
                        .map_err(|_| ()),
                        None => Ok(evaluate_prepared(&req_owned, prepared)),
                    };
                    match outcome {
                        Ok(Ok(done)) => {
                            let payload: Arc<str> = Arc::from(done.payload);
                            inner
                                .cache
                                .lock()
                                .unwrap()
                                .put(done.key, Arc::clone(&payload));
                            inner.stats.ok.fetch_add(1, Ordering::Relaxed);
                            ok_response(id, false, &payload, service_us(admitted_at))
                        }
                        Ok(Err((kind, reason))) => {
                            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                            error_response(id, kind.id(), &reason)
                        }
                        Err(_timeout) => {
                            inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            timeout_response(id, deadline.unwrap_or(0))
                        }
                    }
                }
            }
        }
    };
    inner.stats.record_service(service_us(admitted_at));
    write_line(writer, &response);
}

fn service_us(admitted_at: Instant) -> u64 {
    u64::try_from(admitted_at.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn render_stats(inner: &Inner, id: Option<&str>) -> String {
    let (cache_hits, cache_misses, cache_entries) = {
        let cache = inner.cache.lock().unwrap();
        let (h, m) = cache.counters();
        (h, m, cache.len())
    };
    format!(
        "{{{}\"status\":\"ok\",\"stats\":{{{},\"cache_hits\":{cache_hits},\
         \"cache_misses\":{cache_misses},\"cache_entries\":{cache_entries},\
         \"workers\":{},\"queue_capacity\":{},\"draining\":{}}}}}",
        crate::protocol::id_fragment(id),
        inner.stats.render_fields(),
        inner.cfg.workers.max(1),
        inner.cfg.queue_capacity.max(1),
        inner.draining()
    )
}
