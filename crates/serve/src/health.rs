//! Shard health: liveness state, failure accounting, and the prober.
//!
//! Each backend shard has one [`ShardState`]: an `up` flag plus a
//! consecutive-failure counter fed by *both* signal sources — the
//! periodic health prober here and the router's own forwarding
//! failures. A shard is marked down after `failure_threshold`
//! consecutive failures (one flaky probe is not an outage) and marked
//! up again by the *first* success (good news needs no quorum: a shard
//! that answered is a shard that can serve).
//!
//! The prober is a single thread that pings every shard each interval
//! with hard connect/read deadlines, so a hung shard costs a bounded
//! slice of the probe cycle, never a wedged prober. Probes use the
//! wire protocol's own `{"op":"ping"}` — a shard is healthy when it
//! speaks the protocol, not merely when it accepts TCP.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bsched_par::sync::{thread, AtomicBool, AtomicU32, AtomicU64, Mutex, Ordering};

/// Where a shard sits in the router's membership lifecycle:
/// joining → active → draining → gone (removed from the member list).
///
/// Liveness (`up`) and membership are orthogonal: an Active shard can
/// be down (probe failures) and come back; a Joining shard is up-and
/// -waiting for its first successful probe before it owns keys; a
/// Draining shard is fenced — no new forwards — while in-flight work
/// lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Added but not yet proven reachable; owns no keys.
    Joining,
    /// Full ring member: owns its rendezvous key slice.
    Active,
    /// Fenced: finishes in-flight forwards, accepts no new ones.
    Draining,
}

impl MemberState {
    /// Wire name of the state, as echoed in `/stats` and `members`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MemberState::Joining => "joining",
            MemberState::Active => "active",
            MemberState::Draining => "draining",
        }
    }

    fn from_u32(v: u32) -> MemberState {
        match v {
            0 => MemberState::Joining,
            2 => MemberState::Draining,
            _ => MemberState::Active,
        }
    }

    fn as_u32(self) -> u32 {
        match self {
            MemberState::Joining => 0,
            MemberState::Active => 1,
            MemberState::Draining => 2,
        }
    }
}

/// Health/probe knobs shared by the router and its prober thread.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures (probe or forward) before a shard is
    /// marked down.
    pub failure_threshold: u32,
    /// Probe period per shard.
    pub interval: Duration,
    /// TCP connect deadline for probes and forwards.
    pub connect_timeout: Duration,
    /// Read deadline for a probe's pong / a forward's response line.
    pub read_timeout: Duration,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            failure_threshold: 3,
            interval: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// One backend shard's liveness state and lifetime counters.
pub struct ShardState {
    /// The shard's `host:port` address.
    pub addr: String,
    /// Starts `true`: a fleet boots optimistic and lets evidence mark
    /// shards down, so a slow-starting prober never blanks the fleet.
    up: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Requests this shard answered for the router.
    pub forwarded: AtomicU64,
    /// Requests re-routed *away* because this shard was down/failing.
    pub failed_over: AtomicU64,
    /// Times this shard transitioned up → down.
    pub down_transitions: AtomicU64,
    membership: AtomicU32,
    /// Forwards currently in flight to this shard; drain waits for zero.
    inflight: AtomicU64,
}

impl ShardState {
    /// A fresh, optimistically-up, Active shard.
    #[must_use]
    pub fn new(addr: String) -> ShardState {
        ShardState::with_state(addr, MemberState::Active)
    }

    /// A shard adopted at runtime that has not yet answered a probe; it
    /// owns no keys until the prober promotes it to Active.
    #[must_use]
    pub fn new_joining(addr: String) -> ShardState {
        ShardState::with_state(addr, MemberState::Joining)
    }

    fn with_state(addr: String, state: MemberState) -> ShardState {
        ShardState {
            addr,
            up: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            forwarded: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            down_transitions: AtomicU64::new(0),
            membership: AtomicU32::new(state.as_u32()),
            inflight: AtomicU64::new(0),
        }
    }

    /// Current liveness belief.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Where this shard sits in the membership lifecycle.
    #[must_use]
    pub fn member_state(&self) -> MemberState {
        MemberState::from_u32(self.membership.load(Ordering::SeqCst))
    }

    /// Moves the shard to a new membership state.
    pub fn set_member_state(&self, state: MemberState) {
        self.membership.store(state.as_u32(), Ordering::SeqCst);
    }

    /// Forwards currently in flight to this shard.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Fences a forward against drain: increments the in-flight count
    /// *then* re-checks membership, so a drainer that observes the
    /// Draining state before the count can never miss this forward.
    /// Returns `false` (count released) when the shard is not Active.
    #[must_use]
    pub fn begin_forward(&self) -> bool {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        if self.member_state() == MemberState::Active {
            true
        } else {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            false
        }
    }

    /// Releases a forward admitted by [`Self::begin_forward`].
    pub fn end_forward(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a successful probe or forward: one success rehabilitates,
    /// and promotes a Joining shard to Active (it has now proven it
    /// speaks the protocol, so it may own keys).
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if self
            .membership
            .compare_exchange(
                MemberState::Joining.as_u32(),
                MemberState::Active.as_u32(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            eprintln!("bsched-serve: shard {} joined the ring", self.addr);
        }
        if !self.up.swap(true, Ordering::Relaxed) {
            eprintln!("bsched-serve: shard {} is back up", self.addr);
        }
    }

    /// Records a failed probe or forward; marks the shard down at the
    /// threshold. Returns the new consecutive-failure count.
    pub fn record_failure(&self, threshold: u32) -> u32 {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= threshold.max(1) && self.up.swap(false, Ordering::Relaxed) {
            self.down_transitions.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "bsched-serve: shard {} marked down after {n} consecutive failures",
                self.addr
            );
        }
        n
    }
}

/// One protocol-level liveness probe: connect, `{"op":"ping"}`, expect
/// a pong line — all under `cfg`'s deadlines.
#[must_use]
pub fn ping_shard(addr: &str, cfg: &HealthConfig) -> bool {
    let Ok(mut stream) = connect_with_deadline(addr, cfg.connect_timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.read_timeout));
    if stream.write_all(b"{\"op\":\"ping\"}\n").is_err() {
        return false;
    }
    let mut line = String::new();
    let mut reader = BufReader::new(stream);
    matches!(reader.read_line(&mut line), Ok(n) if n > 0) && line.contains("\"pong\":true")
}

/// `TcpStream::connect_timeout` over a resolvable `host:port` string.
///
/// # Errors
///
/// Address resolution or connect failure (including the deadline).
pub fn connect_with_deadline(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "address resolves to nothing")
    })?;
    TcpStream::connect_timeout(&resolved, timeout)
}

/// Runs the prober loop until `stop` is set: each tick probes every
/// shard and feeds the outcome into its [`ShardState`]. The
/// `shard-down` fault (keyed by `shard<index>|<addr>` cell context)
/// turns a probe into a failure without touching the socket, so chaos
/// plans can take a shard "down" deterministically.
pub fn prober_loop(shards: &[Arc<ShardState>], cfg: &HealthConfig, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        probe_tick(shards, cfg);
        sleep_sliced(cfg.interval, stop);
    }
}

/// Membership-aware prober: re-snapshots the member list each tick, so
/// shards added or drained at runtime are picked up without restarting
/// the router. Joining shards get probed like any other member — their
/// first successful probe promotes them to Active.
pub fn prober_loop_dynamic(
    members: &Mutex<Vec<Arc<ShardState>>>,
    cfg: &HealthConfig,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        let snapshot = members.lock().unwrap().clone();
        probe_tick(&snapshot, cfg);
        sleep_sliced(cfg.interval, stop);
    }
}

fn probe_tick(shards: &[Arc<ShardState>], cfg: &HealthConfig) {
    for (index, shard) in shards.iter().enumerate() {
        let injected_down =
            bsched_faults::with_cell_context(&format!("shard{index}|{}", shard.addr), 0, || {
                bsched_faults::fault_point!(bsched_faults::Site::ShardDown)
            })
            .is_some();
        if !injected_down && ping_shard(&shard.addr, cfg) {
            shard.record_success();
        } else {
            shard.record_failure(cfg.failure_threshold);
        }
    }
}

/// Sleeps in small slices so shutdown is prompt even with a long probe
/// interval.
fn sleep_sliced(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    while remaining > Duration::ZERO && !stop.load(Ordering::Relaxed) {
        let slice = remaining.min(Duration::from_millis(20));
        thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_debounces_single_failures() {
        let shard = ShardState::new("127.0.0.1:1".to_owned());
        assert!(shard.is_up());
        shard.record_failure(3);
        shard.record_failure(3);
        assert!(shard.is_up(), "below threshold stays up");
        shard.record_failure(3);
        assert!(!shard.is_up(), "threshold reached");
        assert_eq!(shard.down_transitions.load(Ordering::Relaxed), 1);
        shard.record_failure(3);
        assert_eq!(
            shard.down_transitions.load(Ordering::Relaxed),
            1,
            "already down: no second transition"
        );
        shard.record_success();
        assert!(shard.is_up(), "one success rehabilitates");
        assert_eq!(shard.consecutive_failures.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn forward_fencing_tracks_membership() {
        let shard = ShardState::new("127.0.0.1:1".to_owned());
        assert_eq!(shard.member_state(), MemberState::Active);
        assert!(shard.begin_forward());
        assert_eq!(shard.inflight(), 1);
        shard.set_member_state(MemberState::Draining);
        assert!(!shard.begin_forward(), "draining shards are fenced");
        assert_eq!(shard.inflight(), 1, "fenced attempt released its slot");
        shard.end_forward();
        assert_eq!(shard.inflight(), 0);

        let joiner = ShardState::new_joining("127.0.0.1:2".to_owned());
        assert_eq!(joiner.member_state(), MemberState::Joining);
        assert!(!joiner.begin_forward(), "joining shards own no keys yet");
        joiner.record_success();
        assert_eq!(
            joiner.member_state(),
            MemberState::Active,
            "first success promotes"
        );
        assert!(joiner.begin_forward());
        joiner.end_forward();
    }

    #[test]
    fn ping_fails_fast_on_a_dead_address() {
        // A bound-then-dropped listener's port refuses connections.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let cfg = HealthConfig {
            connect_timeout: Duration::from_millis(100),
            ..HealthConfig::default()
        };
        assert!(!ping_shard(&addr, &cfg));
    }
}
