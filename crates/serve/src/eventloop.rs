//! Minimal `epoll` + wake-pipe bindings for the event-driven server.
//!
//! The workspace vendors no libc binding, so the three `epoll` entry
//! points, `pipe2`, and the raw `read`/`write`/`close` calls the wake
//! pipe needs are declared here directly. Everything is Linux-only and
//! deliberately tiny: a [`Poller`] owns one epoll instance, a
//! [`WakePipe`] is how worker threads interrupt a blocked
//! `epoll_wait`, and both close their file descriptors on drop.
//!
//! Sockets themselves stay `std` (`TcpListener`/`TcpStream` in
//! non-blocking mode); only readiness notification is raw FFI.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;

// Readiness flags (uapi/linux/eventpoll.h).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2_000_000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32-bit userlands line up); naturally aligned
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-chosen token echoed back with the event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One epoll instance.
pub struct Poller {
    fd: RawFd,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure, if any.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(O_CLOEXEC) })?;
        Ok(Poller { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event but a
        // non-null pointer is valid for every kernel.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &raw mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` with `events`, tagging wakeups with `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure, if any.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the watched event set for `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure, if any.
    #[allow(dead_code)]
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure, if any.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` for events; returns how many landed in
    /// `events`. `EINTR` is retried internally (signals drive the drain
    /// flag, not this return path).
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure, if any (never `EINTR`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            // SAFETY: the events pointer/len describe a live mutable
            // slice; the kernel writes at most `maxevents` entries.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                #[allow(clippy::cast_sign_loss)]
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fd is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// A non-blocking self-pipe: worker threads `wake()` it to interrupt the
/// IO thread's `epoll_wait`; the IO thread registers `read_fd` and
/// `drain()`s it on wakeup. Multiple wakes coalesce (a full pipe is
/// already a pending wake).
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe, both ends non-blocking and close-on-exec.
    ///
    /// # Errors
    ///
    /// The raw `pipe2` failure, if any.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a live 2-slot array, exactly what pipe2
        // writes.
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The readable end, for epoll registration.
    #[must_use]
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupts the owning event loop. Safe from any thread; errors
    /// (pipe full — a wake is already pending) are deliberately
    /// ignored.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one byte from a live stack slot; O_NONBLOCK means
        // this cannot block, and a short/failed write is fine.
        unsafe { write(self.write_fd, (&raw const byte).cast::<c_void>(), 1) };
    }

    /// Swallows every pending wake byte (call on each `read_fd` event —
    /// the pipe is registered edge-triggered).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a live buffer; 0/negative both end the
            // drain.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds are owned and closed exactly once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_interrupts_an_epoll_wait() {
        let poller = Poller::new().expect("epoll_create1");
        let pipe = WakePipe::new().expect("pipe2");
        poller
            .add(pipe.read_fd(), EPOLLIN | EPOLLET, 7)
            .expect("add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending: times out empty.
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0);
        pipe.wake();
        pipe.wake(); // coalesces
        let n = poller.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        pipe.drain();
        // Edge-triggered and drained: quiet again.
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn delete_stops_events() {
        let poller = Poller::new().expect("epoll_create1");
        let pipe = WakePipe::new().expect("pipe2");
        poller
            .add(pipe.read_fd(), EPOLLIN | EPOLLET, 1)
            .expect("add");
        poller.delete(pipe.read_fd()).expect("delete");
        pipe.wake();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        assert_eq!(poller.wait(&mut events, 0).expect("wait"), 0);
    }
}
