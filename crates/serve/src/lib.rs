//! Scheduling-as-a-service: the paper's pipeline behind a socket.
//!
//! The pipeline (kernel → DAG → balanced/traditional schedule →
//! simulated cycles) is a pure, deterministic function of its inputs,
//! which makes it an ideal serving workload: responses are cacheable by
//! content, work is embarrassingly parallel across requests, and
//! correctness does not depend on which worker runs what. This crate
//! provides the daemon behind `bsched serve --listen …`:
//!
//! * [`protocol`] — the line-delimited JSON request/response format;
//! * [`cache`] — a content-addressed LRU response cache keyed by a
//!   stable 128-bit hash of (kernel source, configuration);
//! * [`server`] — the TCP listener, bounded submission queue, persistent
//!   [`bsched_par::WorkerPool`] workers, per-request deadlines via
//!   [`bsched_par::run_with_timeout`], and drain-on-SIGTERM lifecycle;
//! * [`stats`] — counters and p50/p95/p99 service times for `/stats`;
//! * [`persist`] — the append-only, CRC-guarded cache log behind
//!   `--cache-log`: a restarted daemon warm-starts its cache instead of
//!   recomputing it;
//! * [`router`] + [`health`] — `--route` mode: rendezvous-hash the
//!   cache key over N shard daemons, health-check them, and fail over
//!   with typed `degraded:true` responses when one dies.
//!
//! Backpressure is explicit: when the submission queue is full the
//! server answers `{"status":"overloaded", …}` immediately instead of
//! queueing unboundedly — shedding load is a response, not a hang. Two
//! fault-injection sites extend the chaos harness to the serving path:
//! `serve-reject` (admission rejects as if full) and `slow-worker`
//! (workers sleep before evaluating).
//!
//! The request evaluation itself — resolve the kernel, compile, analyze,
//! simulate — lives here in [`evaluate_request`] so the server, tests,
//! and any future transport share one implementation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
#[cfg(target_os = "linux")]
pub(crate) mod eventloop;
pub mod health;
pub mod persist;
pub mod protocol;
pub mod router;
pub mod server;
pub mod stats;

pub use cache::{stable_key, LruCache};
pub use health::{HealthConfig, MemberState, ShardState};
pub use persist::CacheLog;
pub use protocol::{
    is_chunk_line, is_stream_end, parse_request, read_line_bounded, reassemble_stream,
    split_stream, KernelSource, Request, ScheduleRequest, STREAM_END_MARKER,
};
pub use router::{Router, RouterConfig};
pub use server::{install_signal_handlers, Server, ServerConfig};
pub use stats::ServerStats;

use bsched_analyze::json;
use bsched_analyze::{render_json, Analyzer, FailureKind};
use bsched_ir::Function;
use bsched_memsim::LatencyModel;
use bsched_pipeline::{evaluate, EvalConfig, Pipeline, ProgramEval};
use bsched_workload::{parse_program, perfect_club, try_lower_parsed, SourceMap};

/// A typed request failure: the shared failure-vocabulary kind plus a
/// human-readable reason.
pub type RequestError = (FailureKind, String);

/// The resolved kernel: the text (or stand-in name) that identifies it
/// for caching, plus the lowered function and per-block source maps.
struct ResolvedKernel {
    /// Cache-identity text: inline/file *content*, or `benchmark:NAME`.
    identity: String,
    function: Function,
    /// Parallel to `function.blocks()`; `None` for stand-ins.
    maps: Vec<Option<SourceMap>>,
}

/// The stand-in set, constructed once: synthesizing all eight functions
/// costs ~200µs, far too much to repeat on every `benchmark:` request's
/// hot path.
fn standins() -> &'static [bsched_workload::Benchmark] {
    static STANDINS: std::sync::OnceLock<Vec<bsched_workload::Benchmark>> =
        std::sync::OnceLock::new();
    STANDINS.get_or_init(perfect_club)
}

fn resolve_source(source: &KernelSource) -> Result<ResolvedKernel, RequestError> {
    let text = match source {
        KernelSource::Benchmark(name) => {
            let bench = standins()
                .iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    (
                        FailureKind::Parse,
                        format!(
                            "unknown benchmark {name:?} (one of {})",
                            standins()
                                .iter()
                                .map(bsched_workload::Benchmark::name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                })?;
            let maps = bench.function().blocks().iter().map(|_| None).collect();
            return Ok(ResolvedKernel {
                identity: format!("benchmark:{}", bench.name()),
                function: bench.function().clone(),
                maps,
            });
        }
        KernelSource::Inline(text) => text.clone(),
        KernelSource::Path(path) => std::fs::read_to_string(path)
            .map_err(|e| (FailureKind::Parse, format!("{path}: {e}")))?,
    };
    let kernels = parse_program(&text).map_err(|e| (FailureKind::Parse, e.to_string()))?;
    let mut blocks = Vec::new();
    let mut maps = Vec::new();
    for parsed in &kernels {
        let (block, map) =
            try_lower_parsed(parsed).map_err(|e| (FailureKind::Lower, e.to_string()))?;
        blocks.push(block);
        maps.push(Some(map));
    }
    let name = blocks
        .first()
        .map_or_else(|| "program".to_owned(), |b| b.name().to_owned());
    Ok(ResolvedKernel {
        identity: text,
        function: Function::new(name, blocks),
        maps,
    })
}

/// Computes the content-addressed cache key for a request whose kernel
/// has already been resolved to `identity` text. Field order is fixed;
/// see [`cache::stable_key`] for the stability guarantees.
#[must_use]
pub fn request_key(req: &ScheduleRequest, identity: &str) -> u128 {
    let alias = format!("{:?}", req.alias);
    // The key hashes the *canonical* scheduler rendering, not the raw
    // request spelling: every `SchedulerChoice` variant — including the
    // full parameter vector of a tuned `PolicySpec` — feeds the hash, so
    // two distinct policies can never collide and two spellings of the
    // same policy (`traditional=2` / `traditional=2/1`) always do.
    let scheduler = req.scheduler.canonical();
    let system = req.system.name();
    let optimistic = req.optimistic.map_or_else(String::new, |r| r.to_string());
    let processor = req.processor.to_string();
    let runs = req.runs.to_string();
    let seed = req.seed.to_string();
    let analyze = req.analyze.to_string();
    let tune = req.tune.to_string();
    stable_key(&[
        ("source", identity),
        ("alias", &alias),
        ("scheduler", &scheduler),
        ("system", &system),
        ("optimistic", &optimistic),
        ("processor", &processor),
        ("runs", &runs),
        ("seed", &seed),
        ("analyze", &analyze),
        ("tune", &tune),
    ])
}

fn f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn eval_json(e: &ProgramEval) -> String {
    format!(
        "{{\"mean_runtime\":{},\"mean_interlocks\":{},\"dynamic_instructions\":{}}}",
        f64_json(e.mean_runtime),
        f64_json(e.mean_interlocks),
        f64_json(e.dynamic_instructions)
    )
}

/// The outcome of one schedule request, minus transport concerns.
#[derive(Debug)]
pub struct Evaluated {
    /// Content-addressed cache key of the request.
    pub key: u128,
    /// Rendered response payload fragment (`"schedule":…,"eval":…`).
    pub payload: String,
}

/// A request whose kernel has been resolved and whose cache key is
/// known, but which has not been compiled or simulated yet. The server
/// checks the cache between [`prepare_request`] and
/// [`evaluate_prepared`]; a hit skips all the expensive work.
pub struct Prepared {
    key: u128,
    resolved: ResolvedKernel,
}

impl Prepared {
    /// The content-addressed cache key for this request.
    #[must_use]
    pub fn key(&self) -> u128 {
        self.key
    }
}

/// Resolves a request's kernel source and computes its cache key — the
/// cheap front half of the service path (no compilation, no
/// simulation).
///
/// # Errors
///
/// A typed [`RequestError`] when the kernel cannot be read, parsed, or
/// lowered, or names an unknown benchmark.
pub fn prepare_request(req: &ScheduleRequest) -> Result<Prepared, RequestError> {
    let resolved = resolve_source(&req.source)?;
    let key = request_key(req, &resolved.identity);
    Ok(Prepared { key, resolved })
}

/// Resolves, compiles, analyzes, and simulates one schedule request.
///
/// This is the full service path minus transport and caching: the
/// server calls [`prepare_request`] + [`evaluate_prepared`] around its
/// cache; tests call this directly.
///
/// # Errors
///
/// A typed [`RequestError`] for every failure mode the pipeline can
/// report (parse, lower, allocation, validation, budget...).
pub fn evaluate_request(req: &ScheduleRequest) -> Result<Evaluated, RequestError> {
    evaluate_prepared(req, prepare_request(req)?)
}

/// The expensive back half of the service path: compile, analyze, and
/// simulate an already-prepared request.
///
/// # Errors
///
/// A typed [`RequestError`] from the pipeline (allocation, validation,
/// budget...).
pub fn evaluate_prepared(
    req: &ScheduleRequest,
    prepared: Prepared,
) -> Result<Evaluated, RequestError> {
    let Prepared { key, resolved } = prepared;
    let pipeline = Pipeline {
        alias: req.alias,
        ..Pipeline::default()
    };
    let compiled = pipeline
        .compile(&resolved.function, &req.scheduler)
        .map_err(|e| (e.failure_kind(), e.to_string()))?;

    let diagnostics = if req.analyze {
        let analyzer = Analyzer::new(req.alias);
        let mut all = Vec::new();
        for (block, map) in resolved.function.blocks().iter().zip(&resolved.maps) {
            all.extend(analyzer.analyze_block(block, map.as_ref()));
        }
        // `render_json` pretty-prints; the line protocol needs one line.
        // String contents are escaped, so raw newlines only ever appear
        // as separators and can be squashed.
        render_json(&all).replace('\n', " ")
    } else {
        "[]".to_owned()
    };

    let cfg = EvalConfig {
        runs: req.runs,
        processor: req.processor,
        seed: req.seed,
        ..EvalConfig::default()
    };
    let eval = evaluate(&compiled, &req.system, &cfg);

    let blocks: Vec<String> = compiled
        .blocks
        .iter()
        .map(|b| {
            format!(
                "{{\"name\":{},\"instructions\":{},\"spills\":{},\"text\":{}}}",
                json::string(b.block.name()),
                b.block.len(),
                b.spill_count,
                json::string(&b.block.to_string())
            )
        })
        .collect();
    let payload = format!(
        "\"schedule\":{{\"scheduler\":{},\"spill_percent\":{},\"blocks\":[{}]}},\
         \"eval\":{},\"system\":{},\"runs\":{},\"seed\":{},\"diagnostics\":{}",
        json::string(&compiled.scheduler),
        f64_json(compiled.spill_percent()),
        blocks.join(","),
        eval_json(&eval),
        json::string(&req.system.name()),
        req.runs,
        req.seed,
        diagnostics
    );
    Ok(Evaluated { key, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::Request;

    fn schedule(line: &str) -> ScheduleRequest {
        match parse_request(line).expect("request parses") {
            Request::Schedule(r) => *r,
            other => panic!("expected schedule, got {other:?}"),
        }
    }

    #[test]
    fn evaluates_an_inline_kernel_end_to_end() {
        let req = schedule(
            r#"{"kernel":"kernel daxpy { arrays x, y; x[0] = 3.0 * x[0] + y[0]; }",
               "system":"fixed(4)","runs":3}"#,
        );
        let out = evaluate_request(&req).expect("evaluates");
        let v = json::parse(&format!("{{{}}}", out.payload)).expect("payload is one JSON line");
        assert!(
            v.get("eval")
                .unwrap()
                .get("mean_runtime")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        let blocks = v.get("schedule").unwrap().get("blocks").unwrap();
        assert_eq!(blocks.as_array().unwrap().len(), 1);
        assert!(v.get("diagnostics").unwrap().as_array().is_some());
    }

    #[test]
    fn evaluates_a_benchmark_standin_by_name() {
        let req = schedule(r#"{"benchmark":"mdg","system":"N(3,5)","runs":2,"analyze":false}"#);
        let out = evaluate_request(&req).expect("evaluates");
        assert!(out.payload.contains("\"eval\""));
        // Same request, same key; different seed, different key.
        let again = schedule(r#"{"benchmark":"mdg","system":"N(3,5)","runs":2,"analyze":false}"#);
        assert_eq!(out.key, evaluate_request(&again).expect("again").key);
        let reseeded =
            schedule(r#"{"benchmark":"mdg","system":"N(3,5)","runs":2,"seed":1,"analyze":false}"#);
        assert_ne!(out.key, evaluate_request(&reseeded).expect("reseeded").key);
    }

    #[test]
    fn kernel_path_requests_are_content_addressed() {
        let dir = std::env::temp_dir().join(format!("bsched-serve-key-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.bsk");
        let b = dir.join("b.bsk");
        let src = "kernel k { arrays x; x[0] = x[0] + x[0]; }";
        std::fs::write(&a, src).unwrap();
        std::fs::write(&b, src).unwrap();
        let req_a = schedule(&format!(
            r#"{{"kernel_path":{},"system":"fixed(2)","runs":2,"analyze":false}}"#,
            json::string(a.to_str().unwrap())
        ));
        let req_b = schedule(&format!(
            r#"{{"kernel_path":{},"system":"fixed(2)","runs":2,"analyze":false}}"#,
            json::string(b.to_str().unwrap())
        ));
        let inline = schedule(&format!(
            r#"{{"kernel":{},"system":"fixed(2)","runs":2,"analyze":false}}"#,
            json::string(src)
        ));
        let key_a = evaluate_request(&req_a).expect("a").key;
        assert_eq!(key_a, evaluate_request(&req_b).expect("b").key);
        assert_eq!(key_a, evaluate_request(&inline).expect("inline").key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Golden-pinned cache keys, one per `SchedulerChoice` variant plus
    /// the `tune` flag. These pin the canonical request serialization:
    /// a key change here silently invalidates every fleet cache entry
    /// (and cache log) in the field — change them knowingly.
    #[test]
    fn request_keys_are_golden_stable_per_scheduler_variant() {
        for (spec, golden) in [
            ("balanced", "752d01def57cc93efcbe575b069f6738"),
            ("balanced-approx", "33cb6af1fb417930f7d784da649a22e1"),
            ("average", "bd9e2c3c9e391c43979eabf2f1e2fb78"),
            ("traditional=2", "7eacf36d3b36abefbafbacd0d97a99ef"),
            (
                "policy:family=blend:30/1:1/2;rounding=ceil;ties=slack-,pressure+",
                "4f27860488d8c4c9c1ec5df12fc00c2c",
            ),
        ] {
            let req = schedule(&format!(
                r#"{{"kernel":"k","system":"N(3,5)","scheduler":{}}}"#,
                json::string(spec)
            ));
            assert_eq!(
                format!("{:032x}", request_key(&req, "identity")),
                golden,
                "{spec}"
            );
        }
        let req = schedule(r#"{"kernel":"k","system":"N(3,5)","tune":true}"#);
        assert_eq!(
            format!("{:032x}", request_key(&req, "identity")),
            "820bc7a96600d55f7f2fe2323a09d9aa",
            "tune"
        );
    }

    /// Equivalent spellings share a key (the canonical form is hashed,
    /// not the raw spec), and a tuned policy identical to a named
    /// scheduler still gets that scheduler's key.
    #[test]
    fn equivalent_scheduler_spellings_share_a_key() {
        let a = schedule(r#"{"kernel":"k","system":"N(3,5)","scheduler":"traditional=2"}"#);
        let b = schedule(r#"{"kernel":"k","system":"N(3,5)","scheduler":"traditional=2/1"}"#);
        assert_eq!(request_key(&a, "i"), request_key(&b, "i"));
    }

    /// Every policy the tuner's candidate space can generate must map to
    /// a distinct cache key — two distinct policies colliding would let
    /// one policy's schedule be served for another.
    #[test]
    fn distinct_tuned_policies_never_collide() {
        use std::collections::HashMap;
        let space = bsched_tune::CandidateSpace::for_optimistic_latency(30.0);
        let mut seen: HashMap<u128, String> = HashMap::new();
        for spec in space.enumerate() {
            let req = schedule(&format!(
                r#"{{"kernel":"k","system":"N(30,5)","scheduler":{}}}"#,
                json::string(&format!("policy:{}", spec.canonical()))
            ));
            let key = request_key(&req, "identity");
            if let Some(other) = seen.insert(key, spec.canonical()) {
                panic!("key collision: {} vs {}", other, spec.canonical());
            }
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn failures_carry_the_shared_vocabulary() {
        let req = schedule(r#"{"kernel":"not a kernel","system":"fixed(2)"}"#);
        let (kind, reason) = evaluate_request(&req).expect_err("must fail");
        assert_eq!(kind, FailureKind::Parse, "{reason}");
        let req = schedule(r#"{"benchmark":"NOPE","system":"fixed(2)"}"#);
        let (kind, reason) = evaluate_request(&req).expect_err("must fail");
        assert_eq!(kind, FailureKind::Parse);
        assert!(reason.contains("unknown benchmark"), "{reason}");
    }
}
