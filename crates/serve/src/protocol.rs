//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request may carry
//! an `id` string which is echoed verbatim in its response; because slow
//! requests run on worker threads, responses on a pipelined connection
//! may arrive **out of order** — clients match on `id`.
//!
//! Request shapes:
//!
//! ```json
//! {"op":"schedule","id":"r1","kernel":"k d { ... }","system":"L80(2,5)",
//!  "scheduler":"balanced","alias":"fortran","processor":"unlimited",
//!  "runs":10,"seed":7,"deadline_ms":5000,"analyze":true}
//! {"op":"schedule","kernel_path":"kernels/daxpy.bsk","system":"N(3,5)"}
//! {"op":"schedule","benchmark":"MDG","system":"L80(2,5)","optimistic":"2"}
//! {"op":"stats"}     — also accepted as the bare line "/stats"
//! {"op":"ping"}
//! {"op":"shutdown"}  — begins a graceful drain
//! ```
//!
//! Response statuses: `ok`, `error` (with a `kind` from the shared
//! failure vocabulary and a human `reason`), `overloaded` (typed
//! backpressure — the submission queue was full; retry later), and
//! `timeout` (the request's own deadline expired).

use bsched_analyze::json::{self, Json};
use bsched_core::Ratio;
use bsched_cpusim::ProcessorModel;
use bsched_dag::{AliasModel, ChancesMethod};
use bsched_memsim::MemorySystem;
use bsched_pipeline::SchedulerChoice;

/// Where the kernel to schedule comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSource {
    /// Kernel text carried inline in the request.
    Inline(String),
    /// Path to a kernel file readable by the *server* process. The cache
    /// key hashes the file's content, not its path.
    Path(String),
    /// One of the built-in Perfect Club stand-ins, by name (`ADM`,
    /// `MDG`, …).
    Benchmark(String),
}

/// A fully parsed `schedule` request.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// The kernel to compile and simulate.
    pub source: KernelSource,
    /// Alias discipline (raw spec kept for the cache key).
    pub alias: AliasModel,
    /// Scheduler choice.
    pub scheduler: SchedulerChoice,
    /// Raw scheduler spec string, canonical for the cache key.
    pub scheduler_spec: String,
    /// Memory system to simulate.
    pub system: MemorySystem,
    /// Traditional baseline latency override (defaults per system).
    pub optimistic: Option<Ratio>,
    /// Processor model.
    pub processor: ProcessorModel,
    /// Simulation runs per block (default 10 — servers favour latency;
    /// batch tables use 30).
    pub runs: u32,
    /// Master seed (default matches the batch harness).
    pub seed: u64,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether to run the analyzer lints and attach diagnostics.
    pub analyze: bool,
}

/// One request line, decoded.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile + simulate a kernel.
    Schedule(Box<ScheduleRequest>),
    /// Introspection snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain.
    Shutdown,
}

/// Default simulation runs for served requests.
pub const DEFAULT_RUNS: u32 = 10;

fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

fn parse_alias(v: &Json) -> Result<AliasModel, String> {
    match get_str(v, "alias").unwrap_or("fortran") {
        "fortran" => Ok(AliasModel::Fortran),
        "c" => Ok(AliasModel::CConservative),
        other => Err(format!("unknown alias model {other:?} (fortran|c)")),
    }
}

fn parse_scheduler(spec: &str) -> Result<SchedulerChoice, String> {
    match spec {
        "balanced" => Ok(SchedulerChoice::balanced()),
        "balanced-approx" => Ok(SchedulerChoice::Balanced {
            method: ChancesMethod::LevelApprox,
        }),
        "average" => Ok(SchedulerChoice::Average),
        other => {
            if let Some(lat) = other.strip_prefix("traditional=") {
                let latency: Ratio = lat
                    .parse()
                    .map_err(|e| format!("bad latency {lat:?}: {e}"))?;
                Ok(SchedulerChoice::traditional(latency))
            } else {
                Err(format!("unknown scheduler {other:?}"))
            }
        }
    }
}

fn parse_processor(v: &Json) -> Result<ProcessorModel, String> {
    match get_str(v, "processor").unwrap_or("unlimited") {
        "unlimited" => Ok(ProcessorModel::Unlimited),
        "max8" => Ok(ProcessorModel::max_8()),
        "len8" => Ok(ProcessorModel::len_8()),
        other => Err(format!("unknown processor {other:?} (unlimited|max8|len8)")),
    }
}

/// Extracts the echoed request id, if any, even from requests that
/// otherwise fail to decode.
#[must_use]
pub fn request_id(line: &str) -> Option<String> {
    let v = json::parse(line)?;
    get_str(&v, "id").map(str::to_owned)
}

/// Decodes one request line.
///
/// # Errors
///
/// A human-readable description of the first problem found; the server
/// turns it into a typed `error` response with kind `parse`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line == "/stats" {
        return Ok(Request::Stats);
    }
    let v = json::parse(line).ok_or("request is not valid JSON")?;
    v.as_object().ok_or("request must be a JSON object")?;
    match get_str(&v, "op").unwrap_or("schedule") {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "schedule" => parse_schedule(&v).map(|r| Request::Schedule(Box::new(r))),
        other => Err(format!(
            "unknown op {other:?} (schedule|stats|ping|shutdown)"
        )),
    }
}

fn parse_schedule(v: &Json) -> Result<ScheduleRequest, String> {
    let source = match (
        get_str(v, "kernel"),
        get_str(v, "kernel_path"),
        get_str(v, "benchmark"),
    ) {
        (Some(text), None, None) => KernelSource::Inline(text.to_owned()),
        (None, Some(path), None) => KernelSource::Path(path.to_owned()),
        (None, None, Some(name)) => KernelSource::Benchmark(name.to_owned()),
        (None, None, None) => {
            return Err("missing kernel source (one of kernel|kernel_path|benchmark)".to_owned())
        }
        _ => return Err("give exactly one of kernel|kernel_path|benchmark".to_owned()),
    };
    let scheduler_spec = get_str(v, "scheduler").unwrap_or("balanced").to_owned();
    let scheduler = parse_scheduler(&scheduler_spec)?;
    let system: MemorySystem = get_str(v, "system")
        .ok_or("missing field \"system\" (e.g. \"L80(2,5)\", \"N(3,5)\", \"fixed(4)\")")?
        .parse()
        .map_err(|e| format!("bad system: {e}"))?;
    let optimistic = match get_str(v, "optimistic") {
        None => None,
        Some(spec) => Some(
            spec.parse::<Ratio>()
                .map_err(|e| format!("bad optimistic latency {spec:?}: {e}"))?,
        ),
    };
    let runs = match v.get("runs") {
        None => DEFAULT_RUNS,
        #[allow(clippy::cast_possible_truncation)]
        Some(n) => n
            .as_u64()
            .filter(|n| (2..=10_000).contains(n))
            .ok_or("\"runs\" must be an integer in [2, 10000]")? as u32,
    };
    let seed = match v.get("seed") {
        None => bsched_pipeline::EvalConfig::default().seed,
        Some(n) => n
            .as_u64()
            .ok_or("\"seed\" must be a non-negative integer")?,
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(n) => Some(
            n.as_u64()
                .filter(|n| *n > 0)
                .ok_or("\"deadline_ms\" must be a positive integer")?,
        ),
    };
    let analyze = match v.get("analyze") {
        None => true,
        Some(b) => b.as_bool().ok_or("\"analyze\" must be a boolean")?,
    };
    Ok(ScheduleRequest {
        source,
        alias: parse_alias(v)?,
        scheduler,
        scheduler_spec,
        system,
        optimistic,
        processor: parse_processor(v)?,
        runs,
        seed,
        deadline_ms,
        analyze,
    })
}

/// Renders the optional leading `"id":…,` fragment responses start
/// with.
#[must_use]
pub fn id_fragment(id: Option<&str>) -> String {
    id.map_or_else(String::new, |id| format!("\"id\":{},", json::string(id)))
}

/// Renders an `ok` response around a cached or freshly computed payload
/// fragment (the fragment carries `schedule`/`eval`/`diagnostics`).
#[must_use]
pub fn ok_response(id: Option<&str>, cached: bool, payload: &str, service_us: u64) -> String {
    format!(
        "{{{}\"status\":\"ok\",\"cached\":{cached},{payload},\"service_us\":{service_us}}}",
        id_fragment(id)
    )
}

/// Renders a typed `error` response using the shared failure
/// vocabulary.
#[must_use]
pub fn error_response(id: Option<&str>, kind: &str, reason: &str) -> String {
    format!(
        "{{{}\"status\":\"error\",\"kind\":{},\"reason\":{}}}",
        id_fragment(id),
        json::string(kind),
        json::string(reason)
    )
}

/// Renders the typed backpressure response: the submission queue is
/// full (or an injected fault said to pretend it is). Clients retry
/// with backoff; the server has shed the work, not queued it.
#[must_use]
pub fn overloaded_response(id: Option<&str>, depth: usize, capacity: usize) -> String {
    format!(
        "{{{}\"status\":\"overloaded\",\"queue_depth\":{depth},\"queue_capacity\":{capacity},\
         \"retry\":true}}",
        id_fragment(id)
    )
}

/// Renders the per-request deadline expiry response.
#[must_use]
pub fn timeout_response(id: Option<&str>, deadline_ms: u64) -> String {
    format!(
        "{{{}\"status\":\"timeout\",\"deadline_ms\":{deadline_ms}}}",
        id_fragment(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_schedule_request() {
        let req = parse_request(
            r#"{"op":"schedule","id":"r1","kernel":"k d { }","system":"L80(2,5)",
               "scheduler":"traditional=2","alias":"c","processor":"max8",
               "runs":5,"seed":9,"deadline_ms":250,"analyze":false}"#,
        )
        .expect("parses");
        let Request::Schedule(req) = req else {
            panic!("expected schedule")
        };
        assert_eq!(req.source, KernelSource::Inline("k d { }".to_owned()));
        assert_eq!(req.alias, AliasModel::CConservative);
        assert_eq!(req.scheduler_spec, "traditional=2");
        assert_eq!(req.runs, 5);
        assert_eq!(req.seed, 9);
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.analyze);
    }

    #[test]
    fn defaults_are_applied() {
        let req = parse_request(r#"{"benchmark":"MDG","system":"N(3,5)"}"#).expect("parses");
        let Request::Schedule(req) = req else {
            panic!("expected schedule")
        };
        assert_eq!(req.source, KernelSource::Benchmark("MDG".to_owned()));
        assert_eq!(req.alias, AliasModel::Fortran);
        assert_eq!(req.scheduler_spec, "balanced");
        assert_eq!(req.runs, DEFAULT_RUNS);
        assert_eq!(req.deadline_ms, None);
        assert!(req.analyze);
    }

    #[test]
    fn control_ops_and_bare_stats_line() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(parse_request("/stats"), Ok(Request::Stats)));
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "not valid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (
                r#"{"op":"schedule","system":"N(3,5)"}"#,
                "missing kernel source",
            ),
            (
                r#"{"kernel":"k","kernel_path":"p","system":"N(3,5)"}"#,
                "exactly one",
            ),
            (r#"{"kernel":"k d { }"}"#, "missing field \"system\""),
            (
                r#"{"kernel":"k","system":"N(3,5)","runs":1}"#,
                "\"runs\" must be",
            ),
            (
                r#"{"kernel":"k","system":"N(3,5)","deadline_ms":0}"#,
                "\"deadline_ms\" must be",
            ),
            (r#"{"kernel":"k","system":"bogus"}"#, "bad system"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn responses_are_wellformed_and_echo_ids() {
        for rendered in [
            ok_response(Some("a\"b"), true, "\"eval\":{}", 12),
            error_response(Some("x"), "parse", "bad \"thing\""),
            overloaded_response(None, 8, 8),
            timeout_response(Some("t"), 100),
        ] {
            let v = json::parse(&rendered).expect(&rendered);
            assert!(v.get("status").is_some(), "{rendered}");
        }
        let ok = json::parse(&ok_response(Some("a\"b"), true, "\"eval\":{}", 12)).unwrap();
        assert_eq!(ok.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(ok.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            request_id(r#"{"id":"r9","op":"ping"}"#).as_deref(),
            Some("r9")
        );
        assert_eq!(request_id("garbage"), None);
    }
}
