//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Every request may carry
//! an `id` string which is echoed verbatim in its response; because slow
//! requests run on worker threads, responses on a pipelined connection
//! may arrive **out of order** — clients match on `id`.
//!
//! Request shapes:
//!
//! ```json
//! {"op":"schedule","id":"r1","kernel":"k d { ... }","system":"L80(2,5)",
//!  "scheduler":"balanced","alias":"fortran","processor":"unlimited",
//!  "runs":10,"seed":7,"deadline_ms":5000,"analyze":true,"tune":false}
//! {"op":"schedule","kernel_path":"kernels/daxpy.bsk","system":"N(3,5)"}
//! {"op":"schedule","benchmark":"MDG","system":"L80(2,5)","optimistic":"2"}
//! {"op":"stats"}     — also accepted as the bare line "/stats"
//! {"op":"ping"}
//! {"op":"shutdown"}  — begins a graceful drain
//! {"op":"add-shard","addr":"host:port"}              — router only
//! {"op":"drain-shard","addr":"host:port","stop":true} — router only
//! {"op":"members"}                                    — router only
//! ```
//!
//! Response statuses: `ok`, `error` (with a `kind` from the shared
//! failure vocabulary and a human `reason`), `overloaded` (typed
//! backpressure — the submission queue was full; retry later), and
//! `timeout` (the request's own deadline expired).
//!
//! ## Streaming
//!
//! A schedule request carrying `"stream":true` is answered as one
//! `{"status":"chunk","seq":i,"block":{…}}` line per compiled block
//! followed by a terminal summary line that starts with
//! `{"stream_end":true,"chunks":N,` and carries everything else the
//! single-line response would have carried (with the blocks array
//! emptied). [`split_stream`] and [`reassemble_stream`] are exact
//! inverses: joining the chunks back into the terminal line reproduces
//! the non-streamed response byte for byte. Framing is sound because
//! [`json::string`] escapes every quote — the raw marker byte sequences
//! (`"status":"chunk"`, `"stream_end":true`) cannot occur inside any
//! rendered string value. Responses without a blocks array (errors,
//! overload, timeout) stay single-line even for streaming clients.

use bsched_analyze::json::{self, Json};
use bsched_core::Ratio;
use bsched_cpusim::ProcessorModel;
use bsched_dag::{AliasModel, ChancesMethod};
use bsched_memsim::MemorySystem;
use bsched_pipeline::{PolicySpec, SchedulerChoice};

/// Where the kernel to schedule comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSource {
    /// Kernel text carried inline in the request.
    Inline(String),
    /// Path to a kernel file readable by the *server* process. The cache
    /// key hashes the file's content, not its path.
    Path(String),
    /// One of the built-in Perfect Club stand-ins, by name (`ADM`,
    /// `MDG`, …).
    Benchmark(String),
}

/// A fully parsed `schedule` request.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// The kernel to compile and simulate.
    pub source: KernelSource,
    /// Alias discipline (raw spec kept for the cache key).
    pub alias: AliasModel,
    /// Scheduler choice.
    pub scheduler: SchedulerChoice,
    /// Raw scheduler spec string as the client spelled it (display
    /// only — the cache key hashes `scheduler.canonical()` instead).
    pub scheduler_spec: String,
    /// Memory system to simulate.
    pub system: MemorySystem,
    /// Traditional baseline latency override (defaults per system).
    pub optimistic: Option<Ratio>,
    /// Processor model.
    pub processor: ProcessorModel,
    /// Simulation runs per block (default 10 — servers favour latency;
    /// batch tables use 30).
    pub runs: u32,
    /// Master seed (default matches the batch harness).
    pub seed: u64,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether to run the analyzer lints and attach diagnostics.
    pub analyze: bool,
    /// Stream the response as one chunk line per block plus a terminal
    /// summary line. Deliberately **not** part of the cache key —
    /// streamed and plain requests share cache entries.
    pub stream: bool,
    /// Whether a cache miss should also enqueue a background policy
    /// search (`bsched-tune`) for this request's key; the winning
    /// schedule is installed into the cache so subsequent identical
    /// requests are served tuned. Part of the cache key — tuned and
    /// untuned requests must never share an entry, because the tuner
    /// overwrites the tuned entry's payload in place.
    pub tune: bool,
    /// Simulated per-request service stall in microseconds (0..=1s),
    /// slept on the worker before the cache is even consulted. A
    /// load-testing knob: it models IO- or memory-stall-dominated
    /// service time so fleet-scaling curves measure concurrency rather
    /// than host core count. Not part of the cache key — it does not
    /// change the result.
    pub stall_us: u64,
}

/// One request line, decoded.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile + simulate a kernel.
    Schedule(Box<ScheduleRequest>),
    /// Introspection snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain.
    Shutdown,
    /// Add a shard to the router's ring at runtime (router only).
    AddShard {
        /// `host:port` of the shard daemon to adopt.
        addr: String,
    },
    /// Fence, flush, and remove a shard from the ring (router only).
    DrainShard {
        /// `host:port` of the shard to drain.
        addr: String,
        /// Whether to send the drained daemon a graceful shutdown once
        /// it is fenced and idle (default true).
        stop: bool,
    },
    /// List the router's current membership (router only).
    Members,
}

/// Default simulation runs for served requests.
pub const DEFAULT_RUNS: u32 = 10;

fn get_str<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Json::as_str)
}

fn parse_alias(v: &Json) -> Result<AliasModel, String> {
    match get_str(v, "alias").unwrap_or("fortran") {
        "fortran" => Ok(AliasModel::Fortran),
        "c" => Ok(AliasModel::CConservative),
        other => Err(format!("unknown alias model {other:?} (fortran|c)")),
    }
}

fn parse_scheduler(spec: &str) -> Result<SchedulerChoice, String> {
    match spec {
        "balanced" => Ok(SchedulerChoice::balanced()),
        "balanced-approx" => Ok(SchedulerChoice::Balanced {
            method: ChancesMethod::LevelApprox,
        }),
        "average" => Ok(SchedulerChoice::Average),
        other => {
            if let Some(lat) = other.strip_prefix("traditional=") {
                let latency: Ratio = lat
                    .parse()
                    .map_err(|e| format!("bad latency {lat:?}: {e}"))?;
                Ok(SchedulerChoice::traditional(latency))
            } else if let Some(canonical) = other.strip_prefix("policy:") {
                // A tuned policy travels inline as its canonical string
                // (the `bsched tune` artifact's "canonical" field) — the
                // server never reads client-side files.
                let spec = PolicySpec::parse_canonical(canonical).map_err(|e| format!("{e}"))?;
                Ok(SchedulerChoice::Tuned(spec))
            } else {
                Err(format!("unknown scheduler {other:?}"))
            }
        }
    }
}

fn parse_processor(v: &Json) -> Result<ProcessorModel, String> {
    match get_str(v, "processor").unwrap_or("unlimited") {
        "unlimited" => Ok(ProcessorModel::Unlimited),
        "max8" => Ok(ProcessorModel::max_8()),
        "len8" => Ok(ProcessorModel::len_8()),
        other => Err(format!("unknown processor {other:?} (unlimited|max8|len8)")),
    }
}

/// Extracts the echoed request id, if any, even from requests that
/// otherwise fail to decode.
#[must_use]
pub fn request_id(line: &str) -> Option<String> {
    let v = json::parse(line)?;
    get_str(&v, "id").map(str::to_owned)
}

/// Decodes one request line.
///
/// # Errors
///
/// A human-readable description of the first problem found; the server
/// turns it into a typed `error` response with kind `parse`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line == "/stats" {
        return Ok(Request::Stats);
    }
    let v = json::parse(line).ok_or("request is not valid JSON")?;
    v.as_object().ok_or("request must be a JSON object")?;
    match get_str(&v, "op").unwrap_or("schedule") {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "members" => Ok(Request::Members),
        "add-shard" => Ok(Request::AddShard {
            addr: parse_addr(&v)?,
        }),
        "drain-shard" => Ok(Request::DrainShard {
            addr: parse_addr(&v)?,
            stop: match v.get("stop") {
                None => true,
                Some(b) => b.as_bool().ok_or("\"stop\" must be a boolean")?,
            },
        }),
        "schedule" => parse_schedule(&v).map(|r| Request::Schedule(Box::new(r))),
        other => Err(format!(
            "unknown op {other:?} (schedule|stats|ping|shutdown|add-shard|drain-shard|members)"
        )),
    }
}

fn parse_addr(v: &Json) -> Result<String, String> {
    let addr = get_str(v, "addr").ok_or("missing field \"addr\" (host:port)")?;
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("bad addr {addr:?} (want host:port)"));
    }
    Ok(addr.to_owned())
}

fn parse_schedule(v: &Json) -> Result<ScheduleRequest, String> {
    let source = match (
        get_str(v, "kernel"),
        get_str(v, "kernel_path"),
        get_str(v, "benchmark"),
    ) {
        (Some(text), None, None) => KernelSource::Inline(text.to_owned()),
        (None, Some(path), None) => KernelSource::Path(path.to_owned()),
        (None, None, Some(name)) => KernelSource::Benchmark(name.to_owned()),
        (None, None, None) => {
            return Err("missing kernel source (one of kernel|kernel_path|benchmark)".to_owned())
        }
        _ => return Err("give exactly one of kernel|kernel_path|benchmark".to_owned()),
    };
    let scheduler_spec = get_str(v, "scheduler").unwrap_or("balanced").to_owned();
    let scheduler = parse_scheduler(&scheduler_spec)?;
    let system: MemorySystem = get_str(v, "system")
        .ok_or("missing field \"system\" (e.g. \"L80(2,5)\", \"N(3,5)\", \"fixed(4)\")")?
        .parse()
        .map_err(|e| format!("bad system: {e}"))?;
    let optimistic = match get_str(v, "optimistic") {
        None => None,
        Some(spec) => Some(
            spec.parse::<Ratio>()
                .map_err(|e| format!("bad optimistic latency {spec:?}: {e}"))?,
        ),
    };
    let runs = match v.get("runs") {
        None => DEFAULT_RUNS,
        #[allow(clippy::cast_possible_truncation)]
        Some(n) => n
            .as_u64()
            .filter(|n| (2..=10_000).contains(n))
            .ok_or("\"runs\" must be an integer in [2, 10000]")? as u32,
    };
    let seed = match v.get("seed") {
        None => bsched_pipeline::EvalConfig::default().seed,
        Some(n) => n
            .as_u64()
            .ok_or("\"seed\" must be a non-negative integer")?,
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(n) => Some(
            n.as_u64()
                .filter(|n| *n > 0)
                .ok_or("\"deadline_ms\" must be a positive integer")?,
        ),
    };
    let analyze = match v.get("analyze") {
        None => true,
        Some(b) => b.as_bool().ok_or("\"analyze\" must be a boolean")?,
    };
    let stream = match v.get("stream") {
        None => false,
        Some(b) => b.as_bool().ok_or("\"stream\" must be a boolean")?,
    };
    let tune = match v.get("tune") {
        None => false,
        Some(b) => b.as_bool().ok_or("\"tune\" must be a boolean")?,
    };
    let stall_us = match v.get("stall_us") {
        None => 0,
        Some(n) => n
            .as_u64()
            .filter(|n| *n <= 1_000_000)
            .ok_or("\"stall_us\" must be an integer in [0, 1000000]")?,
    };
    Ok(ScheduleRequest {
        source,
        alias: parse_alias(v)?,
        scheduler,
        scheduler_spec,
        system,
        optimistic,
        processor: parse_processor(v)?,
        runs,
        seed,
        deadline_ms,
        analyze,
        stream,
        tune,
        stall_us,
    })
}

/// Renders the optional leading `"id":…,` fragment responses start
/// with.
#[must_use]
pub fn id_fragment(id: Option<&str>) -> String {
    id.map_or_else(String::new, |id| format!("\"id\":{},", json::string(id)))
}

/// Renders an `ok` response around a cached or freshly computed payload
/// fragment (the fragment carries `schedule`/`eval`/`diagnostics`).
#[must_use]
pub fn ok_response(id: Option<&str>, cached: bool, payload: &str, service_us: u64) -> String {
    format!(
        "{{{}\"status\":\"ok\",\"cached\":{cached},{payload},\"service_us\":{service_us}}}",
        id_fragment(id)
    )
}

/// Renders a typed `error` response using the shared failure
/// vocabulary.
#[must_use]
pub fn error_response(id: Option<&str>, kind: &str, reason: &str) -> String {
    format!(
        "{{{}\"status\":\"error\",\"kind\":{},\"reason\":{}}}",
        id_fragment(id),
        json::string(kind),
        json::string(reason)
    )
}

/// Renders the typed backpressure response: the submission queue is
/// full (or an injected fault said to pretend it is). Clients retry
/// with backoff; the server has shed the work, not queued it.
#[must_use]
pub fn overloaded_response(id: Option<&str>, depth: usize, capacity: usize) -> String {
    format!(
        "{{{}\"status\":\"overloaded\",\"queue_depth\":{depth},\"queue_capacity\":{capacity},\
         \"retry\":true}}",
        id_fragment(id)
    )
}

/// Renders the per-request deadline expiry response.
#[must_use]
pub fn timeout_response(id: Option<&str>, deadline_ms: u64) -> String {
    format!(
        "{{{}\"status\":\"timeout\",\"deadline_ms\":{deadline_ms}}}",
        id_fragment(id)
    )
}

/// Renders the typed oversized-request error (the inbound line cap).
#[must_use]
pub fn too_large_response(id: Option<&str>, limit: usize) -> String {
    format!(
        "{{{}\"status\":\"error\",\"kind\":\"too_large\",\
         \"reason\":\"request line exceeds {limit} bytes\",\"limit_bytes\":{limit}}}",
        id_fragment(id)
    )
}

/// Renders the typed notice written (best-effort) before a slow
/// consumer whose outbound backlog exceeded the per-connection cap is
/// disconnected.
#[must_use]
pub fn slow_consumer_response(cap: usize) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":\"slow_consumer\",\
         \"reason\":\"outbound buffer exceeded {cap} bytes; disconnecting\",\"cap_bytes\":{cap}}}"
    )
}

/// Marker carried by the terminal line of a streamed response (and by
/// [`stream_aborted_response`]); the router and clients frame streams
/// on it. Cannot occur raw inside any rendered JSON string value
/// because [`json::string`] escapes quotes.
pub const STREAM_END_MARKER: &str = "\"stream_end\":true";

const CHUNK_MARKER: &str = "\"status\":\"chunk\"";
const BLOCKS_NEEDLE: &str = "\"blocks\":[";
const BLOCK_FIELD: &str = ",\"block\":";

/// Whether a response line is a streaming chunk.
#[must_use]
pub fn is_chunk_line(line: &str) -> bool {
    line.starts_with('{') && line.contains(CHUNK_MARKER)
}

/// Whether a response line terminates a stream (summary or abort).
#[must_use]
pub fn is_stream_end(line: &str) -> bool {
    line.contains(STREAM_END_MARKER)
}

/// Typed terminator spliced into a relayed stream when the shard dies
/// after the first chunk has already reached the client: the stream can
/// no longer be retried or failed over without duplicating chunks, so
/// it ends loudly instead of truncating silently. Carries
/// [`STREAM_END_MARKER`] so client framing terminates normally.
#[must_use]
pub fn stream_aborted_response(id: Option<&str>, reason: &str) -> String {
    format!(
        "{{{}\"status\":\"error\",\"kind\":\"stream_aborted\",\"reason\":{},{STREAM_END_MARKER}}}",
        id_fragment(id),
        json::string(reason)
    )
}

/// Splits one rendered single-line response into per-block chunk lines
/// plus a terminal summary line.
///
/// Each chunk is `{"id":…,"status":"chunk","seq":i,"block":<elem>}`
/// where `<elem>` is the exact byte slice of the i-th `blocks` array
/// element. The terminal line is the original response with
/// `"stream_end":true,"chunks":N,` spliced after the opening brace and
/// the blocks array emptied. Returns `None` when the line carries no
/// `"blocks":[` array (errors, overload, timeout, stats) — such
/// responses stay single-line even for streaming clients.
#[must_use]
pub fn split_stream(id: Option<&str>, line: &str) -> Option<(Vec<String>, String)> {
    let start = line.find(BLOCKS_NEEDLE)? + BLOCKS_NEEDLE.len();
    let (elems, close) = split_array_elements(&line[start..])?;
    let frag = id_fragment(id);
    let chunks: Vec<String> = elems
        .iter()
        .enumerate()
        .map(|(seq, block)| format!("{{{frag}{CHUNK_MARKER},\"seq\":{seq},\"block\":{block}}}"))
        .collect();
    let terminal = format!(
        "{{{STREAM_END_MARKER},\"chunks\":{},{}{}",
        chunks.len(),
        &line[1..start],
        &line[start + close..]
    );
    Some((chunks, terminal))
}

/// Exact inverse of [`split_stream`]: splices the chunk blocks back
/// into the terminal line's emptied array, reproducing the non-streamed
/// response byte for byte. Returns `None` when the lines are not a
/// well-formed chunk sequence + terminal.
#[must_use]
pub fn reassemble_stream(chunks: &[String], terminal: &str) -> Option<String> {
    let prefix = format!("{{{STREAM_END_MARKER},\"chunks\":{},", chunks.len());
    let rest = terminal.strip_prefix(prefix.as_str())?;
    let empty = format!("{BLOCKS_NEEDLE}]");
    let at = rest.find(empty.as_str())?;
    let blocks: Option<Vec<&str>> = chunks.iter().map(|c| chunk_block(c)).collect();
    Some(format!(
        "{{{}{BLOCKS_NEEDLE}{}]{}",
        &rest[..at],
        blocks?.join(","),
        &rest[at + empty.len()..]
    ))
}

/// The raw `"block"` value of one chunk line — the exact byte slice of
/// the original blocks-array element.
#[must_use]
pub fn chunk_block(chunk: &str) -> Option<&str> {
    let at = chunk.find(BLOCK_FIELD)? + BLOCK_FIELD.len();
    chunk.strip_suffix('}').map(|s| &s[at..])
}

/// Splits the elements of a JSON array whose opening `[` has already
/// been consumed; `rest` starts at the first element (or at `]`).
/// Returns the element byte slices and the offset of the closing
/// bracket within `rest`, or `None` if the array never closes.
fn split_array_elements(rest: &str) -> Option<(Vec<&str>, usize)> {
    let bytes = rest.as_bytes();
    let mut elems = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut elem_start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'[' | b'{' => depth += 1,
            b']' if depth == 0 => {
                if i > elem_start {
                    elems.push(&rest[elem_start..i]);
                }
                return Some((elems, i));
            }
            b']' | b'}' => depth = depth.checked_sub(1)?,
            b',' if depth == 0 => {
                elems.push(&rest[elem_start..i]);
                elem_start = i + 1;
            }
            _ => {}
        }
    }
    None
}

/// Reads one `\n`-terminated line with a hard size cap, like
/// `BufRead::read_line` but bounded and CR-tolerant. `Ok(None)` is a
/// clean EOF; a final unterminated line is returned like
/// `BufRead::lines` would.
///
/// # Errors
///
/// `InvalidData` when the line exceeds `cap` bytes (the caller renders
/// a typed `too_large` response); otherwise the underlying IO error.
pub fn read_line_bounded<R: std::io::BufRead>(
    reader: &mut R,
    cap: usize,
) -> std::io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        if let Some(at) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..at]);
            reader.consume(at + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > cap {
                return Err(line_too_long(cap));
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        let n = buf.len();
        line.extend_from_slice(buf);
        reader.consume(n);
        if line.len() > cap {
            return Err(line_too_long(cap));
        }
    }
}

fn line_too_long(cap: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("line exceeds {cap} bytes"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_schedule_request() {
        let req = parse_request(
            r#"{"op":"schedule","id":"r1","kernel":"k d { }","system":"L80(2,5)",
               "scheduler":"traditional=2","alias":"c","processor":"max8",
               "runs":5,"seed":9,"deadline_ms":250,"analyze":false}"#,
        )
        .expect("parses");
        let Request::Schedule(req) = req else {
            panic!("expected schedule")
        };
        assert_eq!(req.source, KernelSource::Inline("k d { }".to_owned()));
        assert_eq!(req.alias, AliasModel::CConservative);
        assert_eq!(req.scheduler_spec, "traditional=2");
        assert_eq!(req.runs, 5);
        assert_eq!(req.seed, 9);
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.analyze);
    }

    #[test]
    fn defaults_are_applied() {
        let req = parse_request(r#"{"benchmark":"MDG","system":"N(3,5)"}"#).expect("parses");
        let Request::Schedule(req) = req else {
            panic!("expected schedule")
        };
        assert_eq!(req.source, KernelSource::Benchmark("MDG".to_owned()));
        assert_eq!(req.alias, AliasModel::Fortran);
        assert_eq!(req.scheduler_spec, "balanced");
        assert_eq!(req.runs, DEFAULT_RUNS);
        assert_eq!(req.deadline_ms, None);
        assert!(req.analyze);
    }

    #[test]
    fn control_ops_and_bare_stats_line() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(parse_request("/stats"), Ok(Request::Stats)));
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "not valid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (
                r#"{"op":"schedule","system":"N(3,5)"}"#,
                "missing kernel source",
            ),
            (
                r#"{"kernel":"k","kernel_path":"p","system":"N(3,5)"}"#,
                "exactly one",
            ),
            (r#"{"kernel":"k d { }"}"#, "missing field \"system\""),
            (
                r#"{"kernel":"k","system":"N(3,5)","runs":1}"#,
                "\"runs\" must be",
            ),
            (
                r#"{"kernel":"k","system":"N(3,5)","deadline_ms":0}"#,
                "\"deadline_ms\" must be",
            ),
            (r#"{"kernel":"k","system":"bogus"}"#, "bad system"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn parses_membership_ops_and_stream_flag() {
        let req = parse_request(r#"{"op":"add-shard","addr":"127.0.0.1:9001"}"#).expect("parses");
        assert!(matches!(req, Request::AddShard { addr } if addr == "127.0.0.1:9001"));
        let req = parse_request(r#"{"op":"drain-shard","addr":"h:1","stop":false}"#).unwrap();
        assert!(matches!(req, Request::DrainShard { addr, stop: false } if addr == "h:1"));
        let req = parse_request(r#"{"op":"drain-shard","addr":"h:1"}"#).unwrap();
        assert!(matches!(req, Request::DrainShard { stop: true, .. }));
        assert!(matches!(
            parse_request(r#"{"op":"members"}"#),
            Ok(Request::Members)
        ));
        for (line, needle) in [
            (r#"{"op":"add-shard"}"#, "missing field \"addr\""),
            (r#"{"op":"add-shard","addr":"noport"}"#, "bad addr"),
            (
                r#"{"op":"drain-shard","addr":"h:1","stop":3}"#,
                "\"stop\" must be",
            ),
            (
                r#"{"kernel":"k","system":"N(3,5)","stream":"yes"}"#,
                "\"stream\" must be",
            ),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line} -> {err}");
        }
        let Ok(Request::Schedule(req)) =
            parse_request(r#"{"kernel":"k d { }","system":"N(3,5)","stream":true}"#)
        else {
            panic!("expected schedule")
        };
        assert!(req.stream);
        let Ok(Request::Schedule(req)) = parse_request(r#"{"kernel":"k d { }","system":"N(3,5)"}"#)
        else {
            panic!("expected schedule")
        };
        assert!(!req.stream);
    }

    fn sample_response(id: Option<&str>, blocks: &[(&str, &str)]) -> String {
        let rendered: Vec<String> = blocks
            .iter()
            .map(|(name, text)| {
                format!(
                    "{{\"name\":{},\"instructions\":3,\"spills\":0,\"text\":{}}}",
                    json::string(name),
                    json::string(text)
                )
            })
            .collect();
        let payload = format!(
            "\"schedule\":{{\"scheduler\":\"balanced\",\"spill_percent\":0,\"blocks\":[{}]}},\
             \"eval\":{{\"speedup\":1.25}},\"diagnostics\":[]",
            rendered.join(",")
        );
        ok_response(id, false, &payload, 42)
    }

    #[test]
    fn split_and_reassemble_are_exact_inverses() {
        // Adversarial content: block text carrying the raw marker byte
        // sequences, quotes, brackets, and commas — all neutralized by
        // json::string escaping.
        let line = sample_response(
            Some("r\"1"),
            &[
                ("d", "ld r1, a[i]\nadd r2, r1, r3"),
                (
                    "evil",
                    "\"status\":\"chunk\" \"stream_end\":true \"blocks\":[ ], } {",
                ),
                ("empty", ""),
            ],
        );
        let (chunks, terminal) = split_stream(Some("r\"1"), &line).expect("splits");
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| is_chunk_line(c)));
        assert!(chunks.iter().all(|c| !is_stream_end(c)));
        assert!(is_stream_end(&terminal));
        assert!(!is_chunk_line(&terminal));
        assert!(terminal.contains("\"chunks\":3"));
        assert!(terminal.contains("\"blocks\":[]"));
        for c in &chunks {
            assert!(json::parse(c).is_some(), "chunk is valid JSON: {c}");
        }
        assert!(json::parse(&terminal).is_some(), "{terminal}");
        let back = reassemble_stream(&chunks, &terminal).expect("reassembles");
        assert_eq!(back, line, "byte-for-byte roundtrip");
    }

    #[test]
    fn zero_block_responses_stream_as_terminal_only() {
        let line = sample_response(None, &[]);
        let (chunks, terminal) = split_stream(None, &line).expect("splits");
        assert!(chunks.is_empty());
        assert!(terminal.contains("\"chunks\":0"));
        assert_eq!(
            reassemble_stream(&chunks, &terminal).as_deref(),
            Some(line.as_str())
        );
    }

    #[test]
    fn blockless_responses_do_not_split() {
        assert!(split_stream(None, &error_response(Some("x"), "parse", "nope")).is_none());
        assert!(split_stream(None, &overloaded_response(None, 8, 8)).is_none());
        assert!(split_stream(None, &timeout_response(None, 5)).is_none());
    }

    #[test]
    fn stream_terminators_are_typed_and_framed() {
        let aborted = stream_aborted_response(Some("s1"), "shard died");
        assert!(is_stream_end(&aborted));
        let v = json::parse(&aborted).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("stream_aborted"));
        let large = too_large_response(Some("b"), 4096);
        let v = json::parse(&large).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("too_large"));
        assert_eq!(v.get("limit_bytes").unwrap().as_u64(), Some(4096));
        let slow = slow_consumer_response(1 << 20);
        let v = json::parse(&slow).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("slow_consumer"));
    }

    #[test]
    fn read_line_bounded_frames_and_caps() {
        use std::io::BufReader;
        let mut r = BufReader::new(&b"abc\r\ndef\ntail"[..]);
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("abc")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("def")
        );
        assert_eq!(
            read_line_bounded(&mut r, 64).unwrap().as_deref(),
            Some("tail")
        );
        assert_eq!(read_line_bounded(&mut r, 64).unwrap(), None);
        let long = [b'x'; 100];
        let mut r = BufReader::with_capacity(8, &long[..]);
        let err = read_line_bounded(&mut r, 32).expect_err("caps");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn responses_are_wellformed_and_echo_ids() {
        for rendered in [
            ok_response(Some("a\"b"), true, "\"eval\":{}", 12),
            error_response(Some("x"), "parse", "bad \"thing\""),
            overloaded_response(None, 8, 8),
            timeout_response(Some("t"), 100),
        ] {
            let v = json::parse(&rendered).expect(&rendered);
            assert!(v.get("status").is_some(), "{rendered}");
        }
        let ok = json::parse(&ok_response(Some("a\"b"), true, "\"eval\":{}", 12)).unwrap();
        assert_eq!(ok.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(ok.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            request_id(r#"{"id":"r9","op":"ping"}"#).as_deref(),
            Some("r9")
        );
        assert_eq!(request_id("garbage"), None);
    }
}
