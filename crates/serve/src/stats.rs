//! Server counters and service-time percentiles for `/stats`.

use bsched_par::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};

/// How many recent service times feed the percentile estimates.
const SAMPLE_CAPACITY: usize = 4096;

/// Lock-free counters plus a bounded ring of recent service times.
///
/// Counters are monotone (`Relaxed` is enough — `/stats` is an
/// instantaneous snapshot, not a transaction), and the sample ring keeps
/// memory constant no matter how long the daemon runs.
#[derive(Default)]
pub struct ServerStats {
    /// Requests read off a connection, before admission.
    pub requests: AtomicU64,
    /// Requests answered with `status: ok`.
    pub ok: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Requests rejected at admission (queue full or injected reject).
    pub overloaded: AtomicU64,
    /// Requests whose per-request deadline expired.
    pub timeouts: AtomicU64,
    /// Request lines rejected for exceeding the inbound size cap.
    pub too_large: AtomicU64,
    /// Connections dropped for exceeding the outbound backlog cap.
    pub slow_consumers: AtomicU64,
    /// Responses emitted in streaming (chunked) form.
    pub streams: AtomicU64,
    /// Requests queued or executing right now.
    pub queue_depth: AtomicUsize,
    /// Connections currently registered with the IO loops.
    pub conns_open: AtomicUsize,
    samples: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    /// Service times in microseconds, insertion-ordered, wrapping.
    values: Vec<u64>,
    next: usize,
}

impl ServerStats {
    /// Records one completed request's service time.
    pub fn record_service(&self, micros: u64) {
        let mut ring = self.samples.lock().unwrap();
        if ring.values.len() < SAMPLE_CAPACITY {
            ring.values.push(micros);
        } else {
            let at = ring.next;
            ring.values[at] = micros;
        }
        ring.next = (ring.next + 1) % SAMPLE_CAPACITY;
    }

    /// Nearest-rank p50/p95/p99 over the recent sample window, in
    /// microseconds. Zeros when nothing has completed yet.
    #[must_use]
    pub fn percentiles(&self) -> (u64, u64, u64) {
        let mut values = self.samples.lock().unwrap().values.clone();
        if values.is_empty() {
            return (0, 0, 0);
        }
        values.sort_unstable();
        let rank = |p: f64| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
            values[idx]
        };
        (rank(0.50), rank(0.95), rank(0.99))
    }

    /// Renders the `/stats` payload fields (everything except the
    /// cache's own counters, which the server owns).
    #[must_use]
    pub fn render_fields(&self) -> String {
        let (p50, p95, p99) = self.percentiles();
        format!(
            "\"requests\":{},\"ok\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\
             \"too_large\":{},\"slow_consumers\":{},\"streams\":{},\
             \"queue_depth\":{},\"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99}",
            self.requests.load(Ordering::Relaxed),
            self.ok.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.overloaded.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.too_large.load(Ordering::Relaxed),
            self.slow_consumers.load(Ordering::Relaxed),
            self.streams.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let stats = ServerStats::default();
        assert_eq!(stats.percentiles(), (0, 0, 0));
        for v in 1..=100u64 {
            stats.record_service(v);
        }
        assert_eq!(stats.percentiles(), (50, 95, 99));
        let one = ServerStats::default();
        one.record_service(7);
        assert_eq!(one.percentiles(), (7, 7, 7));
    }

    #[test]
    fn ring_is_bounded() {
        let stats = ServerStats::default();
        for _ in 0..(SAMPLE_CAPACITY * 2 + 17) {
            stats.record_service(1);
        }
        assert_eq!(stats.samples.lock().unwrap().values.len(), SAMPLE_CAPACITY);
    }

    #[test]
    fn render_fields_is_wellformed_json_fragment() {
        let stats = ServerStats::default();
        stats.requests.store(3, Ordering::Relaxed);
        stats.record_service(10);
        let json = format!("{{{}}}", stats.render_fields());
        let v = bsched_analyze::json::parse(&json).expect("parses");
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("p50_us").unwrap().as_u64(), Some(10));
    }
}
