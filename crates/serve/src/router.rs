//! Router mode: consistent-hash fan-out over a fleet of shard daemons.
//!
//! `bsched serve --route shard1,shard2,…` runs this instead of the
//! single-process daemon. The router speaks the same line-JSON protocol
//! on both sides: clients need no changes, and downstream it forwards
//! each schedule request's **raw line** verbatim to the shard that owns
//! the request's 128-bit content hash.
//!
//! ## Placement: rendezvous (HRW) hashing
//!
//! Each `(key, shard)` pair gets a deterministic 64-bit score; the
//! shard with the highest score owns the key, the runner-up is the
//! failover target, and so on. Unlike modulo placement, removing one
//! shard only re-homes *that shard's* keys — everyone else's cache
//! locality survives the outage, which is the whole point of sharding a
//! content-addressed cache (each shard stays warm for its own slice).
//!
//! ## Failover: bounded retries, typed degradation, never a drop
//!
//! A forward gets up to [`RouterConfig::attempts_per_shard`] tries with
//! exponential backoff against the owner, then moves to the
//! rendezvous-next shard (shards already marked down are skipped
//! without burning a timeout). Any response that needed a retry or a
//! non-owner shard is annotated `"degraded":true` — visible, typed
//! degradation. Only when *every* shard has failed does the client see
//! an `error` response with kind `unavailable`; no path drops a
//! request on the floor.
//!
//! Forwarding failures feed the same consecutive-failure accounting as
//! the health prober (see [`crate::health`]), so a dead shard is marked
//! down by whichever notices first, and one successful probe or forward
//! rehabilitates it.
//!
//! Transport is deliberately thread-per-connection blocking IO: a
//! router holds one client connection per loadgen worker — tens, not
//! thousands — and its real latency is the downstream evaluation, not
//! connection multiplexing.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bsched_par::sync::thread::JoinHandle;
use bsched_par::sync::{thread, AtomicBool, AtomicU64, Ordering};

use bsched_analyze::json;
use bsched_faults::{fault_point, Site};

use crate::health::{connect_with_deadline, prober_loop, HealthConfig, ShardState};
use crate::prepare_request;
use crate::protocol::{error_response, id_fragment, parse_request, request_id, Request};

/// Knobs for one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Backend shard addresses (`host:port`), order-insensitive for
    /// placement (rendezvous scores don't depend on list order).
    pub shards: Vec<String>,
    /// Health probe and failure-threshold knobs.
    pub health: HealthConfig,
    /// Forward attempts per shard before moving to the next (≥ 1).
    pub attempts_per_shard: u32,
    /// First retry backoff; doubles per further attempt.
    pub backoff_base: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            listen: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            health: HealthConfig::default(),
            attempts_per_shard: 2,
            backoff_base: Duration::from_millis(10),
        }
    }
}

/// Router-level lifetime counters (shard counters live in
/// [`ShardState`]).
#[derive(Default)]
pub struct RouterStats {
    /// Request lines read from clients.
    pub requests: AtomicU64,
    /// Schedule requests answered by some shard.
    pub forwarded: AtomicU64,
    /// Responses served by a shard other than the rendezvous owner.
    pub failovers: AtomicU64,
    /// Repeat forward attempts (after the first) against any shard.
    pub retries: AtomicU64,
    /// Responses annotated `degraded:true`.
    pub degraded: AtomicU64,
    /// Requests answered with a router-generated error (parse,
    /// unavailable, …).
    pub errors: AtomicU64,
}

struct RouterInner {
    cfg: RouterConfig,
    shards: Vec<Arc<ShardState>>,
    stats: RouterStats,
    shutdown: AtomicBool,
}

impl RouterInner {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || crate::server::signalled()
    }
}

/// A running router. [`Router::join`] blocks until drain.
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds `cfg.listen`, starts the health prober and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; refuses an empty shard list.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one shard (--route a:1,b:2,…)",
            ));
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shards: Vec<Arc<ShardState>> = cfg
            .shards
            .iter()
            .map(|a| Arc::new(ShardState::new(a.clone())))
            .collect();
        let inner = Arc::new(RouterInner {
            shards,
            cfg,
            stats: RouterStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        let probe_inner = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("bsched-route-health".to_owned())
                .spawn(move || {
                    prober_loop(
                        &probe_inner.shards,
                        &probe_inner.cfg.health,
                        &probe_inner.shutdown,
                    );
                })
                .expect("spawn health prober"),
        );
        let accept_inner = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("bsched-route-accept".to_owned())
                .spawn(move || accept_loop(&listener, &accept_inner))
                .expect("spawn accept thread"),
        );
        Ok(Router {
            inner,
            addr,
            threads,
        })
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a drain: stop accepting, stop probing; open connections
    /// finish their in-flight lines.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the accept loop and prober have exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    /// A dropped router must not leak its prober or accept thread: set
    /// the shutdown flag and join both. After an explicit [`Router::join`]
    /// the thread list is already drained and this is a no-op.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<RouterInner>) {
    loop {
        if inner.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let _ = thread::Builder::new()
                    .name("bsched-route-conn".to_owned())
                    .spawn(move || serve_connection(stream, &conn_inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<RouterInner>) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = route_line(inner, &line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

/// Routes one raw request line and renders the response line.
fn route_line(inner: &RouterInner, line: &str) -> String {
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let id = request_id(line);
    match parse_request(line) {
        Err(reason) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            error_response(id.as_deref(), "parse", &reason)
        }
        Ok(Request::Ping) => format!(
            "{{{}\"status\":\"ok\",\"pong\":true,\"router\":true}}",
            id_fragment(id.as_deref())
        ),
        Ok(Request::Stats) => merged_stats(inner, id.as_deref()),
        Ok(Request::Shutdown) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            format!(
                "{{{}\"status\":\"ok\",\"draining\":true,\"router\":true}}",
                id_fragment(id.as_deref())
            )
        }
        Ok(Request::Schedule(req)) => match prepare_request(&req) {
            Err((kind, reason)) => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                error_response(id.as_deref(), kind.id(), &reason)
            }
            Ok(prepared) => route_schedule(inner, id.as_deref(), prepared.key(), line),
        },
    }
}

/// Forwards one schedule line to the rendezvous-ranked shards until one
/// answers. Never drops: the worst case is a typed `unavailable` error.
fn route_schedule(inner: &RouterInner, id: Option<&str>, key: u128, line: &str) -> String {
    let ranked = rendezvous_rank(key, &inner.cfg.shards);
    let threshold = inner.cfg.health.failure_threshold;
    let mut degraded = false;
    for (rank, &index) in ranked.iter().enumerate() {
        let shard = &inner.shards[index];
        let injected_down =
            bsched_faults::with_cell_context(&format!("shard{index}|{}", shard.addr), 0, || {
                fault_point!(Site::ShardDown)
            })
            .is_some();
        if injected_down {
            shard.record_failure(threshold);
        }
        if injected_down || !shard.is_up() {
            shard.failed_over.fetch_add(1, Ordering::Relaxed);
            degraded = true;
            continue;
        }
        for attempt in 0..inner.cfg.attempts_per_shard.max(1) {
            if attempt > 0 {
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                degraded = true;
                thread::sleep(inner.cfg.backoff_base * 2u32.pow(attempt - 1));
            }
            match forward_once(shard, line, &inner.cfg.health) {
                Ok(response) => {
                    shard.record_success();
                    shard.forwarded.fetch_add(1, Ordering::Relaxed);
                    inner.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if rank > 0 {
                        inner.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        degraded = true;
                    }
                    if degraded {
                        inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
                        return annotate_degraded(&response);
                    }
                    return response;
                }
                Err(_) => {
                    shard.record_failure(threshold);
                }
            }
        }
        shard.failed_over.fetch_add(1, Ordering::Relaxed);
        degraded = true;
    }
    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
    error_response(
        id,
        "unavailable",
        &format!("all {} shards unreachable", inner.shards.len()),
    )
}

/// One forward attempt: fresh connection, write the raw line, read one
/// response line — all under the health config's deadlines.
fn forward_once(shard: &ShardState, line: &str, health: &HealthConfig) -> std::io::Result<String> {
    let mut stream = connect_with_deadline(&shard.addr, health.connect_timeout)?;
    stream.set_read_timeout(Some(health.read_timeout))?;
    stream.set_write_timeout(Some(health.read_timeout))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "shard closed before responding",
        ));
    }
    Ok(response.trim_end().to_owned())
}

/// Splices `"degraded":true` into a response line's top-level object so
/// clients see typed degradation rather than a silent rough edge.
fn annotate_degraded(response: &str) -> String {
    let trimmed = response.trim_end();
    trimmed.strip_suffix('}').map_or_else(
        || trimmed.to_owned(),
        |body| format!("{body},\"degraded\":true}}"),
    )
}

/// splitmix64 — the same tiny mixer the fault planner uses; plenty for
/// spreading (key, shard) pairs over 64-bit scores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `(key, shard address)`.
#[must_use]
pub fn hrw_score(key: u128, addr: &str) -> u64 {
    #[allow(clippy::cast_possible_truncation)]
    let mut h = splitmix64((key as u64) ^ ((key >> 64) as u64));
    for b in addr.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

/// Shard indices ordered by descending rendezvous score for `key`: the
/// first entry owns the key, the rest are the failover order.
#[must_use]
pub fn rendezvous_rank(key: u128, shards: &[String]) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = shards
        .iter()
        .enumerate()
        .map(|(i, addr)| (hrw_score(key, addr), i))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, i)| i).collect()
}

/// Renders the merged `/stats` view: summed per-shard daemon counters
/// (same field names a single daemon reports, so clients need no
/// changes), router-level counters, fleet liveness, and a per-shard
/// breakdown.
fn merged_stats(inner: &RouterInner, id: Option<&str>) -> String {
    const SUMMED: [&str; 8] = [
        "requests",
        "ok",
        "errors",
        "overloaded",
        "timeouts",
        "cache_hits",
        "cache_misses",
        "cache_entries",
    ];
    let mut sums = [0u64; SUMMED.len()];
    let mut shard_objs = Vec::with_capacity(inner.shards.len());
    let mut up = 0usize;
    for shard in &inner.shards {
        let reachable = shard.is_up();
        let mut fields = String::new();
        if reachable {
            up += 1;
        }
        if let Some(stats) = fetch_shard_stats(shard, &inner.cfg.health) {
            for (slot, name) in SUMMED.iter().enumerate() {
                if let Some(v) = stats.get(name).and_then(json::Json::as_u64) {
                    sums[slot] += v;
                    fields.push_str(&format!(",\"{name}\":{v}"));
                }
            }
        }
        shard_objs.push(format!(
            "{{\"addr\":{},\"up\":{reachable},\"forwarded\":{},\"failed_over\":{}{fields}}}",
            json::string(&shard.addr),
            shard.forwarded.load(Ordering::Relaxed),
            shard.failed_over.load(Ordering::Relaxed),
        ));
    }
    let summed: String = SUMMED
        .iter()
        .enumerate()
        .map(|(slot, name)| format!("\"{name}\":{},", sums[slot]))
        .collect();
    format!(
        "{{{}\"status\":\"ok\",\"router\":true,\"stats\":{{{summed}\
         \"shards_up\":{up},\"shards_down\":{},\"failovers\":{},\"retries\":{},\
         \"degraded\":{},\"routed\":{},\"router_requests\":{},\"router_errors\":{}}},\
         \"shards\":[{}]}}",
        id_fragment(id),
        inner.shards.len() - up,
        inner.stats.failovers.load(Ordering::Relaxed),
        inner.stats.retries.load(Ordering::Relaxed),
        inner.stats.degraded.load(Ordering::Relaxed),
        inner.stats.forwarded.load(Ordering::Relaxed),
        inner.stats.requests.load(Ordering::Relaxed),
        inner.stats.errors.load(Ordering::Relaxed),
        shard_objs.join(",")
    )
}

/// Fetches one shard's `stats` object, best-effort under tight
/// deadlines (a dead shard must not stall the merged view).
fn fetch_shard_stats(shard: &ShardState, health: &HealthConfig) -> Option<json::Json> {
    let deadline = health.read_timeout.min(Duration::from_millis(750));
    let mut stream = connect_with_deadline(&shard.addr, health.connect_timeout).ok()?;
    stream.set_read_timeout(Some(deadline)).ok()?;
    stream.set_write_timeout(Some(deadline)).ok()?;
    stream.write_all(b"{\"op\":\"stats\"}\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok().filter(|n| *n > 0)?;
    json::parse(&line)?.get("stats").cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_deterministic_and_covers_all_shards() {
        let shards: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let rank_a = rendezvous_rank(42, &shards);
        let rank_b = rendezvous_rank(42, &shards);
        assert_eq!(rank_a, rank_b);
        let mut sorted = rank_a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "a full permutation");
    }

    #[test]
    fn removing_a_shard_only_rehomes_its_own_keys() {
        let shards: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let without_last: Vec<String> = shards[..3].to_vec();
        for key in 0..500u128 {
            let owner = rendezvous_rank(key, &shards)[0];
            if owner < 3 {
                assert_eq!(
                    rendezvous_rank(key, &without_last)[0],
                    owner,
                    "key {key} moved although its owner survived"
                );
            }
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let shards: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let mut counts = [0usize; 3];
        for key in 0..600u128 {
            counts[rendezvous_rank(key * 0x9e37_79b9, &shards)[0]] += 1;
        }
        for (i, n) in counts.iter().enumerate() {
            assert!(
                (100..=400).contains(n),
                "shard {i} owns {n}/600 keys — placement is skewed"
            );
        }
    }

    #[test]
    fn degraded_annotation_splices_before_the_closing_brace() {
        assert_eq!(
            annotate_degraded("{\"status\":\"ok\",\"cached\":true}"),
            "{\"status\":\"ok\",\"cached\":true,\"degraded\":true}"
        );
        let parsed = json::parse(&annotate_degraded("{\"a\":1}")).unwrap();
        assert_eq!(parsed.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(annotate_degraded("not json"), "not json");
    }
}
