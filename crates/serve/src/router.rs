//! Router mode: consistent-hash fan-out over a fleet of shard daemons.
//!
//! `bsched serve --route shard1,shard2,…` runs this instead of the
//! single-process daemon. The router speaks the same line-JSON protocol
//! on both sides: clients need no changes, and downstream it forwards
//! each schedule request's **raw line** verbatim to the shard that owns
//! the request's 128-bit content hash.
//!
//! ## Placement: rendezvous (HRW) hashing
//!
//! Each `(key, shard)` pair gets a deterministic 64-bit score; the
//! shard with the highest score owns the key, the runner-up is the
//! failover target, and so on. Unlike modulo placement, removing one
//! shard only re-homes *that shard's* keys — everyone else's cache
//! locality survives the outage, which is the whole point of sharding a
//! content-addressed cache (each shard stays warm for its own slice).
//!
//! ## Failover: bounded retries, typed degradation, never a drop
//!
//! A forward gets up to [`RouterConfig::attempts_per_shard`] tries with
//! exponential backoff against the owner, then moves to the
//! rendezvous-next shard (shards already marked down are skipped
//! without burning a timeout). Any response that needed a retry or a
//! non-owner shard is annotated `"degraded":true` — visible, typed
//! degradation. Only when *every* shard has failed does the client see
//! an `error` response with kind `unavailable`; no path drops a
//! request on the floor.
//!
//! Forwarding failures feed the same consecutive-failure accounting as
//! the health prober (see [`crate::health`]), so a dead shard is marked
//! down by whichever notices first, and one successful probe or forward
//! rehabilitates it.
//!
//! ## Live membership
//!
//! The member list is mutable at runtime: `add-shard` adopts a daemon
//! into the ring (Joining until its first successful probe, so an
//! unreachable address never owns keys), and `drain-shard` walks a
//! shard through Draining — fence new forwards, wait for in-flight
//! ones to land, optionally stop the daemon (flushing its cache log) —
//! before removing it. Rendezvous hashing keeps the collateral minimal
//! either way: only ~1/N of keys re-home, which `add-shard` measures
//! over a sampled keyspace and reports as `rehomed_fraction`.
//!
//! ## Streaming
//!
//! A `"stream":true` schedule request is relayed line-by-line: chunk
//! lines as they arrive from the shard, then the terminal summary line
//! (framed by [`crate::protocol::STREAM_END_MARKER`]). Failover and
//! retries are legal only before the first chunk reaches the client;
//! a shard that dies mid-stream gets a typed `stream_aborted`
//! terminator spliced in — never a silent truncation, never duplicated
//! chunks.
//!
//! Transport is deliberately thread-per-connection blocking IO: a
//! router holds one client connection per loadgen worker — tens, not
//! thousands — and its real latency is the downstream evaluation, not
//! connection multiplexing.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bsched_par::sync::thread::JoinHandle;
use bsched_par::sync::{thread, AtomicBool, AtomicU64, Mutex, Ordering};

use bsched_analyze::json;
use bsched_faults::{fault_point, Site};

use crate::health::{
    connect_with_deadline, ping_shard, prober_loop_dynamic, HealthConfig, MemberState, ShardState,
};
use crate::prepare_request;
use crate::protocol::{
    error_response, id_fragment, is_chunk_line, is_stream_end, parse_request, read_line_bounded,
    request_id, stream_aborted_response, Request,
};

/// Inbound cap on client request lines, matching the daemon's default.
const MAX_CLIENT_LINE: usize = crate::server::DEFAULT_MAX_LINE_BYTES;
/// Cap on a single relayed shard response line (chunks included);
/// responses for large programs are big, but not unbounded.
const MAX_SHARD_LINE: usize = 64 * 1024 * 1024;
/// How long a drain waits for a fenced shard's in-flight forwards.
const DRAIN_INFLIGHT_GRACE: Duration = Duration::from_secs(10);
/// Keys sampled when measuring a membership change's re-home fraction.
const REHOME_SAMPLES: u64 = 4096;

/// Knobs for one router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// Backend shard addresses (`host:port`), order-insensitive for
    /// placement (rendezvous scores don't depend on list order).
    pub shards: Vec<String>,
    /// Health probe and failure-threshold knobs.
    pub health: HealthConfig,
    /// Forward attempts per shard before moving to the next (≥ 1).
    pub attempts_per_shard: u32,
    /// First retry backoff; doubles per further attempt.
    pub backoff_base: Duration,
    /// Per-line read deadline on router→shard forwards: a shard that
    /// accepts the connection but never answers trips retry/failover
    /// instead of stalling the client forever.
    pub forward_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            listen: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            health: HealthConfig::default(),
            attempts_per_shard: 2,
            backoff_base: Duration::from_millis(10),
            forward_timeout: Duration::from_secs(2),
        }
    }
}

/// Router-level lifetime counters (shard counters live in
/// [`ShardState`]).
#[derive(Default)]
pub struct RouterStats {
    /// Request lines read from clients.
    pub requests: AtomicU64,
    /// Schedule requests answered by some shard.
    pub forwarded: AtomicU64,
    /// Responses served by a shard other than the rendezvous owner.
    pub failovers: AtomicU64,
    /// Repeat forward attempts (after the first) against any shard.
    pub retries: AtomicU64,
    /// Responses annotated `degraded:true`.
    pub degraded: AtomicU64,
    /// Requests answered with a router-generated error (parse,
    /// unavailable, …).
    pub errors: AtomicU64,
    /// Forward attempts that hit the read deadline (hung shard).
    pub forward_timeouts: AtomicU64,
    /// Streamed responses relayed chunk-by-chunk.
    pub streams: AtomicU64,
    /// Streams terminated with a typed `stream_aborted` line.
    pub stream_aborts: AtomicU64,
}

struct RouterInner {
    cfg: RouterConfig,
    /// The live member list; locked briefly for snapshots and
    /// membership changes, never across a forward.
    members: Mutex<Vec<Arc<ShardState>>>,
    stats: RouterStats,
    shutdown: AtomicBool,
}

impl RouterInner {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || crate::server::signalled()
    }
}

/// A running router. [`Router::join`] blocks until drain.
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds `cfg.listen`, starts the health prober and accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; refuses an empty shard list.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one shard (--route a:1,b:2,…)",
            ));
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let members: Vec<Arc<ShardState>> = cfg
            .shards
            .iter()
            .map(|a| Arc::new(ShardState::new(a.clone())))
            .collect();
        let inner = Arc::new(RouterInner {
            members: Mutex::new(members),
            cfg,
            stats: RouterStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        let probe_inner = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("bsched-route-health".to_owned())
                .spawn(move || {
                    prober_loop_dynamic(
                        &probe_inner.members,
                        &probe_inner.cfg.health,
                        &probe_inner.shutdown,
                    );
                })
                .expect("spawn health prober"),
        );
        let accept_inner = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("bsched-route-accept".to_owned())
                .spawn(move || accept_loop(&listener, &accept_inner))
                .expect("spawn accept thread"),
        );
        Ok(Router {
            inner,
            addr,
            threads,
        })
    }

    /// The bound address (useful with `listen = "127.0.0.1:0"`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a drain: stop accepting, stop probing; open connections
    /// finish their in-flight lines.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the accept loop and prober have exited.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    /// A dropped router must not leak its prober or accept thread: set
    /// the shutdown flag and join both. After an explicit [`Router::join`]
    /// the thread list is already drained and this is a no-op.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<RouterInner>) {
    loop {
        if inner.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(inner);
                let _ = thread::Builder::new()
                    .name("bsched-route-conn".to_owned())
                    .spawn(move || serve_connection(stream, &conn_inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<RouterInner>) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_CLIENT_LINE) {
            Ok(Some(line)) => line,
            Ok(None) => break,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                let notice = crate::protocol::too_large_response(None, MAX_CLIENT_LINE);
                let _ = write_line(&mut writer, &notice);
                break;
            }
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        if route_request(inner, &line, &mut writer).is_err() {
            break;
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Routes one raw request line, writing the response line(s) — plural
/// for streamed schedules — directly to the client.
fn route_request(inner: &RouterInner, line: &str, writer: &mut TcpStream) -> std::io::Result<()> {
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    let id = request_id(line);
    let id = id.as_deref();
    match parse_request(line) {
        Err(reason) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            write_line(writer, &error_response(id, "parse", &reason))
        }
        Ok(Request::Ping) => write_line(
            writer,
            &format!(
                "{{{}\"status\":\"ok\",\"pong\":true,\"router\":true}}",
                id_fragment(id)
            ),
        ),
        Ok(Request::Stats) => write_line(writer, &merged_stats(inner, id)),
        Ok(Request::Shutdown) => {
            inner.shutdown.store(true, Ordering::Relaxed);
            write_line(
                writer,
                &format!(
                    "{{{}\"status\":\"ok\",\"draining\":true,\"router\":true}}",
                    id_fragment(id)
                ),
            )
        }
        Ok(Request::Members) => write_line(writer, &members_response(inner, id)),
        Ok(Request::AddShard { addr }) => write_line(writer, &add_shard(inner, id, &addr)),
        Ok(Request::DrainShard { addr, stop }) => {
            write_line(writer, &drain_shard(inner, id, &addr, stop))
        }
        Ok(Request::Schedule(req)) => match prepare_request(&req) {
            Err((kind, reason)) => {
                inner.stats.errors.fetch_add(1, Ordering::Relaxed);
                write_line(writer, &error_response(id, kind.id(), &reason))
            }
            Ok(prepared) if req.stream => route_stream(inner, id, prepared.key(), line, writer),
            Ok(prepared) => write_line(writer, &route_schedule(inner, id, prepared.key(), line)),
        },
    }
}

/// Snapshot of the members currently eligible to own keys.
fn active_members(inner: &RouterInner) -> Vec<Arc<ShardState>> {
    inner
        .members
        .lock()
        .unwrap()
        .iter()
        .filter(|s| s.member_state() == MemberState::Active)
        .cloned()
        .collect()
}

/// One shard's fault-injection + liveness + fence check before a
/// forward. Returns `false` (with failover accounting) when the shard
/// must be skipped; on `true` the caller owns one `end_forward`.
fn admit_forward(shard: &ShardState, index: usize, threshold: u32) -> bool {
    let injected_down =
        bsched_faults::with_cell_context(&format!("shard{index}|{}", shard.addr), 0, || {
            fault_point!(Site::ShardDown)
        })
        .is_some();
    if injected_down {
        shard.record_failure(threshold);
    }
    if injected_down || !shard.is_up() || !shard.begin_forward() {
        shard.failed_over.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    true
}

fn count_forward_error(inner: &RouterInner, e: &std::io::Error) {
    if matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    ) {
        inner.stats.forward_timeouts.fetch_add(1, Ordering::Relaxed);
    }
}

/// Forwards one schedule line to the rendezvous-ranked shards until one
/// answers. Never drops: the worst case is a typed `unavailable` error.
fn route_schedule(inner: &RouterInner, id: Option<&str>, key: u128, line: &str) -> String {
    let members = active_members(inner);
    let addrs: Vec<String> = members.iter().map(|s| s.addr.clone()).collect();
    let threshold = inner.cfg.health.failure_threshold;
    let mut degraded = false;
    for (rank, &index) in rendezvous_rank(key, &addrs).iter().enumerate() {
        let shard = &members[index];
        if !admit_forward(shard, index, threshold) {
            degraded = true;
            continue;
        }
        for attempt in 0..inner.cfg.attempts_per_shard.max(1) {
            if attempt > 0 {
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                degraded = true;
                thread::sleep(inner.cfg.backoff_base * 2u32.pow(attempt - 1));
            }
            match forward_once(shard, line, inner) {
                Ok(response) => {
                    shard.end_forward();
                    shard.record_success();
                    shard.forwarded.fetch_add(1, Ordering::Relaxed);
                    inner.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if rank > 0 {
                        inner.stats.failovers.fetch_add(1, Ordering::Relaxed);
                        degraded = true;
                    }
                    if degraded {
                        inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
                        return annotate_degraded(&response);
                    }
                    return response;
                }
                Err(e) => {
                    count_forward_error(inner, &e);
                    shard.record_failure(threshold);
                }
            }
        }
        shard.end_forward();
        shard.failed_over.fetch_add(1, Ordering::Relaxed);
        degraded = true;
    }
    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
    error_response(
        id,
        "unavailable",
        &format!("all {} shards unreachable", members.len()),
    )
}

/// Relays one streamed schedule request line-by-line. Failover/retry is
/// legal only before the first relayed line; once a chunk has reached
/// the client the stream can only end with its own terminal line or a
/// typed `stream_aborted` terminator — never silent truncation, never
/// duplicated chunks.
fn route_stream(
    inner: &RouterInner,
    id: Option<&str>,
    key: u128,
    line: &str,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let members = active_members(inner);
    let addrs: Vec<String> = members.iter().map(|s| s.addr.clone()).collect();
    let threshold = inner.cfg.health.failure_threshold;
    let mut degraded = false;
    for (rank, &index) in rendezvous_rank(key, &addrs).iter().enumerate() {
        let shard = &members[index];
        if !admit_forward(shard, index, threshold) {
            degraded = true;
            continue;
        }
        // Nothing has been relayed yet, so per-shard retries are safe.
        let mut opened = None;
        for attempt in 0..inner.cfg.attempts_per_shard.max(1) {
            if attempt > 0 {
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                degraded = true;
                thread::sleep(inner.cfg.backoff_base * 2u32.pow(attempt - 1));
            }
            let first = forward_open(shard, line, inner)
                .and_then(|mut reader| read_shard_line(&mut reader).map(|first| (reader, first)));
            match first {
                Ok(pair) => {
                    opened = Some(pair);
                    break;
                }
                Err(e) => {
                    count_forward_error(inner, &e);
                    shard.record_failure(threshold);
                }
            }
        }
        let Some((mut reader, first)) = opened else {
            shard.end_forward();
            shard.failed_over.fetch_add(1, Ordering::Relaxed);
            degraded = true;
            continue;
        };
        shard.record_success();
        shard.forwarded.fetch_add(1, Ordering::Relaxed);
        inner.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        if rank > 0 {
            inner.stats.failovers.fetch_add(1, Ordering::Relaxed);
            degraded = true;
        }
        if degraded {
            inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if !is_chunk_line(&first) {
            // A complete single-line answer (error, overloaded, or a
            // blockless ok): relay it as-is.
            shard.end_forward();
            let out = if degraded {
                annotate_degraded(&first)
            } else {
                first
            };
            return write_line(writer, &out);
        }
        inner.stats.streams.fetch_add(1, Ordering::Relaxed);
        let mut current = first;
        loop {
            if is_stream_end(&current) {
                shard.end_forward();
                let out = if degraded {
                    annotate_degraded(&current)
                } else {
                    current
                };
                return write_line(writer, &out);
            }
            if let Err(e) = write_line(writer, &current) {
                // Client vanished mid-stream: drop the shard connection
                // (the shard sees the close) and give up on the client.
                shard.end_forward();
                return Err(e);
            }
            match read_shard_line(&mut reader) {
                Ok(next) => current = next,
                Err(e) => {
                    count_forward_error(inner, &e);
                    shard.record_failure(threshold);
                    shard.end_forward();
                    inner.stats.stream_aborts.fetch_add(1, Ordering::Relaxed);
                    let terminator = stream_aborted_response(
                        id,
                        &format!("shard {} died mid-stream: {e}", shard.addr),
                    );
                    return write_line(writer, &terminator);
                }
            }
        }
    }
    inner.stats.errors.fetch_add(1, Ordering::Relaxed);
    write_line(
        writer,
        &error_response(
            id,
            "unavailable",
            &format!("all {} shards unreachable", members.len()),
        ),
    )
}

/// Opens a fresh connection to a shard, sends the raw request line, and
/// returns a reader positioned before the first response line — all
/// under the connect deadline and the per-line forward timeout.
fn forward_open(
    shard: &ShardState,
    line: &str,
    inner: &RouterInner,
) -> std::io::Result<BufReader<TcpStream>> {
    let mut stream = connect_with_deadline(&shard.addr, inner.cfg.health.connect_timeout)?;
    stream.set_read_timeout(Some(inner.cfg.forward_timeout))?;
    stream.set_write_timeout(Some(inner.cfg.forward_timeout))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    Ok(BufReader::new(stream))
}

/// One response line off a shard connection; EOF is an error (the shard
/// closed before finishing its answer).
fn read_shard_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    read_line_bounded(reader, MAX_SHARD_LINE)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "shard closed before responding",
        )
    })
}

/// One forward attempt: fresh connection, write the raw line, read one
/// response line.
fn forward_once(shard: &ShardState, line: &str, inner: &RouterInner) -> std::io::Result<String> {
    let mut reader = forward_open(shard, line, inner)?;
    read_shard_line(&mut reader)
}

/// Renders the `members` listing: every member's address, lifecycle
/// state, liveness, and in-flight count.
fn members_response(inner: &RouterInner, id: Option<&str>) -> String {
    let members = inner.members.lock().unwrap().clone();
    let objs: Vec<String> = members
        .iter()
        .map(|s| {
            format!(
                "{{\"addr\":{},\"state\":{},\"up\":{},\"inflight\":{},\"forwarded\":{}}}",
                json::string(&s.addr),
                json::string(s.member_state().as_str()),
                s.is_up(),
                s.inflight(),
                s.forwarded.load(Ordering::Relaxed)
            )
        })
        .collect();
    format!(
        "{{{}\"status\":\"ok\",\"router\":true,\"members\":[{}]}}",
        id_fragment(id),
        objs.join(",")
    )
}

/// Adopts a shard into the ring at runtime. A reachable shard joins
/// Active immediately; an unreachable one joins as Joining and owns no
/// keys until the prober's first successful probe promotes it. The
/// response reports the measured fraction of sampled keys whose
/// rendezvous owner moves — with HRW placement only the new shard's
/// ~1/N slice re-homes, and this number proves it.
fn add_shard(inner: &RouterInner, id: Option<&str>, addr: &str) -> String {
    if inner.members.lock().unwrap().iter().any(|s| s.addr == addr) {
        inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        return error_response(
            id,
            "exists",
            &format!("shard {addr} is already in the ring"),
        );
    }
    // Probe outside the lock (it can take the whole connect deadline).
    let reachable = ping_shard(addr, &inner.cfg.health);
    let shard = Arc::new(if reachable {
        ShardState::new(addr.to_owned())
    } else {
        ShardState::new_joining(addr.to_owned())
    });
    let (before, after) = {
        let mut members = inner.members.lock().unwrap();
        if members.iter().any(|s| s.addr == addr) {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(
                id,
                "exists",
                &format!("shard {addr} is already in the ring"),
            );
        }
        let before: Vec<String> = members
            .iter()
            .filter(|s| s.member_state() == MemberState::Active)
            .map(|s| s.addr.clone())
            .collect();
        members.push(Arc::clone(&shard));
        // The steady-state ownership once the new shard is Active.
        let mut after = before.clone();
        after.push(addr.to_owned());
        (before, after)
    };
    let rehomed = rehomed_fraction(&before, &after);
    eprintln!(
        "bsched-serve: shard {addr} added ({}), rehomed_fraction {rehomed:.4}",
        shard.member_state().as_str()
    );
    format!(
        "{{{}\"status\":\"ok\",\"router\":true,\"added\":{},\"state\":{},\
         \"members\":{},\"rehomed_fraction\":{rehomed:.4}}}",
        id_fragment(id),
        json::string(addr),
        json::string(shard.member_state().as_str()),
        inner.members.lock().unwrap().len()
    )
}

/// Walks a shard through the drain state machine: fence new forwards
/// (Draining), wait for in-flight ones to land, optionally stop the
/// daemon — its graceful drain flushes queued work and leaves the cache
/// log consistent on disk — then remove it from the ring. Refuses to
/// drain the last Active shard: a router with no owners drops every
/// request, which is exactly what drain exists to avoid.
fn drain_shard(inner: &RouterInner, id: Option<&str>, addr: &str, stop: bool) -> String {
    let shard = {
        let members = inner.members.lock().unwrap();
        let Some(shard) = members.iter().find(|s| s.addr == addr).cloned() else {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(id, "unknown", &format!("shard {addr} is not in the ring"));
        };
        let actives = members
            .iter()
            .filter(|s| s.member_state() == MemberState::Active)
            .count();
        if shard.member_state() == MemberState::Active && actives <= 1 {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(id, "refused", "refusing to drain the last active shard");
        }
        shard.set_member_state(MemberState::Draining);
        shard
    };
    // Fenced: the in-flight count can only fall. Wait (bounded) for it
    // to hit zero so no forwarded request is ever cut off mid-answer.
    let deadline = Instant::now() + DRAIN_INFLIGHT_GRACE;
    while shard.inflight() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let inflight_at_removal = shard.inflight();
    let stopped = stop && send_shutdown(&shard.addr, &inner.cfg.health);
    inner.members.lock().unwrap().retain(|s| s.addr != addr);
    eprintln!(
        "bsched-serve: shard {addr} drained and removed (stopped: {stopped}, \
         inflight at removal: {inflight_at_removal})"
    );
    format!(
        "{{{}\"status\":\"ok\",\"router\":true,\"drained\":{},\"stopped\":{stopped},\
         \"inflight_at_removal\":{inflight_at_removal},\"members\":{}}}",
        id_fragment(id),
        json::string(addr),
        inner.members.lock().unwrap().len()
    )
}

/// Asks a drained daemon to shut down gracefully; returns whether it
/// acknowledged the drain.
fn send_shutdown(addr: &str, health: &HealthConfig) -> bool {
    let Ok(mut stream) = connect_with_deadline(addr, health.connect_timeout) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(health.read_timeout));
    let _ = stream.set_write_timeout(Some(health.read_timeout));
    if stream.write_all(b"{\"op\":\"shutdown\"}\n").is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    matches!(
        read_line_bounded(&mut reader, MAX_SHARD_LINE),
        Ok(Some(line)) if line.contains("\"draining\":true")
    )
}

/// Measured fraction of sampled keys whose rendezvous owner differs
/// between two address sets — the re-home cost of a membership change.
fn rehomed_fraction(before: &[String], after: &[String]) -> f64 {
    if before.is_empty() || after.is_empty() {
        return 1.0;
    }
    let mut moved = 0u64;
    for i in 0..REHOME_SAMPLES {
        let key = u128::from(splitmix64(i)) | (u128::from(splitmix64(i ^ 0xdead_beef_f00d)) << 64);
        let owner_before = &before[rendezvous_rank(key, before)[0]];
        let owner_after = &after[rendezvous_rank(key, after)[0]];
        if owner_before != owner_after {
            moved += 1;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    {
        moved as f64 / REHOME_SAMPLES as f64
    }
}

/// Splices `"degraded":true` into a response line's top-level object so
/// clients see typed degradation rather than a silent rough edge.
fn annotate_degraded(response: &str) -> String {
    let trimmed = response.trim_end();
    trimmed.strip_suffix('}').map_or_else(
        || trimmed.to_owned(),
        |body| format!("{body},\"degraded\":true}}"),
    )
}

/// splitmix64 — the same tiny mixer the fault planner uses; plenty for
/// spreading (key, shard) pairs over 64-bit scores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous score of `(key, shard address)`.
#[must_use]
pub fn hrw_score(key: u128, addr: &str) -> u64 {
    #[allow(clippy::cast_possible_truncation)]
    let mut h = splitmix64((key as u64) ^ ((key >> 64) as u64));
    for b in addr.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

/// Shard indices ordered by descending rendezvous score for `key`: the
/// first entry owns the key, the rest are the failover order.
#[must_use]
pub fn rendezvous_rank(key: u128, shards: &[String]) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = shards
        .iter()
        .enumerate()
        .map(|(i, addr)| (hrw_score(key, addr), i))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, i)| i).collect()
}

/// Renders the merged `/stats` view: summed per-shard daemon counters
/// (same field names a single daemon reports, so clients need no
/// changes), router-level counters, fleet liveness, and a per-shard
/// breakdown.
fn merged_stats(inner: &RouterInner, id: Option<&str>) -> String {
    const SUMMED: [&str; 8] = [
        "requests",
        "ok",
        "errors",
        "overloaded",
        "timeouts",
        "cache_hits",
        "cache_misses",
        "cache_entries",
    ];
    let members = inner.members.lock().unwrap().clone();
    let mut sums = [0u64; SUMMED.len()];
    let mut shard_objs = Vec::with_capacity(members.len());
    let mut up = 0usize;
    for shard in &members {
        let reachable = shard.is_up();
        let mut fields = String::new();
        if reachable {
            up += 1;
        }
        if let Some(stats) = fetch_shard_stats(shard, &inner.cfg.health) {
            for (slot, name) in SUMMED.iter().enumerate() {
                if let Some(v) = stats.get(name).and_then(json::Json::as_u64) {
                    sums[slot] += v;
                    fields.push_str(&format!(",\"{name}\":{v}"));
                }
            }
        }
        shard_objs.push(format!(
            "{{\"addr\":{},\"up\":{reachable},\"state\":{},\"inflight\":{},\
             \"forwarded\":{},\"failed_over\":{}{fields}}}",
            json::string(&shard.addr),
            json::string(shard.member_state().as_str()),
            shard.inflight(),
            shard.forwarded.load(Ordering::Relaxed),
            shard.failed_over.load(Ordering::Relaxed),
        ));
    }
    let summed: String = SUMMED
        .iter()
        .enumerate()
        .map(|(slot, name)| format!("\"{name}\":{},", sums[slot]))
        .collect();
    format!(
        "{{{}\"status\":\"ok\",\"router\":true,\"stats\":{{{summed}\
         \"shards_up\":{up},\"shards_down\":{},\"members\":{},\"failovers\":{},\"retries\":{},\
         \"degraded\":{},\"routed\":{},\"router_requests\":{},\"router_errors\":{},\
         \"forward_timeouts\":{},\"streams\":{},\"stream_aborts\":{},\
         \"probe_interval_ms\":{},\"probe_timeout_ms\":{},\"forward_timeout_ms\":{}}},\
         \"shards\":[{}]}}",
        id_fragment(id),
        members.len() - up,
        members.len(),
        inner.stats.failovers.load(Ordering::Relaxed),
        inner.stats.retries.load(Ordering::Relaxed),
        inner.stats.degraded.load(Ordering::Relaxed),
        inner.stats.forwarded.load(Ordering::Relaxed),
        inner.stats.requests.load(Ordering::Relaxed),
        inner.stats.errors.load(Ordering::Relaxed),
        inner.stats.forward_timeouts.load(Ordering::Relaxed),
        inner.stats.streams.load(Ordering::Relaxed),
        inner.stats.stream_aborts.load(Ordering::Relaxed),
        inner.cfg.health.interval.as_millis(),
        inner.cfg.health.connect_timeout.as_millis(),
        inner.cfg.forward_timeout.as_millis(),
        shard_objs.join(",")
    )
}

/// Fetches one shard's `stats` object, best-effort under tight
/// deadlines (a dead shard must not stall the merged view).
fn fetch_shard_stats(shard: &ShardState, health: &HealthConfig) -> Option<json::Json> {
    let deadline = health.read_timeout.min(Duration::from_millis(750));
    let mut stream = connect_with_deadline(&shard.addr, health.connect_timeout).ok()?;
    stream.set_read_timeout(Some(deadline)).ok()?;
    stream.set_write_timeout(Some(deadline)).ok()?;
    stream.write_all(b"{\"op\":\"stats\"}\n").ok()?;
    let mut reader = BufReader::new(stream);
    let line = read_line_bounded(&mut reader, MAX_SHARD_LINE)
        .ok()
        .flatten()?;
    json::parse(&line)?.get("stats").cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_deterministic_and_covers_all_shards() {
        let shards: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let rank_a = rendezvous_rank(42, &shards);
        let rank_b = rendezvous_rank(42, &shards);
        assert_eq!(rank_a, rank_b);
        let mut sorted = rank_a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "a full permutation");
    }

    #[test]
    fn removing_a_shard_only_rehomes_its_own_keys() {
        let shards: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let without_last: Vec<String> = shards[..3].to_vec();
        for key in 0..500u128 {
            let owner = rendezvous_rank(key, &shards)[0];
            if owner < 3 {
                assert_eq!(
                    rendezvous_rank(key, &without_last)[0],
                    owner,
                    "key {key} moved although its owner survived"
                );
            }
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let shards: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let mut counts = [0usize; 3];
        for key in 0..600u128 {
            counts[rendezvous_rank(key * 0x9e37_79b9, &shards)[0]] += 1;
        }
        for (i, n) in counts.iter().enumerate() {
            assert!(
                (100..=400).contains(n),
                "shard {i} owns {n}/600 keys — placement is skewed"
            );
        }
    }

    #[test]
    fn rehome_fraction_is_minimal_for_single_member_changes() {
        let three: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        let mut four = three.clone();
        four.push("127.0.0.1:9003".to_owned());
        let grow = rehomed_fraction(&three, &four);
        assert!(
            grow <= 1.5 / 4.0,
            "adding 1 of 4 shards rehomed {grow:.4} > 1.5/N"
        );
        assert!(grow > 0.10, "the new shard owns a real slice: {grow:.4}");
        let shrink = rehomed_fraction(&four, &three);
        assert!(
            shrink <= 1.5 / 4.0,
            "removing 1 of 4 shards rehomed {shrink:.4} > 1.5/N"
        );
        assert!(
            (rehomed_fraction(&three, &three)).abs() < f64::EPSILON,
            "identical sets rehome nothing"
        );
    }

    #[test]
    fn degraded_annotation_splices_before_the_closing_brace() {
        assert_eq!(
            annotate_degraded("{\"status\":\"ok\",\"cached\":true}"),
            "{\"status\":\"ok\",\"cached\":true,\"degraded\":true}"
        );
        let parsed = json::parse(&annotate_degraded("{\"a\":1}")).unwrap();
        assert_eq!(parsed.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(annotate_degraded("not json"), "not json");
    }
}
