//! Content-addressed result cache.
//!
//! The pipeline is a pure function of (kernel source, configuration), so
//! a response can be replayed for any byte-identical request. The cache
//! key is a 128-bit hash of a **canonical, explicitly ordered**
//! serialization of those inputs — never of in-memory layout: no
//! `HashMap` iteration order, no pointer-width-dependent `Hasher` state,
//! no `DefaultHasher` (whose algorithm is unspecified and seeded per
//! process). The same request therefore maps to the same key on every
//! platform, every run, forever — pinned by a golden test below.
//!
//! Eviction is least-recently-used with a fixed entry bound, so a
//! long-running daemon's memory stays proportional to the configured
//! capacity, not to its request history.

use std::collections::HashMap;
use std::sync::Arc;

/// Builds the canonical serialization of a request's identity fields.
///
/// Fields are length-prefixed (`name=<len>:<bytes>;`) in the exact order
/// given, so no combination of field values can collide by concatenation
/// ambiguity, and the caller controls order explicitly.
#[must_use]
pub fn canonical(fields: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, value) in fields {
        out.push_str(name);
        out.push('=');
        out.push_str(&value.len().to_string());
        out.push(':');
        out.push_str(value);
        out.push(';');
    }
    out
}

/// Hashes a canonical serialization to the 128-bit cache key: two
/// independent FNV-1a-64 lanes (distinct offset bases) over the same
/// byte stream. FNV-1a is fully specified — no platform or process
/// dependence — and two lanes push collisions far below birthday range
/// for any plausible cache population.
#[must_use]
pub fn stable_key(fields: &[(&str, &str)]) -> u128 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let canon = canonical(fields);
    let mut lo = OFFSET;
    let mut hi = OFFSET ^ 0x9e37_79b9_7f4a_7c15;
    for b in canon.as_bytes() {
        lo = (lo ^ u64::from(*b)).wrapping_mul(PRIME);
        hi = (hi ^ u64::from(*b)).wrapping_mul(PRIME);
        // A second, byte-position-dependent stir keeps the lanes from
        // being related by a constant factor.
        hi = hi.rotate_left(1);
    }
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Renders a key the way `/stats` and logs show it.
#[must_use]
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

struct Entry {
    payload: Arc<str>,
    last_used: u64,
}

/// A bounded LRU map from cache key to rendered response payload.
///
/// Payloads are shared `Arc<str>` so a hit costs a clone of a pointer,
/// not of the response body. Not internally synchronised — the server
/// wraps it in a `Mutex` (lookups are far cheaper than the evaluations
/// they replace, so one lock is not the bottleneck).
pub struct LruCache {
    entries: HashMap<u128, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An empty cache bounded to `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `key` up, refreshing its recency and counting the
    /// hit/miss.
    pub fn get(&mut self, key: u128) -> Option<Arc<str>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.payload))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the cache is at capacity.
    ///
    /// Re-inserting a key that is already present is a pure LRU touch
    /// (plus payload replacement): the presence check happens *before*
    /// any eviction, so refreshing a hot entry can never push a colder
    /// — but still live — entry out of a full cache.
    pub fn put(&mut self, key: u128, payload: Arc<str>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.payload = payload;
            entry.last_used = tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // O(n) eviction scan: capacities are hundreds, and eviction
            // only runs on misses that already paid for an evaluation.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            Entry {
                payload,
                last_used: tick,
            },
        );
    }

    /// Inserts an entry recovered from a persistence log without
    /// touching the hit/miss counters — warm-starting a shard must not
    /// look like traffic in `/stats`. Recency follows call order, so
    /// replaying a log oldest-record-first reconstructs the original
    /// LRU order (bounded by capacity, exactly like live inserts).
    pub fn preload(&mut self, key: u128, payload: Arc<str>) {
        self.put(key, payload);
    }

    /// Every live entry as `(key, payload)`, least recently used first
    /// — the order a compaction pass writes them back to disk, so a
    /// warm start replaying the compacted log restores this same order.
    pub fn iter_lru(&self) -> Vec<(u128, Arc<str>)> {
        let mut entries: Vec<(&u128, &Entry)> = self.entries.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(k, e)| (*k, Arc::clone(&e.payload)))
            .collect()
    }

    /// Current number of cached responses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses) counters.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_key_is_pinned() {
        // This value must NEVER change: a key change silently invalidates
        // every deployed cache and breaks cross-version comparisons. If
        // this test fails, the hash or canonicalisation changed — revert,
        // or version the key format explicitly.
        let key = stable_key(&[
            ("source", "k daxpy { x[i] = a * x[i] + y[i]; }"),
            ("alias", "fortran"),
            ("scheduler", "balanced"),
            ("system", "L80(2,5)"),
            ("processor", "unlimited"),
            ("runs", "30"),
            ("seed", "318181"),
            ("analyze", "true"),
        ]);
        assert_eq!(key_hex(key), "36d3e21a5ab6ecdb94e4f39f08d68c16");
    }

    #[test]
    fn key_depends_on_field_order_values_and_boundaries() {
        let base = stable_key(&[("a", "x"), ("b", "y")]);
        assert_ne!(base, stable_key(&[("b", "y"), ("a", "x")]), "order");
        assert_ne!(base, stable_key(&[("a", "xy"), ("b", "")]), "boundaries");
        assert_ne!(base, stable_key(&[("a", "x"), ("b", "z")]), "values");
        assert_eq!(base, stable_key(&[("a", "x"), ("b", "y")]), "stable");
    }

    #[test]
    fn canonical_is_unambiguous() {
        assert_eq!(canonical(&[("a", "x;b=1:y")]), "a=7:x;b=1:y;");
        assert_ne!(
            canonical(&[("a", "x;b=1:y")]),
            canonical(&[("a", "x"), ("b", "y")])
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.put(1, Arc::from("one"));
        cache.put(2, Arc::from("two"));
        assert_eq!(cache.get(1).as_deref(), Some("one")); // refresh 1
        cache.put(3, Arc::from("three")); // evicts 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        assert_eq!(cache.get(3).as_deref(), Some("three"));
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut cache = LruCache::new(4);
        assert!(cache.is_empty());
        assert_eq!(cache.get(9), None);
        cache.put(9, Arc::from("x"));
        assert!(cache.get(9).is_some());
        assert!(cache.get(9).is_some());
        assert_eq!(cache.counters(), (2, 1));
    }

    #[test]
    fn reinsert_of_present_key_is_a_pure_touch_not_an_eviction() {
        // Regression shape: if `put` ran its eviction scan before the
        // presence check, re-inserting a hot key into a full cache
        // would evict a colder — but live — entry. It must not.
        let mut cache = LruCache::new(2);
        cache.put(1, Arc::from("one"));
        cache.put(2, Arc::from("two"));
        cache.put(1, Arc::from("one'")); // re-insert at capacity
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(2).as_deref(), Some("two"), "colder key survives");
        assert_eq!(cache.get(1).as_deref(), Some("one'"));
        // And the re-insert counted as a recency touch: key 1 is now
        // hotter than it was, so inserting a third key evicts... the
        // least recently *used*, which after the gets above is key 2's
        // toucher — verify via a fresh ordering.
        let mut cache = LruCache::new(2);
        cache.put(1, Arc::from("a"));
        cache.put(2, Arc::from("b"));
        cache.put(1, Arc::from("a")); // touch 1; 2 is now coldest
        cache.put(3, Arc::from("c")); // evicts 2, not 1
        assert!(cache.get(2).is_none());
        assert_eq!(cache.get(1).as_deref(), Some("a"));
        assert_eq!(cache.get(3).as_deref(), Some("c"));
    }

    #[test]
    fn preload_counts_no_traffic_and_iter_lru_orders_cold_to_hot() {
        let mut cache = LruCache::new(4);
        cache.preload(1, Arc::from("a"));
        cache.preload(2, Arc::from("b"));
        cache.preload(3, Arc::from("c"));
        assert_eq!(cache.counters(), (0, 0), "warm start is not traffic");
        assert_eq!(cache.get(1).as_deref(), Some("a")); // 1 becomes hottest
        let order: Vec<u128> = cache.iter_lru().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn replacing_a_key_does_not_grow_the_cache() {
        let mut cache = LruCache::new(2);
        cache.put(1, Arc::from("a"));
        cache.put(1, Arc::from("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1).as_deref(), Some("b"));
    }
}
