//! Restart-proof cache: an append-only on-disk log of cache entries.
//!
//! A `bsched serve` daemon's content-addressed cache is pure derived
//! state — every entry can be recomputed — but recomputation is exactly
//! the cost the cache exists to avoid, and a fleet that loses its warm
//! state on every restart fails its latency targets for minutes after
//! each deploy. This module makes the cache survive the process.
//!
//! The format follows the bench journal's discipline (see
//! `crates/bench/src/journal.rs`): exact bytes, atomic replacement,
//! and recovery that *degrades* instead of crashing.
//!
//! ## On-disk format
//!
//! ```text
//! bsched-cachelog-v1\n                      ← magic + version header
//! [u32 len][u128 key][payload][u32 crc]     ← record, repeated
//! ```
//!
//! All integers are little-endian. `len` is the payload's byte length;
//! `key` is the cache's 128-bit content hash; `payload` is the UTF-8
//! response fragment; `crc` is CRC-32 (IEEE) over `len ‖ key ‖ payload`.
//! Appends are flushed per record, so at most the record being written
//! when the process dies can be torn.
//!
//! ## Recovery
//!
//! Records are replayed oldest-first; a later record for the same key
//! wins, and replay order doubles as LRU recency, so a warm-started
//! cache has the same hot set it died with (bounded by capacity). The
//! first record that is short, oversized, CRC-mismatched, or not UTF-8
//! ends the replay: the file is truncated back to the last good record
//! with a warning on stderr — **never** a crash, and never a record
//! resurrected from beyond the torn point (acceptance criterion of the
//! `persist-corrupt` chaos fault).
//!
//! ## Compaction
//!
//! Dead bytes (overwritten or evicted records) accumulate until the
//! file is ~4× its live payload, then the server rewrites it from the
//! cache's LRU-ordered snapshot via temp + rename + `sync_all` — the
//! same atomic-replacement move the journal uses, so a crash during
//! compaction leaves either the old log or the new one, both valid.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bsched_faults::{fault_point, Site};

/// Magic first line: identifies the file and pins the record format.
/// Bump the version if the record layout ever changes — recovery
/// discards (and warns about) files whose header does not match, like
/// the journal's fingerprint discipline.
const MAGIC: &[u8] = b"bsched-cachelog-v1\n";

/// Upper bound on a single payload. Real response payloads are a few
/// KiB; anything claiming to be larger is a corrupt length field, and
/// treating it as torn tail (instead of allocating it) keeps recovery
/// robust against garbage.
const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Compaction triggers when the file exceeds this multiple of its live
/// bytes…
const COMPACT_FACTOR: u64 = 4;
/// …but never below this size — rewriting a tiny file buys nothing.
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time. Hand-rolled
/// because the workspace vendors no checksum crate; the polynomial is
/// the reflected 0xEDB88320 everyone else (zlib, PNG, ethernet) uses,
/// so external tools can verify records.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFF_u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One record's bytes: `[len][key][payload][crc]`, ready to append.
fn encode_record(key: u128, payload: &str, corrupt_crc: bool) -> Vec<u8> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    let mut body = Vec::with_capacity(4 + 16 + payload.len() + 4);
    body.extend_from_slice(&len.to_le_bytes());
    body.extend_from_slice(&key.to_le_bytes());
    body.extend_from_slice(payload.as_bytes());
    let mut crc = crc32(&body);
    if corrupt_crc {
        // The `persist-corrupt` fault: the record body is intact but
        // the checksum is wrong, exactly what a kill between the
        // payload write and the crc write leaves behind.
        crc ^= 0xDEAD_BEEF;
    }
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

fn record_size(payload_len: usize) -> u64 {
    4 + 16 + payload_len as u64 + 4
}

/// What [`CacheLog::open`] recovered from an existing log.
pub struct Recovery {
    /// Live entries, oldest-first (replay order = LRU recency), one per
    /// key (the latest record wins), capped to the cache capacity.
    pub entries: Vec<(u128, Arc<str>)>,
    /// Valid records scanned, including ones later records superseded.
    pub records: usize,
    /// Byte offset the file was truncated to when a torn or corrupt
    /// tail was found; `None` when the whole file was valid.
    pub truncated_at: Option<u64>,
}

/// The append-only cache log behind `--cache-log PATH`.
pub struct CacheLog {
    path: PathBuf,
    file: File,
    /// Latest record size per key the log believes is live. Evictions
    /// the cache performs are invisible here, so this *overestimates*
    /// live bytes — which only delays compaction, never corrupts it
    /// (compaction rewrites from the cache's own snapshot).
    live: HashMap<u128, u64>,
    file_bytes: u64,
    live_bytes: u64,
    appends: u64,
    compactions: u64,
}

impl CacheLog {
    /// Opens (or creates) the log at `path` and recovers its contents.
    ///
    /// A missing file is created with just the header. A header
    /// mismatch discards the file (with a warning) rather than guessing
    /// at a foreign format. A torn or corrupt tail is truncated back to
    /// the last valid record (with a warning). None of these crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening, reading, or truncating the file —
    /// a log that cannot be *accessed* is a configuration error, unlike
    /// one that is merely damaged.
    pub fn open(path: &Path, capacity: usize) -> std::io::Result<(CacheLog, Recovery)> {
        let mut raw = Vec::new();
        let fresh = match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
                false
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(e) => return Err(e),
        };
        if !fresh && !raw.starts_with(MAGIC) {
            eprintln!(
                "bsched-serve: cache log {} has an unrecognized header; discarding it",
                path.display()
            );
            raw.clear();
        }
        let (scanned, records, valid_end) = scan_records(&raw);
        let truncated_at = (!raw.is_empty() && valid_end < raw.len() as u64).then_some(valid_end);

        // Rewrite the file when anything needs cutting (or it is new):
        // truncate(2) via set_len covers the torn-tail case, and a full
        // header rewrite covers the discarded-foreign-file case.
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let disk_len = file.metadata()?.len();
        if raw.is_empty() && disk_len > 0 {
            // Foreign header: start over atomically-enough (the old
            // content was unusable regardless of where a crash lands).
            file.set_len(0)?;
        }
        if file.metadata()?.len() == 0 {
            file.write_all(MAGIC)?;
            file.sync_all()?;
        } else if let Some(at) = truncated_at {
            eprintln!(
                "bsched-serve: cache log {} has a torn or corrupt tail; \
                 truncating {} -> {} bytes ({} records recovered)",
                path.display(),
                raw.len(),
                at,
                records
            );
            file.set_len(at)?;
            file.sync_all()?;
            file.seek(std::io::SeekFrom::End(0))?;
        }

        // Dedup: the latest record for a key wins, and keeps that
        // latest position in replay order (it is the key's most recent
        // use). Then cap to capacity — only the hottest tail fits.
        let mut last_index: HashMap<u128, usize> = HashMap::new();
        for (i, (key, _)) in scanned.iter().enumerate() {
            last_index.insert(*key, i);
        }
        let mut entries: Vec<(u128, Arc<str>)> = scanned
            .into_iter()
            .enumerate()
            .filter(|(i, (key, _))| last_index.get(key) == Some(i))
            .map(|(_, (key, payload))| (key, Arc::from(payload)))
            .collect();
        if entries.len() > capacity.max(1) {
            entries.drain(..entries.len() - capacity.max(1));
        }

        let mut live = HashMap::new();
        let mut live_bytes = 0u64;
        for (key, payload) in &entries {
            let size = record_size(payload.len());
            live.insert(*key, size);
            live_bytes += size;
        }
        let file_bytes = file.metadata()?.len();
        let log = CacheLog {
            path: path.to_path_buf(),
            file,
            live,
            file_bytes,
            live_bytes,
            appends: 0,
            compactions: 0,
        };
        let recovery = Recovery {
            entries,
            records,
            truncated_at,
        };
        Ok((log, recovery))
    }

    /// Appends one entry and flushes it to the OS.
    ///
    /// Subject to the `persist-corrupt` fault site, which writes the
    /// record with a wrong checksum — the shape a mid-write kill leaves
    /// — so recovery's truncate-and-warn path can be exercised on
    /// demand.
    ///
    /// # Errors
    ///
    /// Propagates the write failure; the caller downgrades it to a
    /// counter + warning (a full disk must not take serving down).
    pub fn append(&mut self, key: u128, payload: &str) -> std::io::Result<()> {
        let corrupt = fault_point!(Site::PersistCorrupt).is_some();
        let record = encode_record(key, payload, corrupt);
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.file_bytes += record.len() as u64;
        let size = record_size(payload.len());
        if let Some(old) = self.live.insert(key, size) {
            self.live_bytes -= old;
        }
        self.live_bytes += size;
        self.appends += 1;
        Ok(())
    }

    /// True when dead bytes dominate and a compaction pass would pay
    /// for itself.
    #[must_use]
    pub fn needs_compaction(&self) -> bool {
        self.file_bytes > COMPACT_MIN_BYTES
            && self.file_bytes > COMPACT_FACTOR * self.live_bytes.max(1)
    }

    /// Rewrites the log from the cache's LRU-ordered snapshot (coldest
    /// first, so replay recency matches) via temp + rename + `sync_all`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error the original log is untouched
    /// (the temp file may linger, and is overwritten next time).
    pub fn compact(&mut self, entries: &[(u128, Arc<str>)]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(MAGIC)?;
            for (key, payload) in entries {
                out.write_all(&encode_record(*key, payload, false))?;
            }
            out.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the append handle on the new inode: the old handle
        // still points at the renamed-over file.
        self.file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        self.file.sync_all()?;
        self.live.clear();
        self.live_bytes = 0;
        for (key, payload) in entries {
            let size = record_size(payload.len());
            self.live.insert(*key, size);
            self.live_bytes += size;
        }
        self.file_bytes = self.file.metadata()?.len();
        self.compactions += 1;
        Ok(())
    }

    /// Lifetime (appends, compactions) counters for `/stats`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.appends, self.compactions)
    }

    /// Current file size in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }
}

/// Scans raw file bytes into `(key, payload)` records. Returns the
/// records in file order, the count, and the byte offset of the end of
/// the last valid record (everything past it is torn or corrupt).
fn scan_records(raw: &[u8]) -> (Vec<(u128, String)>, usize, u64) {
    let mut out = Vec::new();
    if !raw.starts_with(MAGIC) {
        return (out, 0, 0);
    }
    let mut pos = MAGIC.len();
    loop {
        if pos + 4 > raw.len() {
            break; // torn inside a length prefix (or clean EOF)
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            break; // corrupt length field
        }
        let body_end = pos + 4 + 16 + len;
        if body_end + 4 > raw.len() {
            break; // torn mid-record
        }
        let stored = u32::from_le_bytes(raw[body_end..body_end + 4].try_into().unwrap());
        if crc32(&raw[pos..body_end]) != stored {
            break; // corrupt record (bad bytes or injected fault)
        }
        let key = u128::from_le_bytes(raw[pos + 4..pos + 20].try_into().unwrap());
        let Ok(payload) = std::str::from_utf8(&raw[pos + 20..body_end]) else {
            break; // CRC passed but payload is not UTF-8: treat as torn
        };
        out.push((key, payload.to_owned()));
        pos = body_end + 4;
    }
    let records = out.len();
    (out, records, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "bsched-persist-{tag}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrips_appends_through_reopen() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, rec) = CacheLog::open(&path, 16).unwrap();
            assert!(rec.entries.is_empty());
            log.append(1, "one").unwrap();
            log.append(2, "two").unwrap();
            log.append(1, "one-v2").unwrap();
        }
        let (_, rec) = CacheLog::open(&path, 16).unwrap();
        assert_eq!(rec.records, 3);
        assert!(rec.truncated_at.is_none());
        // Later record for key 1 wins, and holds its later (hotter)
        // position in replay order.
        let entries: Vec<(u128, &str)> = rec.entries.iter().map(|(k, p)| (*k, &**p)).collect();
        assert_eq!(entries, vec![(2, "two"), (1, "one-v2")]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recovery_respects_capacity_keeping_the_hot_tail() {
        let path = tmp_path("capacity");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = CacheLog::open(&path, 16).unwrap();
            for k in 0..10u128 {
                log.append(k, "p").unwrap();
            }
        }
        let (_, rec) = CacheLog::open(&path, 3).unwrap();
        let keys: Vec<u128> = rec.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![7, 8, 9], "only the most recent fit");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_never_resurrected() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = CacheLog::open(&path, 16).unwrap();
            log.append(1, "alpha").unwrap();
            log.append(2, "beta").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Tear the file at every offset inside the *second* record and
        // verify: no panic, first record survives, second never does.
        let first_end = MAGIC.len() + (4 + 16 + 5 + 4);
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, rec) = CacheLog::open(&path, 16).unwrap();
            let entries: Vec<(u128, &str)> = rec.entries.iter().map(|(k, p)| (*k, &**p)).collect();
            assert_eq!(entries, vec![(1, "alpha")], "cut at {cut}");
            if cut == first_end {
                // Cut exactly on a record boundary: the file is simply
                // shorter, not torn.
                assert_eq!(rec.truncated_at, None, "cut at {cut}");
            } else {
                assert_eq!(rec.truncated_at, Some(first_end as u64), "cut at {cut}");
                assert_eq!(
                    std::fs::metadata(&path).unwrap().len(),
                    first_end as u64,
                    "file physically truncated at {cut}"
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_cuts_the_log_there() {
        let path = tmp_path("badcrc");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = CacheLog::open(&path, 16).unwrap();
            log.append(1, "good").unwrap();
            log.append(2, "flipped").unwrap();
            log.append(3, "after").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside record 2: its CRC no longer
        // matches, so recovery must stop before it — record 3 is past
        // the torn point and must NOT be resurrected.
        let rec2_payload = MAGIC.len() + (4 + 16 + 4 + 4) + 4 + 16;
        bytes[rec2_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = CacheLog::open(&path, 16).unwrap();
        let entries: Vec<u128> = rec.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(entries, vec![1]);
        assert!(rec.truncated_at.is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_header_is_discarded_not_parsed() {
        let path = tmp_path("foreign");
        std::fs::write(&path, b"not a cache log at all\njunk").unwrap();
        let (mut log, rec) = CacheLog::open(&path, 16).unwrap();
        assert!(rec.entries.is_empty());
        log.append(9, "fresh").unwrap();
        drop(log);
        let (_, rec) = CacheLog::open(&path, 16).unwrap();
        assert_eq!(rec.entries.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_dead_bytes_and_preserves_order() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = CacheLog::open(&path, 16).unwrap();
        for round in 0..50 {
            for k in 0..4u128 {
                log.append(k, &format!("payload-{round}")).unwrap();
            }
        }
        let before = log.file_bytes();
        let snapshot: Vec<(u128, Arc<str>)> = vec![(2, Arc::from("cold")), (0, Arc::from("hot"))];
        log.compact(&snapshot).unwrap();
        assert!(log.file_bytes() < before);
        assert_eq!(log.counters().1, 1);
        // Post-compaction appends land after the snapshot records.
        log.append(5, "new").unwrap();
        drop(log);
        let (_, rec) = CacheLog::open(&path, 16).unwrap();
        let entries: Vec<(u128, &str)> = rec.entries.iter().map(|(k, p)| (*k, &**p)).collect();
        assert_eq!(entries, vec![(2, "cold"), (0, "hot"), (5, "new")]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn needs_compaction_tracks_dead_ratio() {
        let path = tmp_path("ratio");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = CacheLog::open(&path, 16).unwrap();
        assert!(!log.needs_compaction(), "fresh log never compacts");
        // One key overwritten many times with a big payload: file bytes
        // grow, live bytes stay one record.
        let big = "x".repeat(8 * 1024);
        for _ in 0..40 {
            log.append(1, &big).unwrap();
        }
        assert!(log.needs_compaction());
        log.compact(&[(1, Arc::from(&*big))]).unwrap();
        assert!(!log.needs_compaction());
        let _ = std::fs::remove_file(&path);
    }
}
