//! End-to-end tests against a real listening daemon: one process, real
//! sockets, real worker pool. Every server binds `127.0.0.1:0` so tests
//! run in parallel without port collisions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use bsched_analyze::json::{self, Json};
use bsched_serve::{Server, ServerConfig};

/// Fault plans are process-global; tests that install one serialize.
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server hung up instead of responding");
        json::parse(line.trim()).unwrap_or_else(|| panic!("malformed response: {line:?}"))
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(Json::as_str).unwrap_or("missing")
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("start server")
}

const DAXPY: &str = r#"{"op":"schedule","id":"rt1","kernel":"kernel daxpy { arrays x, y; y[0] = 3.0 * x[0] + y[0]; }","system":"L80(2,5)","runs":3}"#;

#[test]
fn schedule_round_trip_carries_schedule_eval_and_diagnostics() {
    let server = small_server();
    let mut client = Client::connect(&server);
    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(v.get("id").and_then(Json::as_str), Some("rt1"));
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
    let runtime = v
        .get("eval")
        .and_then(|e| e.get("mean_runtime"))
        .and_then(Json::as_f64)
        .expect("eval.mean_runtime");
    assert!(runtime > 0.0);
    let blocks = v
        .get("schedule")
        .and_then(|s| s.get("blocks"))
        .and_then(Json::as_array)
        .expect("schedule.blocks");
    assert_eq!(blocks.len(), 1);
    assert!(v.get("diagnostics").and_then(Json::as_array).is_some());
    assert!(v.get("service_us").and_then(Json::as_u64).is_some());
    server.begin_shutdown();
    server.join();
}

#[test]
fn identical_request_is_served_from_cache() {
    let server = small_server();
    let mut client = Client::connect(&server);
    let first = client.round_trip(DAXPY);
    assert_eq!(status(&first), "ok");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let second = client.round_trip(DAXPY);
    assert_eq!(status(&second), "ok");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    // The payload is byte-identical modulo envelope metadata.
    assert_eq!(
        format!("{:?}", first.get("eval")),
        format!("{:?}", second.get("eval"))
    );
    let stats = client.round_trip("/stats");
    let hits = stats
        .get("stats")
        .and_then(|s| s.get("cache_hits"))
        .and_then(Json::as_u64)
        .expect("cache_hits");
    assert_eq!(hits, 1);
    server.begin_shutdown();
    server.join();
}

#[test]
fn tune_flag_installs_a_background_tuned_schedule() {
    let server = small_server();
    let mut client = Client::connect(&server);
    // High-variance system on a small kernel: the policy search is fast
    // and reliably finds a non-default winner.
    let req = r#"{"op":"schedule","id":"t1","kernel":"kernel daxpy { arrays x, y; y[0] = 3.0 * x[0] + y[0]; }","system":"N(3,2)","runs":3,"analyze":false,"tune":true}"#;
    let first = client.round_trip(req);
    assert_eq!(status(&first), "ok", "{first:?}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let first_sched = first
        .get("schedule")
        .and_then(|s| s.get("scheduler"))
        .and_then(Json::as_str)
        .expect("scheduler name")
        .to_owned();

    // The search runs behind live requests; poll /stats until the
    // winner lands in the cache.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.round_trip("/stats");
        let installs = stats
            .get("stats")
            .and_then(|s| s.get("tuned_installs"))
            .and_then(Json::as_u64)
            .expect("tuned_installs counter");
        if installs >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background tune never installed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The identical request now hits the cache — and the payload it gets
    // is the *tuned* schedule installed under the original key.
    let second = client.round_trip(req);
    assert_eq!(status(&second), "ok", "{second:?}");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    let second_sched = second
        .get("schedule")
        .and_then(|s| s.get("scheduler"))
        .and_then(Json::as_str)
        .expect("scheduler name");
    assert_ne!(
        second_sched, first_sched,
        "cached payload should carry the tuned policy, not the original scheduler"
    );
    assert!(
        second_sched.contains("family="),
        "tuned scheduler name carries the policy: {second_sched}"
    );

    // A request *without* the tune flag keeps its own key and is still
    // served the untuned schedule — the entries never mix.
    let plain = r#"{"op":"schedule","id":"t2","kernel":"kernel daxpy { arrays x, y; y[0] = 3.0 * x[0] + y[0]; }","system":"N(3,2)","runs":3,"analyze":false}"#;
    let v = client.round_trip(plain);
    assert_eq!(status(&v), "ok");
    assert_eq!(
        v.get("schedule")
            .and_then(|s| s.get("scheduler"))
            .and_then(Json::as_str),
        Some(first_sched.as_str())
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn over_capacity_burst_gets_typed_overloaded_responses() {
    let _guard = fault_lock();
    // One worker, one slot, and every evaluation sleeping 200ms: a
    // pipelined burst must overflow admission.
    bsched_faults::install("slow-worker:arg=200".parse().expect("plan"));
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(&server);
    const BURST: usize = 6;
    for i in 0..BURST {
        client.send(&DAXPY.replace("rt1", &format!("b{i}")));
    }
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..BURST {
        let v = client.recv();
        match status(&v) {
            "ok" => ok += 1,
            "overloaded" => {
                assert_eq!(v.get("retry").and_then(Json::as_bool), Some(true));
                assert!(v.get("queue_capacity").and_then(Json::as_u64).is_some());
                overloaded += 1;
            }
            other => panic!("unexpected status {other}: {v:?}"),
        }
    }
    bsched_faults::clear();
    assert!(ok >= 1, "at least one admitted request must finish");
    assert!(
        overloaded >= 1,
        "a {BURST}-deep burst against capacity 1 must shed load"
    );
    let stats = client.round_trip("/stats");
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("overloaded"))
            .and_then(Json::as_u64),
        Some(overloaded)
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn injected_serve_reject_sheds_load_without_a_full_queue() {
    let _guard = fault_lock();
    bsched_faults::install("serve-reject".parse().expect("plan"));
    let server = small_server();
    let mut client = Client::connect(&server);
    let v = client.round_trip(DAXPY);
    bsched_faults::clear();
    assert_eq!(status(&v), "overloaded", "{v:?}");
    server.begin_shutdown();
    server.join();
}

#[test]
fn expired_deadline_yields_a_typed_timeout() {
    let server = Server::start(ServerConfig {
        workers: 1,
        default_deadline_ms: Some(1),
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(&server);
    // A heavyweight stand-in at maximum runs cannot finish in 1ms.
    let v = client.round_trip(
        r#"{"op":"schedule","id":"t","benchmark":"mdg","system":"L80(2,5)","runs":10000}"#,
    );
    assert_eq!(status(&v), "timeout", "{v:?}");
    assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(1));
    let stats = client.round_trip("/stats");
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("timeouts"))
            .and_then(Json::as_u64),
        Some(1)
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn malformed_and_failing_requests_get_typed_errors() {
    let server = small_server();
    let mut client = Client::connect(&server);
    let v = client.round_trip("this is not json");
    assert_eq!(status(&v), "error");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("parse"));
    let v = client.round_trip(
        r#"{"op":"schedule","id":"bad","kernel":"kernel k { arrays a; b[0] = 1; }","system":"fixed(2)"}"#,
    );
    assert_eq!(status(&v), "error", "{v:?}");
    assert_eq!(v.get("id").and_then(Json::as_str), Some("bad"));
    assert!(v.get("kind").and_then(Json::as_str).is_some());
    assert!(v.get("reason").and_then(Json::as_str).is_some());
    server.begin_shutdown();
    server.join();
}

#[test]
fn stats_and_ping_answer_inline() {
    let server = small_server();
    let mut client = Client::connect(&server);
    let pong = client.round_trip(r#"{"op":"ping","id":"p"}"#);
    assert_eq!(status(&pong), "ok");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    let stats = client.round_trip(r#"{"op":"stats"}"#);
    let obj = stats.get("stats").expect("stats object");
    for key in [
        "requests",
        "ok",
        "errors",
        "overloaded",
        "timeouts",
        "queue_depth",
        "p50_us",
        "p95_us",
        "p99_us",
        "cache_hits",
        "cache_misses",
        "cache_entries",
        "workers",
        "queue_capacity",
        "steals",
        "parks",
        "pool_queued",
        "io_threads",
        "open_connections",
        "too_large",
        "slow_consumers",
        "streams",
        "max_line_bytes",
        "write_cap_bytes",
        "draining",
    ] {
        assert!(obj.get(key).is_some(), "/stats missing {key}");
    }
    server.begin_shutdown();
    server.join();
}

#[test]
fn shutdown_op_drains_in_flight_work_before_join_returns() {
    let _guard = fault_lock();
    bsched_faults::install("slow-worker:arg=150".parse().expect("plan"));
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(&server);
    // Three slow requests in flight, then shutdown.
    for i in 0..3 {
        client.send(&DAXPY.replace("rt1", &format!("d{i}")));
    }
    let draining = client.round_trip(r#"{"op":"shutdown","id":"s"}"#);
    bsched_faults::clear();
    assert_eq!(draining.get("draining").and_then(Json::as_bool), Some(true));
    let started = Instant::now();
    // Every in-flight response still arrives, then the server exits.
    let mut seen = Vec::new();
    for _ in 0..3 {
        let v = client.recv();
        assert_eq!(status(&v), "ok", "{v:?}");
        seen.push(v.get("id").and_then(Json::as_str).unwrap_or("").to_owned());
    }
    seen.sort();
    assert_eq!(seen, ["d0", "d1", "d2"]);
    server.join();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must not hang"
    );
}

/// A connection that has sent half a request line when the drain begins
/// must get a typed `overloaded` response before the socket closes —
/// never a silent hangup. (The notice is an epoll-backend behaviour;
/// the portable fallback just closes.)
#[cfg(target_os = "linux")]
#[test]
fn connection_caught_mid_line_at_drain_gets_a_typed_overloaded() {
    let server = small_server();
    let mut client = Client::connect(&server);
    // Half a schedule request: bytes on the wire, no terminating newline.
    client
        .writer
        .write_all(br#"{"op":"schedule","id":"half"#)
        .expect("send partial");
    client.writer.flush().expect("flush partial");
    // Let the IO thread read the fragment into the connection buffer.
    std::thread::sleep(Duration::from_millis(100));
    server.begin_shutdown();
    let v = client.recv();
    assert_eq!(status(&v), "overloaded", "{v:?}");
    assert_eq!(v.get("retry").and_then(Json::as_bool), Some(true));
    // After the notice the server closes the connection cleanly.
    let mut line = String::new();
    assert_eq!(
        client.reader.read_line(&mut line).expect("read eof"),
        0,
        "expected EOF after the drain notice, got {line:?}"
    );
    server.join();
}

#[test]
fn responses_can_arrive_out_of_order_and_ids_disambiguate() {
    let _guard = fault_lock();
    // First request stalls 300ms; second is a cache-miss but fast. With
    // two workers the fast one overtakes the slow one.
    bsched_faults::install("slow-worker:limit=1,arg=300".parse().expect("plan"));
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(&server);
    client.send(&DAXPY.replace("rt1", "slow"));
    // Give the slow request time to claim the limit=1 fault before the
    // fast one races it to the fault point.
    std::thread::sleep(Duration::from_millis(50));
    client.send(
        &DAXPY
            .replace("rt1", "fast")
            .replace("\"runs\":3", "\"runs\":4"),
    );
    let first = client.recv();
    let second = client.recv();
    bsched_faults::clear();
    assert_eq!(first.get("id").and_then(Json::as_str), Some("fast"));
    assert_eq!(second.get("id").and_then(Json::as_str), Some("slow"));
    server.begin_shutdown();
    server.join();
}
