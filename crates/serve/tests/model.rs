//! Model-checked interleavings for the serving layer's shared state:
//! the stats recorder, the LRU cache behind its mutex, and the
//! router's prober shutdown handshake.
//!
//! Build with `RUSTFLAGS="--cfg bsched_model"` (the CI `model` job);
//! without the cfg this file is empty.
#![cfg(bsched_model)]

use std::sync::Arc;
use std::time::Duration;

use bsched_model::{explore, explore_pct, Config};
use bsched_par::sync::{thread, AtomicBool, Mutex, Ordering};
use bsched_serve::health::{prober_loop, HealthConfig};
use bsched_serve::{stable_key, LruCache, ServerStats};

/// Two request threads racing on the stats path — counters plus the
/// mutex-guarded service-time ring — never lose an update under any
/// interleaving.
#[test]
fn concurrent_stat_recording_loses_nothing() {
    let report = explore(&Config::default(), || {
        let stats = Arc::new(ServerStats::default());
        let worker = {
            let stats = Arc::clone(&stats);
            thread::spawn(move || {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                stats.record_service(10);
                stats.ok.fetch_add(1, Ordering::Relaxed);
            })
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats.record_service(30);
        stats.ok.fetch_add(1, Ordering::Relaxed);
        worker.join().unwrap();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 2);
        assert_eq!(stats.ok.load(Ordering::Relaxed), 2);
        let (p50, _, p99) = stats.percentiles();
        assert_eq!((p50, p99), (10, 30), "both samples landed in the ring");
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
    assert!(report.complete, "stats path must be explored exhaustively");
}

/// The server's cache discipline: `LruCache` is plain data behind a
/// shim `Mutex` (exactly how `server::Inner` holds it). A hit/miss race
/// between two request threads must keep the hit+miss counters equal to
/// the number of lookups and never corrupt LRU bookkeeping.
#[test]
fn lru_counters_stay_consistent_across_racing_lookups() {
    let report = explore(&Config::default(), || {
        let cache = Arc::new(Mutex::new(LruCache::new(4)));
        let key_a = stable_key(&[("kernel", "a")]);
        let key_b = stable_key(&[("kernel", "b")]);
        let other = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let mut c = cache.lock().unwrap();
                if c.get(key_b).is_none() {
                    c.put(key_b, "resp-b".into());
                }
            })
        };
        {
            let mut c = cache.lock().unwrap();
            if c.get(key_a).is_none() {
                c.put(key_a, "resp-a".into());
            }
        }
        other.join().unwrap();
        let mut c = cache.lock().unwrap();
        assert_eq!(c.get(key_a).as_deref(), Some("resp-a"));
        assert_eq!(c.get(key_b).as_deref(), Some("resp-b"));
        assert_eq!(c.len(), 2);
        // 2 misses from the inserting threads + 2 hits just above.
        assert_eq!(c.counters(), (2, 2), "hit/miss counters lost an update");
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
    assert!(report.complete);
}

/// The router's prober shutdown handshake: the prober polls a stop
/// flag; `Router::drop`/`begin_shutdown` sets it and joins. Modelled
/// with an empty shard list (no sockets), the handshake must never
/// deadlock, under PCT priorities that can starve either side.
/// Schedules where the prober spins past the step budget are truncated
/// (`fail_on_step_limit: false`), not failures — the property under
/// test is "stop is eventually observed and join returns", and every
/// schedule that terminates must do so cleanly.
#[test]
fn prober_shutdown_handshake_cannot_deadlock() {
    let cfg = Config {
        max_steps: 2_000,
        fail_on_step_limit: false,
        ..Config::default()
    };
    let report = explore_pct(&cfg, 0x9026, 300, 3, || {
        let stop = Arc::new(AtomicBool::new(false));
        let prober = {
            let stop = Arc::clone(&stop);
            let health = HealthConfig {
                interval: Duration::from_millis(1),
                ..HealthConfig::default()
            };
            thread::Builder::new()
                .name("bsched-route-health".to_owned())
                .spawn(move || prober_loop(&[], &health, &stop))
                .unwrap()
        };
        stop.store(true, Ordering::Relaxed);
        prober.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
}
