//! Fleet-level end-to-end tests: cache persistence across daemon
//! restarts, router forwarding and failover, and fault-injected log
//! corruption. Every daemon and router binds `127.0.0.1:0` so tests
//! run in parallel without port collisions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use bsched_analyze::json::{self, Json};
use bsched_serve::{
    parse_request, prepare_request, router::rendezvous_rank, HealthConfig, Request, Router,
    RouterConfig, Server, ServerConfig,
};

/// Fault plans are process-global; tests that install one serialize.
fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A fresh log path in a per-test temp directory (no tempdir crate:
/// pid + counter keeps parallel test binaries apart).
fn temp_log(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bsched-fleet-tests-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join("cache.log")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server hung up instead of responding");
        json::parse(line.trim()).unwrap_or_else(|| panic!("malformed response: {line:?}"))
    }
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(Json::as_str).unwrap_or("missing")
}

fn cached(v: &Json) -> Option<bool> {
    v.get("cached").and_then(Json::as_bool)
}

fn stat(v: &Json, field: &str) -> u64 {
    v.get("stats")
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats.{field} missing in {v:?}"))
}

fn server_with_log(log: &std::path::Path) -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 32,
        cache_log: Some(log.display().to_string()),
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("start server")
}

const DAXPY: &str = r#"{"op":"schedule","id":"f1","kernel":"kernel daxpy { arrays x, y; y[0] = 3.0 * x[0] + y[0]; }","system":"L80(2,5)","runs":3}"#;
const DOT: &str = r#"{"op":"schedule","id":"f2","kernel":"kernel saxpy { arrays u, v; v[1] = 2.0 * u[1] + v[1]; }","system":"L80(2,5)","runs":3}"#;

#[test]
fn cache_log_warm_starts_a_restarted_server() {
    let log = temp_log("warm");

    let first = server_with_log(&log);
    let mut client = Client::connect(first.local_addr());
    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(cached(&v), Some(false));
    let stats = client.round_trip("/stats");
    assert!(stat(&stats, "persist_appends") >= 1, "{stats:?}");
    assert_eq!(stat(&stats, "persist_errors"), 0);
    first.begin_shutdown();
    first.join();

    // A brand-new process image would see exactly this: same log path,
    // empty in-memory cache. The first request must already be a hit.
    let second = server_with_log(&log);
    let mut client = Client::connect(second.local_addr());
    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(cached(&v), Some(true), "warm start missed the log: {v:?}");
    let stats = client.round_trip("/stats");
    assert!(stat(&stats, "cache_entries") >= 1);
    assert_eq!(stat(&stats, "cache_hits"), 1);
    second.begin_shutdown();
    second.join();
}

#[test]
fn corrupted_log_tail_is_dropped_not_resurrected() {
    let _guard = fault_lock();

    let log = temp_log("corrupt");
    let server = server_with_log(&log);
    let mut client = Client::connect(server.local_addr());
    // First append is clean, second is written with a poisoned CRC.
    assert_eq!(status(&client.round_trip(DAXPY)), "ok");
    bsched_faults::install("persist-corrupt".parse().expect("plan"));
    assert_eq!(status(&client.round_trip(DOT)), "ok");
    bsched_faults::clear();
    server.begin_shutdown();
    server.join();

    // Recovery must keep the clean prefix, truncate the poisoned tail,
    // and above all not panic.
    let server = server_with_log(&log);
    let mut client = Client::connect(server.local_addr());
    let v = client.round_trip(DAXPY);
    assert_eq!(cached(&v), Some(true), "clean prefix lost: {v:?}");
    let v = client.round_trip(DOT);
    assert_eq!(cached(&v), Some(false), "corrupt record resurrected: {v:?}");
    server.begin_shutdown();
    server.join();
}

#[test]
fn router_forwards_to_shards_and_merges_stats() {
    let a = small_server();
    let b = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string(), b.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");

    let mut client = Client::connect(router.local_addr());
    let pong = client.round_trip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    assert_eq!(pong.get("router").and_then(Json::as_bool), Some(true));

    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(cached(&v), Some(false));
    assert!(v.get("degraded").is_none(), "healthy fleet degraded: {v:?}");
    // Rendezvous hashing is deterministic, so the repeat lands on the
    // same shard and hits its cache.
    let v = client.round_trip(DAXPY);
    assert_eq!(cached(&v), Some(true), "{v:?}");

    let stats = client.round_trip("/stats");
    assert_eq!(stat(&stats, "shards_up"), 2);
    assert_eq!(stat(&stats, "shards_down"), 0);
    assert_eq!(stat(&stats, "cache_hits"), 1);
    assert!(stat(&stats, "routed") >= 2);
    let shards = stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("per-shard array");
    assert_eq!(shards.len(), 2);

    router.begin_shutdown();
    router.join();
    for s in [a, b] {
        s.begin_shutdown();
        s.join();
    }
}

#[test]
fn router_fails_over_from_a_dead_shard_with_a_degraded_response() {
    let a = small_server();
    let b = small_server();
    let shards = vec![a.local_addr().to_string(), b.local_addr().to_string()];
    let router = Router::start(RouterConfig {
        shards: shards.clone(),
        health: HealthConfig {
            interval: Duration::from_millis(50),
            ..HealthConfig::default()
        },
        ..RouterConfig::default()
    })
    .expect("start router");

    // Kill exactly the shard that owns DAXPY's key, so the first
    // attempt is guaranteed to fail and the request must fail over.
    let key = match parse_request(DAXPY) {
        Ok(Request::Schedule(req)) => prepare_request(&req).expect("prepare").key(),
        other => panic!("unexpected parse: {other:?}"),
    };
    let owner = rendezvous_rank(key, &shards)[0];
    let (victim, survivor) = if owner == 0 { (a, b) } else { (b, a) };
    victim.begin_shutdown();
    victim.join();

    let mut client = Client::connect(router.local_addr());
    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "ok", "failover dropped the request: {v:?}");
    assert_eq!(
        v.get("degraded").and_then(Json::as_bool),
        Some(true),
        "failover response not marked degraded: {v:?}"
    );

    // The prober (or the forward failures) must mark the shard down.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.round_trip("/stats");
        if stat(&stats, "shards_down") == 1 {
            assert_eq!(stat(&stats, "shards_up"), 1);
            assert!(stat(&stats, "failovers") >= 1, "{stats:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never marked the dead shard down: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    router.begin_shutdown();
    router.join();
    survivor.begin_shutdown();
    survivor.join();
}

#[test]
fn router_with_every_shard_dead_returns_a_typed_error_not_a_drop() {
    // Bind-then-drop two ports: real addresses, nobody listening.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        })
        .collect();
    let router = Router::start(RouterConfig {
        shards: dead,
        ..RouterConfig::default()
    })
    .expect("start router");

    let mut client = Client::connect(router.local_addr());
    let v = client.round_trip(DAXPY);
    assert_eq!(status(&v), "error", "{v:?}");
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("unavailable"),
        "{v:?}"
    );
    assert_eq!(v.get("id").and_then(Json::as_str), Some("f1"));

    router.begin_shutdown();
    router.join();
}

#[test]
fn add_shard_rehomes_a_minimal_fraction_and_serves_through_it() {
    let a = small_server();
    let b = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());

    let v = client.round_trip(&format!(
        r#"{{"op":"add-shard","id":"m1","addr":"{}"}}"#,
        b.local_addr()
    ));
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(v.get("state").and_then(Json::as_str), Some("active"));
    assert_eq!(v.get("members").and_then(Json::as_u64), Some(2));
    let rehomed = v
        .get("rehomed_fraction")
        .and_then(Json::as_f64)
        .expect("rehomed_fraction");
    // Growing a 1-shard ring to 2 may move at most the new shard's
    // slice (~1/2 of the keys, 1.5/2 with sampling slack) — and must
    // move some, or the new shard owns nothing.
    assert!(
        rehomed > 0.0 && rehomed <= 0.75,
        "rehomed_fraction {rehomed} out of (0, 0.75]"
    );

    // Requests keep landing; the ring now spans both shards.
    assert_eq!(status(&client.round_trip(DAXPY)), "ok");
    assert_eq!(status(&client.round_trip(DOT)), "ok");
    let members = client.round_trip(r#"{"op":"members"}"#);
    let listed = members
        .get("members")
        .and_then(Json::as_array)
        .expect("members array");
    assert_eq!(listed.len(), 2);
    assert!(listed
        .iter()
        .all(|m| m.get("state").and_then(Json::as_str) == Some("active")));

    // A duplicate add is a typed error, not a second ring entry.
    let dup = client.round_trip(&format!(
        r#"{{"op":"add-shard","addr":"{}"}}"#,
        b.local_addr()
    ));
    assert_eq!(status(&dup), "error");
    assert_eq!(dup.get("kind").and_then(Json::as_str), Some("exists"));

    router.begin_shutdown();
    router.join();
    for s in [a, b] {
        s.begin_shutdown();
        s.join();
    }
}

#[test]
fn drain_shard_without_stop_fences_it_but_leaves_it_running() {
    let a = small_server();
    let b = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string(), b.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());

    let v = client.round_trip(&format!(
        r#"{{"op":"drain-shard","id":"d1","addr":"{}","stop":false}}"#,
        a.local_addr()
    ));
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(
        v.get("drained").and_then(Json::as_str),
        Some(a.local_addr().to_string().as_str())
    );
    assert_eq!(v.get("stopped").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("inflight_at_removal").and_then(Json::as_u64), Some(0));
    assert_eq!(v.get("members").and_then(Json::as_u64), Some(1));

    // Every request still lands (all keys now route to b).
    assert_eq!(status(&client.round_trip(DAXPY)), "ok");
    assert_eq!(status(&client.round_trip(DOT)), "ok");

    // The drained daemon was fenced, not stopped: it still answers
    // directly.
    let mut direct = Client::connect(a.local_addr());
    let pong = direct.round_trip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    router.begin_shutdown();
    router.join();
    for s in [a, b] {
        s.begin_shutdown();
        s.join();
    }
}

#[test]
fn drain_shard_with_stop_shuts_the_daemon_down() {
    let a = small_server();
    let b = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string(), b.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());

    let v = client.round_trip(&format!(
        r#"{{"op":"drain-shard","addr":"{}"}}"#,
        a.local_addr()
    ));
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(v.get("stopped").and_then(Json::as_bool), Some(true));

    // The router's shutdown op drained the daemon; join must return.
    let started = Instant::now();
    a.join();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drained daemon never exited"
    );
    // And the survivor still serves through the router.
    assert_eq!(status(&client.round_trip(DAXPY)), "ok");

    router.begin_shutdown();
    router.join();
    b.begin_shutdown();
    b.join();
}

#[test]
fn draining_the_last_active_shard_is_refused() {
    let a = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());

    let v = client.round_trip(&format!(
        r#"{{"op":"drain-shard","addr":"{}"}}"#,
        a.local_addr()
    ));
    assert_eq!(status(&v), "error", "{v:?}");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("refused"));
    // The refusal left the ring intact.
    assert_eq!(status(&client.round_trip(DAXPY)), "ok");
    // Draining an address that was never a member is its own error.
    let v = client.round_trip(r#"{"op":"drain-shard","addr":"127.0.0.1:1"}"#);
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("unknown"));

    router.begin_shutdown();
    router.join();
    a.begin_shutdown();
    a.join();
}

#[test]
fn membership_ops_on_a_plain_daemon_get_a_typed_unsupported_error() {
    let server = small_server();
    let mut client = Client::connect(server.local_addr());
    for op in [
        r#"{"op":"add-shard","addr":"127.0.0.1:9"}"#,
        r#"{"op":"drain-shard","addr":"127.0.0.1:9"}"#,
        r#"{"op":"members"}"#,
    ] {
        let v = client.round_trip(op);
        assert_eq!(status(&v), "error", "{v:?}");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("unsupported"));
    }
    server.begin_shutdown();
    server.join();
}

#[test]
fn dropping_a_router_joins_its_threads_instead_of_leaking_them() {
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let router = Router::start(RouterConfig {
        shards: vec![dead],
        health: HealthConfig {
            interval: Duration::from_millis(10),
            connect_timeout: Duration::from_millis(50),
            ..HealthConfig::default()
        },
        ..RouterConfig::default()
    })
    .expect("start router");
    let addr = router.local_addr();

    // No begin_shutdown(), no join(): Drop must do the full handshake
    // itself — flag the prober and accept loop, then join both.
    let started = std::time::Instant::now();
    drop(router);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drop hung instead of draining the router threads"
    );
    // The accept thread owned the listener; it exiting closes the port.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener still accepting after drop — accept thread leaked"
    );
}
