//! Streaming end-to-end tests: chunked responses over real sockets,
//! byte-exact reassembly against the plain path, inbound/outbound
//! buffering caps, and mid-stream failure through the router. Every
//! server binds `127.0.0.1:0` so tests run in parallel without port
//! collisions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bsched_analyze::json::{self, Json};
use bsched_serve::{
    is_chunk_line, is_stream_end, reassemble_stream, split_stream, Router, RouterConfig, Server,
    ServerConfig,
};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server hung up instead of responding");
        line.trim_end().to_owned()
    }

    /// Reads one full stream off the wire: every chunk line up to and
    /// including the terminal summary line.
    fn recv_stream(&mut self) -> (Vec<String>, String) {
        let mut chunks = Vec::new();
        loop {
            let line = self.recv_line();
            if is_stream_end(&line) {
                return (chunks, line);
            }
            assert!(is_chunk_line(&line), "unexpected line mid-stream: {line}");
            chunks.push(line);
        }
    }
}

/// Blanks the wall-clock `service_us` field so two responses for the
/// same cached request compare byte-for-byte.
fn normalize(line: &str) -> String {
    const NEEDLE: &str = "\"service_us\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(NEEDLE) {
        let tail = &rest[at + NEEDLE.len()..];
        let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
        out.push_str(&rest[..at + NEEDLE.len()]);
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("start server")
}

const PLAIN: &str = r#"{"op":"schedule","id":"s1","benchmark":"mdg","system":"L80(2,5)","runs":2}"#;
const STREAMED: &str =
    r#"{"op":"schedule","id":"s1","benchmark":"mdg","system":"L80(2,5)","runs":2,"stream":true}"#;

#[test]
fn streamed_response_reassembles_bit_identical_to_the_plain_one() {
    let server = small_server();
    let mut client = Client::connect(server.local_addr());
    // First request computes and fills the cache; the second (plain)
    // is the cache-hit reference the streamed replay must match.
    client.send(PLAIN);
    let _ = client.recv_line();
    client.send(PLAIN);
    let plain = client.recv_line();
    client.send(STREAMED);
    let (chunks, terminal) = client.recv_stream();
    assert!(!chunks.is_empty(), "a multi-block response must chunk");
    for (i, chunk) in chunks.iter().enumerate() {
        assert!(chunk.contains(&format!("\"seq\":{i}")), "bad seq: {chunk}");
    }
    let reassembled = reassemble_stream(&chunks, &terminal).expect("reassemble");
    assert_eq!(
        normalize(&reassembled),
        normalize(&plain),
        "streamed bytes differ from the plain response"
    );
    server.begin_shutdown();
    server.join();
}

#[test]
fn stream_and_plain_interleave_on_one_pipelined_connection() {
    let server = small_server();
    let mut client = Client::connect(server.local_addr());
    client.send(STREAMED);
    client.send(
        &PLAIN
            .replace("\"id\":\"s1\"", "\"id\":\"pb\"")
            .replace("mdg", "adm"),
    );
    let mut chunks = Vec::new();
    let mut terminal = None;
    let mut plain = None;
    // Two workers may finish in either order; frame by line type. A
    // whole stream is written as one blob, so its lines never split
    // around the plain response.
    while terminal.is_none() || plain.is_none() {
        let line = client.recv_line();
        if is_chunk_line(&line) {
            chunks.push(line);
        } else if is_stream_end(&line) {
            terminal = Some(line);
        } else {
            plain = Some(line);
        }
    }
    let reassembled = reassemble_stream(&chunks, &terminal.expect("terminal")).expect("reassemble");
    let v = json::parse(&reassembled).expect("reassembled parses");
    assert_eq!(v.get("id").and_then(Json::as_str), Some("s1"));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    let p = json::parse(&plain.expect("plain response")).expect("plain parses");
    assert_eq!(p.get("id").and_then(Json::as_str), Some("pb"));
    assert_eq!(p.get("status").and_then(Json::as_str), Some("ok"));
    server.begin_shutdown();
    server.join();
}

#[test]
fn client_disconnect_mid_stream_leaves_the_server_healthy() {
    let server = small_server();
    {
        let mut doomed = Client::connect(server.local_addr());
        doomed.send(STREAMED);
        // Vanish without reading a byte of the stream.
    }
    std::thread::sleep(Duration::from_millis(150));
    let mut client = Client::connect(server.local_addr());
    client.send(PLAIN);
    let v = json::parse(&client.recv_line()).expect("parses");
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    server.begin_shutdown();
    server.join();
}

#[test]
fn oversized_request_line_gets_a_typed_too_large_error_then_close() {
    let server = Server::start(ServerConfig {
        max_line_bytes: 1024,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(server.local_addr());
    client.send(&"x".repeat(4096));
    let v = json::parse(&client.recv_line()).expect("parses");
    assert_eq!(
        v.get("status").and_then(Json::as_str),
        Some("error"),
        "{v:?}"
    );
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("too_large"));
    assert_eq!(v.get("limit_bytes").and_then(Json::as_u64), Some(1024));
    let mut line = String::new();
    assert_eq!(
        client.reader.read_line(&mut line).expect("read eof"),
        0,
        "expected EOF after too_large, got {line:?}"
    );
    let mut probe = Client::connect(server.local_addr());
    probe.send(r#"{"op":"stats"}"#);
    let stats = json::parse(&probe.recv_line()).expect("stats parse");
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("too_large"))
            .and_then(Json::as_u64),
        Some(1)
    );
    server.begin_shutdown();
    server.join();
}

/// Shrinks a socket's kernel receive buffer so the peer's writes hit
/// backpressure after a few KB instead of the autotuned megabytes.
#[cfg(target_os = "linux")]
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    let val: i32 = 4096;
    // SAFETY: the fd is a live socket owned by `stream`, and
    // SOL_SOCKET(1)/SO_RCVBUF(8) with a 4-byte int is the documented
    // calling convention on Linux.
    let rc = unsafe { setsockopt(stream.as_raw_fd(), 1, 8, std::ptr::addr_of!(val).cast(), 4) };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// A consumer that stops reading while pipelining requests must be
/// disconnected once its outbound backlog exceeds the configured cap —
/// the connection dies, the server's memory stays bounded.
#[cfg(target_os = "linux")]
#[test]
fn slow_consumer_is_disconnected_once_its_backlog_exceeds_the_cap() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 16384,
        cache_capacity: 32,
        write_cap_bytes: 32 * 1024,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = Client::connect(server.local_addr());
    shrink_rcvbuf(&client.writer);
    client.send(PLAIN);
    let warm = client.recv_line();

    // Enough cached responses to overwhelm the cap and every kernel
    // buffer in between (tcp_wmem caps the server side at ~4 MiB).
    let n = 12 * 1024 * 1024 / warm.len() + 64;
    let mut frame = Vec::new();
    for i in 0..n {
        frame.extend_from_slice(
            PLAIN
                .replace("\"id\":\"s1\"", &format!("\"id\":\"q{i}\""))
                .as_bytes(),
        );
        frame.push(b'\n');
    }
    // The server may cut the connection while the burst is still being
    // written; that is the expected outcome, not a test failure.
    let _ = client.writer.write_all(&frame);
    let _ = client.writer.flush();

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut probe = Client::connect(server.local_addr());
        probe.send(r#"{"op":"stats"}"#);
        let stats = json::parse(&probe.recv_line()).expect("stats parse");
        let dropped = stats
            .get("stats")
            .and_then(|s| s.get("slow_consumers"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if dropped >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never disconnected the slow consumer: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.begin_shutdown();
    server.join();
}

/// A fake shard that answers health pings but, for any schedule
/// request, emits exactly one stream chunk and then drops the
/// connection — a shard dying mid-stream.
fn fake_dying_shard() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() || line.is_empty() {
                continue;
            }
            if line.contains("\"op\":\"ping\"") {
                let _ = stream.write_all(b"{\"status\":\"ok\",\"pong\":true}\n");
                continue;
            }
            let _ = stream.write_all(
                b"{\"id\":\"za\",\"status\":\"chunk\",\"seq\":0,\"block\":{\"name\":\"b0\"}}\n",
            );
            let _ = stream.flush();
            // Drop: the router sees EOF with no terminal line.
        }
    });
    addr
}

#[test]
fn shard_death_mid_stream_becomes_a_typed_stream_aborted_terminator() {
    let router = Router::start(RouterConfig {
        shards: vec![fake_dying_shard()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());
    client.send(
        r#"{"op":"schedule","id":"za","benchmark":"mdg","system":"L80(2,5)","runs":2,"stream":true}"#,
    );
    let first = client.recv_line();
    assert!(is_chunk_line(&first), "expected the relayed chunk: {first}");
    let second = client.recv_line();
    assert!(
        is_stream_end(&second),
        "mid-stream death must still terminate the stream: {second}"
    );
    let v = json::parse(&second).expect("terminator parses");
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some("stream_aborted"),
        "{v:?}"
    );
    assert_eq!(v.get("id").and_then(Json::as_str), Some("za"));
    router.begin_shutdown();
    router.join();
}

#[test]
fn router_relays_streams_bit_identical_to_the_direct_path() {
    let a = small_server();
    let b = small_server();
    let router = Router::start(RouterConfig {
        shards: vec![a.local_addr().to_string(), b.local_addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("start router");
    let mut client = Client::connect(router.local_addr());
    client.send(PLAIN);
    let _ = client.recv_line();
    client.send(PLAIN);
    let plain = client.recv_line();
    client.send(STREAMED);
    let (chunks, terminal) = client.recv_stream();
    assert!(!chunks.is_empty());
    let reassembled = reassemble_stream(&chunks, &terminal).expect("reassemble");
    assert_eq!(normalize(&reassembled), normalize(&plain));
    router.begin_shutdown();
    router.join();
    for s in [a, b] {
        s.begin_shutdown();
        s.join();
    }
}

mod roundtrip_props {
    use super::*;
    use bsched_stats::Pcg32;
    use proptest::prelude::*;

    /// Random string over an adversarial alphabet: quotes, braces,
    /// backslashes, and whole framing markers — the bytes most likely
    /// to confuse a byte-oriented splitter.
    fn nasty_string(rng: &mut Pcg32, max_len: usize) -> String {
        const PIECES: [&str; 12] = [
            "a",
            "Z",
            " ",
            "\\",
            "\"",
            "{",
            "}",
            "[",
            "]",
            "\"status\":\"chunk\"",
            "\"stream_end\":true",
            "\"blocks\":[",
        ];
        let len = rng.next_index(max_len + 1);
        (0..len)
            .map(|_| PIECES[rng.next_index(PIECES.len())])
            .collect()
    }

    /// A structurally-faithful ok response: id envelope, blocks array,
    /// trailing metadata — the shape `split_stream` dissects.
    fn response_line(id: &str, blocks: &[(String, String)], cached: bool) -> String {
        let elems: Vec<String> = blocks
            .iter()
            .map(|(name, text)| {
                format!(
                    "{{\"name\":{},\"schedule\":{}}}",
                    json::string(name),
                    json::string(text)
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"status\":\"ok\",\"cached\":{cached},\
             \"schedule\":{{\"blocks\":[{}],\"spills\":0}},\"service_us\":7}}",
            json::string(id),
            elems.join(",")
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Splitting any well-formed response into chunks and
        /// reassembling them is the identity, no matter what bytes the
        /// block names and schedule texts contain — including quotes,
        /// braces, and strings that imitate the framing markers.
        #[test]
        fn split_then_reassemble_is_identity(
            seed in 0u64..1_000_000u64,
            block_count in 0usize..6usize,
        ) {
            let mut rng = Pcg32::seed_from_u64(seed);
            let id = nasty_string(&mut rng, 8);
            let cached = seed % 2 == 0;
            let blocks: Vec<(String, String)> = (0..block_count)
                .map(|_| (nasty_string(&mut rng, 6), nasty_string(&mut rng, 40)))
                .collect();
            let line = response_line(&id, &blocks, cached);
            let (chunks, terminal) =
                split_stream(Some(&id), &line).expect("responses with a blocks array split");
            prop_assert_eq!(chunks.len(), blocks.len());
            for chunk in &chunks {
                prop_assert!(is_chunk_line(chunk));
                prop_assert!(!is_stream_end(chunk));
            }
            prop_assert!(is_stream_end(&terminal));
            prop_assert_eq!(reassemble_stream(&chunks, &terminal), Some(line));
        }
    }
}
