//! Property tests for the cache persistence log: whatever byte the
//! file is cut at, recovery never panics, never resurrects a record
//! past the torn point, and reproduces exactly the longest clean
//! prefix (deduped last-wins). A reference model computed from the
//! record framing checks the recovered entries byte-for-byte.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use bsched_serve::persist::CacheLog;
use bsched_stats::Pcg32;
use proptest::prelude::*;

const HEADER: usize = 19; // b"bsched-cachelog-v1\n"

fn temp_log() -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bsched-persist-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join("cache.log")
}

/// Random append sequence: a handful of keys (so later appends
/// supersede earlier ones) with payloads of mixed length, including
/// empty and newline-bearing ones (the framing is length-prefixed, so
/// payload bytes are unconstrained).
fn random_ops(seed: u64, count: usize) -> Vec<(u128, String)> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let key = u128::from(rng.next_below(8));
            let len = rng.next_index(40);
            let payload: String = (0..len)
                .map(|_| {
                    // Printable ASCII plus an occasional newline.
                    let c = rng.next_below(95) + 32;
                    if c == 32 && rng.next_below(4) == 0 {
                        '\n'
                    } else {
                        char::from(u8::try_from(c).expect("ascii"))
                    }
                })
                .collect();
            (key, payload)
        })
        .collect()
}

/// On-disk framing: [u32 len][16-byte key][payload][u32 crc].
fn record_len(payload: &str) -> usize {
    4 + 16 + payload.len() + 4
}

/// The recovery the format promises for a file cut at byte `cut`:
/// every record that ends at or before the cut survives, deduped
/// last-wins with the survivor keeping its later position.
fn model(ops: &[(u128, String)], cut: usize) -> Vec<(u128, String)> {
    let mut surviving = 0;
    if cut >= HEADER {
        let mut end = HEADER;
        for (_, payload) in ops {
            let next = end + record_len(payload);
            if next > cut {
                break;
            }
            surviving += 1;
            end = next;
        }
    }
    let mut expected: Vec<(u128, String)> = Vec::new();
    for (key, payload) in &ops[..surviving] {
        expected.retain(|(k, _)| k != key);
        expected.push((*key, payload.clone()));
    }
    expected
}

fn recovered_pairs(rec: &bsched_serve::persist::Recovery) -> Vec<(u128, String)> {
    rec.entries
        .iter()
        .map(|(k, p)| (*k, p.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_at_any_offset_recovers_the_clean_prefix(
        seed in 0u64..1_000_000u64,
        count in 1usize..16usize,
        cut_frac in 0.0f64..1.0f64,
    ) {
        let ops = random_ops(seed, count);
        let path = temp_log();
        {
            let (mut log, rec) = CacheLog::open(&path, 64).expect("open fresh");
            prop_assert!(rec.entries.is_empty());
            for (key, payload) in &ops {
                log.append(*key, payload).expect("append");
            }
        }

        // Cut the file at an arbitrary byte — mid-header, mid-length,
        // mid-payload, mid-CRC, or exactly on a record boundary.
        let full = std::fs::read(&path).expect("read log");
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((full.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).expect("truncate");

        let (mut log, rec) = CacheLog::open(&path, 64).expect("recovery must not error");
        let expected = model(&ops, cut);
        prop_assert_eq!(
            recovered_pairs(&rec),
            expected.clone(),
            "cut at byte {} of {}",
            cut,
            full.len()
        );

        // The log must be writable again right where recovery left it:
        // a fresh append survives the next reopen, after the prefix.
        log.append(999, "fresh-after-recovery").expect("append after recovery");
        drop(log);
        let (_, rec) = CacheLog::open(&path, 64).expect("reopen after append");
        let mut expected = expected;
        expected.push((999, "fresh-after-recovery".to_owned()));
        prop_assert_eq!(recovered_pairs(&rec), expected);
    }

    #[test]
    fn random_flipped_bit_never_panics_or_invents_records(
        seed in 0u64..1_000_000u64,
        count in 1usize..12usize,
        flip_frac in 0.0f64..1.0f64,
        flip_bit in 0u8..8u8,
    ) {
        let ops = random_ops(seed, count);
        let path = temp_log();
        {
            let (mut log, _) = CacheLog::open(&path, 64).expect("open fresh");
            for (key, payload) in &ops {
                log.append(*key, payload).expect("append");
            }
        }
        let mut raw = std::fs::read(&path).expect("read log");
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = (((raw.len() - 1) as f64) * flip_frac) as usize;
        raw[idx] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).expect("write corrupted");

        // A single flipped bit anywhere must never panic, and every
        // recovered entry must be an exact (key, payload) pair that was
        // genuinely appended — the CRC guards the frame, so a mutated
        // record is dropped, never served back mangled.
        let (_, rec) = CacheLog::open(&path, 64).expect("recovery must not error");
        for (key, payload) in &rec.entries {
            prop_assert!(
                ops.iter().any(|(k, p)| k == key && p == payload.as_ref()),
                "recovered an entry that was never appended: key={key}"
            );
        }
    }
}
