//! Exact rational arithmetic for scheduling weights.
//!
//! Balanced scheduling accumulates weight contributions of the form
//! `IssueSlots(i) / Chances` (paper Fig. 6 line 7), producing exact
//! fractions — Table 1 reports weights like `2 5/12`. Accumulating in
//! floating point would make tie-breaking order-dependent; [`Ratio`] keeps
//! every weight exact, and schedules convert to integer latencies only at
//! the last moment (see [`crate::weights::Rounding`]).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An exact rational number with `i64` numerator and denominator.
///
/// Always stored in lowest terms with a positive denominator. Arithmetic
/// uses `i128` intermediates, so overflow is unreachable for scheduling
/// weights (which are sums of at most `n` unit fractions with `n`-bounded
/// denominators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: i64, den: i64) -> Self {
        assert_ne!(den, 0, "denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        let g = if g == 0 { 1 } else { g } as i64;
        Self {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n`.
    #[must_use]
    pub fn from_int(n: i64) -> Self {
        Self { num: n, den: 1 }
    }

    /// Numerator (lowest terms, sign-carrying).
    #[must_use]
    pub fn numer(self) -> i64 {
        self.num
    }

    /// Denominator (lowest terms, always positive).
    #[must_use]
    pub fn denom(self) -> i64 {
        self.den
    }

    /// Converts to `f64` (used only for reporting, never for weights).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Largest integer ≤ self.
    #[must_use]
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer ≥ self.
    #[must_use]
    pub fn ceil(self) -> i64 {
        -(-self.num).div_euclid(self.den)
    }

    /// Nearest integer; halves round up (so a weight of `2 1/2` schedules
    /// as 3 — optimism costs less than starvation under uncertainty).
    #[must_use]
    pub fn round(self) -> i64 {
        (2 * self.num + self.den).div_euclid(2 * self.den)
    }

    /// `true` for integral values.
    #[must_use]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    fn from_i128(num: i128, den: i128) -> Self {
        assert_ne!(den, 0, "denominator must be nonzero");
        let sign: i128 = if den < 0 { -1 } else { 1 };
        let g = gcd128(num.unsigned_abs(), den.unsigned_abs());
        let g = if g == 0 { 1 } else { g } as i128;
        let num = sign * num / g;
        let den = sign * den / g;
        Self {
            num: i64::try_from(num).expect("ratio numerator overflow"),
            den: i64::try_from(den).expect("ratio denominator overflow"),
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::from_int(n)
    }
}

impl Add for Ratio {
    type Output = Ratio;

    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            i128::from(self.num) * i128::from(rhs.den) + i128::from(rhs.num) * i128::from(self.den),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;

    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            i128::from(self.num) * i128::from(rhs.den) - i128::from(rhs.num) * i128::from(self.den),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            i128::from(self.num) * i128::from(rhs.num),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics when dividing by zero.
    fn div(self, rhs: Ratio) -> Ratio {
        Ratio::from_i128(
            i128::from(self.num) * i128::from(rhs.den),
            i128::from(self.den) * i128::from(rhs.num),
        )
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        (i128::from(self.num) * i128::from(other.den))
            .cmp(&(i128::from(other.num) * i128::from(self.den)))
    }
}

impl fmt::Display for Ratio {
    /// Formats as the paper's tables do: `10`, `1 1/4`, `2 5/12`, `-1/3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            return write!(f, "{}", self.num);
        }
        let whole = self.num / self.den;
        let frac = (self.num % self.den).abs();
        if whole != 0 {
            write!(f, "{whole} {frac}/{}", self.den)
        } else if self.num < 0 {
            write!(f, "-{frac}/{}", self.den)
        } else {
            write!(f, "{frac}/{}", self.den)
        }
    }
}

impl std::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

/// Error parsing a [`Ratio`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    input: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational number: {:?}", self.input)
    }
}

impl std::error::Error for ParseRatioError {}

impl std::str::FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses the formats experiments use: integers (`30`), decimals
    /// (`2.6`, `2.15`), fractions (`13/5`), and the mixed form
    /// [`Display`](Ratio#impl-Display-for-Ratio) emits (`2 3/5`).
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        let err = || ParseRatioError {
            input: s.to_owned(),
        };
        let s = s.trim();
        // Mixed form: "W N/D" (the fractional part must be a fraction).
        if let Some((whole, frac)) = s.split_once(' ') {
            if !frac.contains('/') {
                return Err(err());
            }
            let whole: i64 = whole.trim().parse().map_err(|_| err())?;
            let frac: Ratio = frac.trim().parse().map_err(|_| err())?;
            let sign = if whole < 0 { -1 } else { 1 };
            return Ok(Ratio::from_int(whole) + Ratio::from_int(sign) * frac);
        }
        // Fraction: "N/D".
        if let Some((num, den)) = s.split_once('/') {
            let num: i64 = num.trim().parse().map_err(|_| err())?;
            let den: i64 = den.trim().parse().map_err(|_| err())?;
            if den == 0 {
                return Err(err());
            }
            return Ok(Ratio::new(num, den));
        }
        // Decimal: "W.F".
        if let Some((whole, frac)) = s.split_once('.') {
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let negative = whole.trim_start().starts_with('-');
            let whole: i64 = if whole.is_empty() || whole == "-" {
                0
            } else {
                whole.parse().map_err(|_| err())?
            };
            let digits = frac.len() as u32;
            let den = 10i64.checked_pow(digits).ok_or_else(err)?;
            let num: i64 = frac.parse().map_err(|_| err())?;
            let frac_part = Ratio::new(num, den);
            let sign = if negative { -1 } else { 1 };
            return Ok(Ratio::from_int(whole) + Ratio::from_int(sign) * frac_part);
        }
        // Integer.
        s.parse::<i64>().map(Ratio::from_int).map_err(|_| err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Ratio::new(6, 8);
        assert_eq!((r.numer(), r.denom()), (3, 4));
        let n = Ratio::new(3, -6);
        assert_eq!((n.numer(), n.denom()), (-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn table1_weight_arithmetic() {
        // L4's weight from Table 1 cells: 1 + 1/4 + 1 + 1 + 4·(1/3).
        let w = Ratio::ONE
            + Ratio::new(1, 4)
            + Ratio::ONE
            + Ratio::ONE
            + Ratio::new(1, 3) * Ratio::from_int(4);
        assert_eq!(w, Ratio::new(55, 12));
        assert_eq!(w.to_string(), "4 7/12");
    }

    #[test]
    fn sum_of_unit_fractions() {
        let s: Ratio = (1..=4).map(|d| Ratio::new(1, d)).sum();
        assert_eq!(s, Ratio::new(25, 12));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert!(Ratio::from_int(3) > Ratio::new(35, 12));
    }

    #[test]
    fn floor_ceil_round() {
        let r = Ratio::new(7, 2); // 3.5
        assert_eq!(r.floor(), 3);
        assert_eq!(r.ceil(), 4);
        assert_eq!(r.round(), 4, "halves round up");
        let r = Ratio::new(10, 3); // 3.33
        assert_eq!(r.round(), 3);
        let r = Ratio::new(11, 3); // 3.67
        assert_eq!(r.round(), 4);
        let neg = Ratio::new(-7, 2); // -3.5
        assert_eq!(neg.floor(), -4);
        assert_eq!(neg.ceil(), -3);
        assert_eq!(neg.round(), -3, "-3.5 rounds up to -3");
        assert_eq!(Ratio::from_int(5).round(), 5);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Ratio::new(2, 3);
        let b = Ratio::new(5, 7);
        assert_eq!(a + b - b, a);
        assert_eq!(a * b / b, a);
        assert_eq!(a - a, Ratio::ZERO);
        assert_eq!(a * Ratio::ONE, a);
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn division_by_zero_panics() {
        let _ = Ratio::ONE / Ratio::ZERO;
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ratio::from_int(10).to_string(), "10");
        assert_eq!(Ratio::new(5, 4).to_string(), "1 1/4");
        assert_eq!(Ratio::new(1, 3).to_string(), "1/3");
        assert_eq!(Ratio::new(-1, 3).to_string(), "-1/3");
        assert_eq!(Ratio::new(-5, 4).to_string(), "-1 1/4");
    }

    #[test]
    fn paper_optimistic_latencies_are_exact() {
        // The traditional scheduler's effective latencies (Table 2 col 2).
        assert_eq!(Ratio::new(26, 10), Ratio::new(13, 5)); // 2.6
        assert_eq!(Ratio::new(215, 100).to_f64(), 2.15);
        assert_eq!(Ratio::new(76, 10).to_f64(), 7.6);
    }

    #[test]
    fn to_f64_matches() {
        assert_eq!(Ratio::new(1, 4).to_f64(), 0.25);
        assert!(Ratio::new(1, 3).to_f64() > 0.333);
    }

    #[test]
    fn is_integer() {
        assert!(Ratio::from_int(4).is_integer());
        assert!(!Ratio::new(4, 3).is_integer());
        assert!(Ratio::new(8, 4).is_integer());
    }

    #[test]
    fn parse_integer_and_fraction() {
        assert_eq!("30".parse::<Ratio>().unwrap(), Ratio::from_int(30));
        assert_eq!("-3".parse::<Ratio>().unwrap(), Ratio::from_int(-3));
        assert_eq!("13/5".parse::<Ratio>().unwrap(), Ratio::new(13, 5));
        assert_eq!("  7/2 ".parse::<Ratio>().unwrap(), Ratio::new(7, 2));
    }

    #[test]
    fn parse_decimals() {
        assert_eq!("2.6".parse::<Ratio>().unwrap(), Ratio::new(13, 5));
        assert_eq!("2.15".parse::<Ratio>().unwrap(), Ratio::new(43, 20));
        assert_eq!("7.6".parse::<Ratio>().unwrap(), Ratio::new(38, 5));
        assert_eq!("0.25".parse::<Ratio>().unwrap(), Ratio::new(1, 4));
        assert_eq!("-1.5".parse::<Ratio>().unwrap(), Ratio::new(-3, 2));
        assert_eq!(".5".parse::<Ratio>().unwrap(), Ratio::new(1, 2));
    }

    #[test]
    fn parse_mixed_roundtrips_display() {
        for r in [
            Ratio::new(5, 4),
            Ratio::new(37, 12),
            Ratio::from_int(10),
            Ratio::new(-5, 4),
        ] {
            let text = r.to_string();
            assert_eq!(text.parse::<Ratio>().unwrap(), r, "{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "abc", "1/0", "2.", "2.x", "1 2", "--3"] {
            assert!(bad.parse::<Ratio>().is_err(), "{bad:?} should fail");
        }
    }
}
