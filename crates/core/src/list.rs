//! The shared list scheduler (§4.1).
//!
//! Both the balanced and traditional schedulers in the paper use the same
//! list scheduler; they differ only in the weights fed to it. The paper's
//! configuration, all reproduced here:
//!
//! * instructions enter the ready list only once every already-scheduled
//!   neighbour has **exhausted its expected latency** (delayed ready
//!   insertion); when the ready list starves, **virtual no-ops** are
//!   emitted and later removed;
//! * priority = own weight + maximum priority among DAG successors;
//! * ties break by (1) largest `uses − defs` difference (register
//!   pressure), (2) most newly exposed instructions, (3) earliest
//!   generated;
//! * scheduling is **bottom-up** — from the leaves of the DAG toward the
//!   roots, emitting the schedule in reverse. A top-down mode is also
//!   provided: it reproduces the paper's §2 illustrations (Figure 2)
//!   exactly and serves as an ablation.

use bsched_dag::{CodeDag, DepKind};
use bsched_ir::{BasicBlock, InstId};

use crate::ratio::Ratio;
use crate::schedule::Schedule;
use crate::ties::{TieBreak, TieBreakChain, TiePrefer};
use crate::weights::{Rounding, WeightAssigner, Weights};

/// Scheduling direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// From the leaves toward the roots (the paper's production setup).
    #[default]
    BottomUp,
    /// From the roots toward the leaves (used by the paper's §2
    /// illustrations; kept for Figure 2/3 reproduction and ablation).
    TopDown,
}

/// The list scheduler.
///
/// # Example
///
/// ```
/// use bsched_core::{BalancedWeights, ListScheduler};
/// use bsched_dag::{build_dag, AliasModel};
/// use bsched_ir::BlockBuilder;
///
/// let mut b = BlockBuilder::new("ex");
/// let base = b.def_int("base");
/// let x = b.load("x", base, 0);
/// let y = b.load("y", base, 8);
/// let _ = b.fadd("s", x, y);
/// let block = b.finish();
/// let dag = build_dag(&block, AliasModel::Fortran);
/// let schedule = ListScheduler::new().run(&dag, &BalancedWeights::new());
/// assert!(schedule.verify(&dag).is_ok());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScheduler {
    direction: Direction,
    rounding: Rounding,
    ties: TieBreakChain,
}

impl ListScheduler {
    /// A bottom-up scheduler with nearest-integer weight rounding.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scheduling direction.
    #[must_use]
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets how fractional weights become integer latencies.
    #[must_use]
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// Sets the ready-list tie-break chain. The default chain is the
    /// paper's order and schedules bit-identically to the unparameterized
    /// implementation; generation order always remains the final
    /// fallback, so every chain selects deterministically.
    #[must_use]
    pub fn with_tie_breaks(mut self, ties: TieBreakChain) -> Self {
        self.ties = ties;
        self
    }

    /// Assigns weights with `assigner` and schedules `dag`.
    #[must_use]
    pub fn run(&self, dag: &CodeDag, assigner: &dyn WeightAssigner) -> Schedule {
        self.run_with_weights(dag, &assigner.assign(dag))
    }

    /// Schedules `dag` under precomputed `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not cover every DAG node.
    #[must_use]
    pub fn run_with_weights(&self, dag: &CodeDag, weights: &Weights) -> Schedule {
        assert_eq!(weights.len(), dag.len(), "weights must cover the dag");
        let n = dag.len();
        if n == 0 {
            return Schedule::new(Vec::new(), Vec::new(), 0);
        }

        let latency: Vec<u64> = dag
            .node_ids()
            .map(|i| u64::from(weights.latency(i, self.rounding)))
            .collect();
        let priority = compute_priorities(dag, weights);
        // Slack and load density are whole-DAG analyses; compute them
        // only when the configured chain actually consults them, so the
        // default (paper) chain does no extra work.
        let aux = TieAux::for_chain(dag, &self.ties);

        // Direction-neutral terminology: we schedule against the *ahead*
        // relation — successors for bottom-up (they sit later in the block
        // and are placed first), predecessors for top-down.
        let ahead = |i: InstId| -> &[(InstId, DepKind)] {
            match self.direction {
                Direction::BottomUp => dag.succs(i),
                Direction::TopDown => dag.preds(i),
            }
        };
        let behind = |i: InstId| -> &[(InstId, DepKind)] {
            match self.direction {
                Direction::BottomUp => dag.preds(i),
                Direction::TopDown => dag.succs(i),
            }
        };
        // Delay a scheduled node imposes on its `behind` neighbours: for a
        // true dependence the producer's latency must elapse between the
        // pair in forward time (whichever end was placed first); other
        // dependences only need ordering.
        let gap = |edge_kind: DepKind, producer: InstId| -> u64 {
            if edge_kind.carries_latency() {
                latency[producer.index()]
            } else {
                1
            }
        };

        let mut remaining: Vec<usize> = dag.node_ids().map(|i| ahead(i).len()).collect();
        let mut ready_time = vec![0u64; n];
        let mut pending: Vec<InstId> = dag
            .node_ids()
            .filter(|&i| remaining[i.index()] == 0)
            .collect();
        let mut scheduled_at = vec![u64::MAX; n];
        let mut emitted = 0usize;
        let mut slot: u64 = 0;
        let mut vnops: u32 = 0;

        while emitted < n {
            // Pick the best ready instruction at this slot.
            let choice = pending
                .iter()
                .copied()
                .filter(|&i| ready_time[i.index()] <= slot)
                .max_by(|&a, &b| self.compare(dag, &priority, &remaining, &aux, a, b));
            match choice {
                Some(best) => {
                    pending.retain(|&i| i != best);
                    scheduled_at[best.index()] = slot;
                    emitted += 1;
                    // Release `behind` neighbours.
                    for &(nb, kind) in behind(best) {
                        let producer = match self.direction {
                            Direction::BottomUp => nb,  // nb is the DAG predecessor
                            Direction::TopDown => best, // best is the DAG predecessor
                        };
                        let t = slot + gap(kind, producer);
                        if t > ready_time[nb.index()] {
                            ready_time[nb.index()] = t;
                        }
                        remaining[nb.index()] -= 1;
                        if remaining[nb.index()] == 0 {
                            pending.push(nb);
                        }
                    }
                }
                None => {
                    // Ready-list starvation: emit a virtual no-op.
                    vnops += 1;
                }
            }
            slot += 1;
        }

        // Convert to forward slots.
        let total = slot;
        let mut items: Vec<(u64, InstId)> = dag
            .node_ids()
            .map(|i| {
                let s = scheduled_at[i.index()];
                let fwd = match self.direction {
                    Direction::BottomUp => total - 1 - s,
                    Direction::TopDown => s,
                };
                (fwd, i)
            })
            .collect();
        items.sort_unstable();
        let order: Vec<InstId> = items.iter().map(|&(_, i)| i).collect();
        let slots: Vec<u32> = items
            .iter()
            .map(|&(s, _)| u32::try_from(s).expect("schedule length exceeds u32"))
            .collect();
        Schedule::new(order, slots, vnops)
    }

    /// Selection order: priority, then the configured tie-break chain
    /// (the paper's three-key order by default), then — always —
    /// earliest generated, so selection is total and deterministic.
    fn compare(
        &self,
        dag: &CodeDag,
        priority: &[Ratio],
        remaining: &[usize],
        aux: &TieAux,
        a: InstId,
        b: InstId,
    ) -> std::cmp::Ordering {
        let mut ord = priority[a.index()].cmp(&priority[b.index()]);
        for &(key, prefer) in self.ties.keys() {
            if ord != std::cmp::Ordering::Equal {
                break;
            }
            let ascending = match key {
                TieBreak::PressureDelta => dag.pressure_delta(a).cmp(&dag.pressure_delta(b)),
                TieBreak::ExposedCount => exposed_count(dag, remaining, a, self.direction)
                    .cmp(&exposed_count(dag, remaining, b, self.direction)),
                TieBreak::Slack => aux.slack[a.index()].cmp(&aux.slack[b.index()]),
                TieBreak::LoadDensity => aux.loads[a.index()].cmp(&aux.loads[b.index()]),
                TieBreak::SourceOrder => a.cmp(&b),
            };
            ord = match prefer {
                TiePrefer::High => ascending,
                TiePrefer::Low => ascending.reverse(),
            };
        }
        // Earliest generated, unconditionally, as the final fallback.
        ord.then_with(|| b.cmp(&a))
    }
}

/// Per-node key values for the tie-break chain, computed once per run
/// and only for the keys the chain names.
struct TieAux {
    slack: Vec<u32>,
    loads: Vec<u32>,
}

impl TieAux {
    fn for_chain(dag: &CodeDag, ties: &TieBreakChain) -> Self {
        Self {
            slack: if ties.uses(TieBreak::Slack) {
                bsched_dag::slack(dag)
            } else {
                Vec::new()
            },
            loads: if ties.uses(TieBreak::LoadDensity) {
                bsched_dag::load_levels(dag)
            } else {
                Vec::new()
            },
        }
    }
}

/// Priority = weight + max successor priority (§4.1), computed in exact
/// arithmetic over the DAG in reverse program order (ids increase along
/// every edge, so decreasing id is a reverse topological order).
#[must_use]
pub fn compute_priorities(dag: &CodeDag, weights: &Weights) -> Vec<Ratio> {
    let n = dag.len();
    let mut priority = vec![Ratio::ZERO; n];
    for v in (0..n).rev() {
        let id = InstId::from_usize(v);
        let succ_max = dag
            .succs(id)
            .iter()
            .map(|&(s, _)| priority[s.index()])
            .max()
            .unwrap_or(Ratio::ZERO);
        priority[v] = weights.weight(id) + succ_max;
    }
    priority
}

/// How many neighbours of `i` would become schedulable if `i` were picked
/// now: those with exactly one unscheduled `ahead` dependence (which must
/// be `i` itself, since `i` is ready).
fn exposed_count(dag: &CodeDag, remaining: &[usize], i: InstId, direction: Direction) -> usize {
    let behind: &[(InstId, DepKind)] = match direction {
        Direction::BottomUp => dag.preds(i),
        Direction::TopDown => dag.succs(i),
    };
    behind
        .iter()
        .filter(|&&(nb, _)| remaining[nb.index()] == 1)
        .count()
}

/// Convenience: build the DAG-aware pressure tie-break on a block, used by
/// the pipeline layer. Returns `uses − defs` for the instruction.
#[must_use]
pub fn block_pressure_delta(block: &BasicBlock, id: InstId) -> i64 {
    block.inst(id).pressure_delta()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::BalancedWeights;
    use crate::traditional::TraditionalWeights;
    use bsched_dag::{build_dag, AliasModel};
    use bsched_ir::{BasicBlock, BlockBuilder, Inst, MemAccess, MemLoc, Opcode, RegionId};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    /// The Figure 1 DAG laid out in the paper's generation order:
    /// 0:L0 1:L1 2:X0 3:X1 4:X2 5:X3 6:X4, edges L0→L1→X4.
    fn figure1_dag() -> CodeDag {
        let mk_load = |name: &str| {
            Inst::new(
                Opcode::Ldc1,
                vec![],
                vec![],
                Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
            )
            .with_name(name)
        };
        let mk_x = |name: &str| Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name);
        let block = BasicBlock::new(
            "fig1",
            vec![
                mk_load("L0"),
                mk_load("L1"),
                mk_x("X0"),
                mk_x("X1"),
                mk_x("X2"),
                mk_x("X3"),
                mk_x("X4"),
            ],
        );
        let mut dag = CodeDag::new(&block);
        dag.add_edge(id(0), id(1), DepKind::True);
        dag.add_edge(id(1), id(6), DepKind::True);
        dag
    }

    fn names(dag: &CodeDag, schedule: &Schedule) -> Vec<String> {
        schedule
            .order()
            .iter()
            .map(|&i| dag.name(i).to_string())
            .collect()
    }

    #[test]
    fn figure2a_greedy_traditional_w5_top_down() {
        let dag = figure1_dag();
        let sched = ListScheduler::new()
            .with_direction(Direction::TopDown)
            .run(&dag, &TraditionalWeights::new(Ratio::from_int(5)));
        assert_eq!(
            names(&dag, &sched),
            ["L0", "X0", "X1", "X2", "X3", "L1", "X4"]
        );
        assert!(sched.verify(&dag).is_ok());
        // X4 had to wait for L1's 5-cycle latency: 4 virtual no-ops.
        assert_eq!(sched.vnop_count(), 4);
    }

    #[test]
    fn figure2b_lazy_traditional_w1_top_down() {
        let dag = figure1_dag();
        let sched = ListScheduler::new()
            .with_direction(Direction::TopDown)
            .run(&dag, &TraditionalWeights::new(Ratio::ONE));
        assert_eq!(
            names(&dag, &sched),
            ["L0", "L1", "X0", "X1", "X2", "X3", "X4"]
        );
        assert_eq!(sched.vnop_count(), 0);
    }

    #[test]
    fn figure2c_balanced_top_down() {
        let dag = figure1_dag();
        let sched = ListScheduler::new()
            .with_direction(Direction::TopDown)
            .run(&dag, &BalancedWeights::new());
        assert_eq!(
            names(&dag, &sched),
            ["L0", "X0", "X1", "L1", "X2", "X3", "X4"]
        );
        assert_eq!(
            sched.vnop_count(),
            0,
            "weight 3 exactly fits the parallelism"
        );
    }

    #[test]
    fn bottom_up_balanced_has_figure2c_shape() {
        // Bottom-up emits a schedule with the same structure: each load
        // followed by two independent instructions before its use.
        let dag = figure1_dag();
        let sched = ListScheduler::new().run(&dag, &BalancedWeights::new());
        let order = names(&dag, &sched);
        assert!(sched.verify(&dag).is_ok());
        assert_eq!(sched.vnop_count(), 0);
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert_eq!(pos("L0"), 0, "L0 first");
        assert_eq!(pos("L1") - pos("L0"), 3, "two pads after L0");
        assert_eq!(pos("X4") - pos("L1"), 3, "two pads after L1");
    }

    #[test]
    fn empty_dag_schedules_empty() {
        let block = BasicBlock::new("e", vec![]);
        let dag = CodeDag::new(&block);
        let sched = ListScheduler::new().run(&dag, &BalancedWeights::new());
        assert!(sched.is_empty());
        assert_eq!(sched.slot_count(), 0);
    }

    #[test]
    fn single_instruction() {
        let mut b = BlockBuilder::new("one");
        let _ = b.def_int("x");
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let sched = ListScheduler::new().run(&dag, &BalancedWeights::new());
        assert_eq!(sched.order(), &[id(0)]);
        assert_eq!(sched.slot_count(), 1);
    }

    #[test]
    fn both_directions_verify_on_random_blocks() {
        for seed in 0..10u32 {
            let mut b = BlockBuilder::new("r");
            let region = b.fresh_region();
            let base = b.def_int("base");
            let mut vals = Vec::new();
            for k in 0..12 {
                let v = b.load_region("l", region, base, Some(8 * (k + i64::from(seed))));
                vals.push(v);
            }
            let mut acc = vals[0];
            for (k, &v) in vals.iter().enumerate().skip(1) {
                if (k as u32 + seed).is_multiple_of(3) {
                    acc = b.fadd("a", acc, v);
                } else {
                    let _ = b.fmul("m", v, v);
                }
            }
            b.store_region(region, acc, base, Some(1000));
            let dag = build_dag(&b.finish(), AliasModel::Fortran);
            for direction in [Direction::BottomUp, Direction::TopDown] {
                for assigner in [
                    &BalancedWeights::new() as &dyn WeightAssigner,
                    &TraditionalWeights::new(Ratio::from_int(2)),
                ] {
                    let sched = ListScheduler::new()
                        .with_direction(direction)
                        .run(&dag, assigner);
                    assert!(sched.verify(&dag).is_ok(), "seed {seed} {direction:?}");
                }
            }
        }
    }

    #[test]
    fn priorities_are_longest_weighted_paths() {
        let dag = figure1_dag();
        let w = TraditionalWeights::new(Ratio::from_int(5)).assign(&dag);
        let p = compute_priorities(&dag, &w);
        assert_eq!(p[6], Ratio::ONE, "X4 leaf");
        assert_eq!(p[1], Ratio::from_int(6), "L1 = 5 + 1");
        assert_eq!(p[0], Ratio::from_int(11), "L0 = 5 + 6");
        assert_eq!(p[2], Ratio::ONE, "X0 isolated");
    }

    #[test]
    fn rounding_mode_changes_latencies() {
        // A weight of 2.5 schedules as 3 (nearest) vs 2 (floor): the gap
        // between a load and its consumer shrinks under floor.
        let dag = figure1_dag();
        let w = TraditionalWeights::new(Ratio::new(5, 2));
        let near = ListScheduler::new()
            .with_direction(Direction::TopDown)
            .run(&dag, &w);
        let floor = ListScheduler::new()
            .with_direction(Direction::TopDown)
            .with_rounding(Rounding::Floor)
            .run(&dag, &w);
        let gap = |s: &Schedule| {
            let p0 = s.position(id(0)).unwrap();
            let p1 = s.position(id(1)).unwrap();
            s.slots()[p1] - s.slots()[p0]
        };
        assert_eq!(gap(&near), 3);
        assert_eq!(gap(&floor), 2);
    }

    #[test]
    fn anti_edges_do_not_impose_latency() {
        // 0 -anti-> 1: they may be adjacent even with huge weights.
        let mk = |name: &str| Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name);
        let block = BasicBlock::new("t", vec![mk("a"), mk("b")]);
        let mut dag = CodeDag::new(&block);
        dag.add_edge(id(0), id(1), DepKind::Anti);
        let sched = ListScheduler::new().run(&dag, &TraditionalWeights::new(Ratio::from_int(30)));
        assert_eq!(sched.vnop_count(), 0);
        assert_eq!(sched.slot_count(), 2);
        assert_eq!(sched.order(), &[id(0), id(1)]);
    }

    #[test]
    fn explicit_default_chain_is_bit_identical_to_implicit() {
        use crate::ties::TieBreakChain;
        for seed in 0..6u32 {
            let mut b = BlockBuilder::new("chain-parity");
            let region = b.fresh_region();
            let base = b.def_int("base");
            let mut vals = Vec::new();
            for k in 0..10 {
                vals.push(b.load_region("l", region, base, Some(8 * (k + i64::from(seed)))));
            }
            let mut acc = vals[0];
            for &v in &vals[1..] {
                acc = b.fadd("a", acc, v);
            }
            b.store_region(region, acc, base, Some(900));
            let dag = build_dag(&b.finish(), AliasModel::Fortran);
            for direction in [Direction::BottomUp, Direction::TopDown] {
                let implicit = ListScheduler::new()
                    .with_direction(direction)
                    .run(&dag, &BalancedWeights::new());
                let explicit = ListScheduler::new()
                    .with_direction(direction)
                    .with_tie_breaks(TieBreakChain::default())
                    .run(&dag, &BalancedWeights::new());
                assert_eq!(implicit.order(), explicit.order(), "seed {seed}");
                assert_eq!(implicit.slots(), explicit.slots(), "seed {seed}");
            }
        }
    }

    #[test]
    fn every_tie_break_chain_schedules_validly() {
        use crate::ties::TieBreakChain;
        let mut b = BlockBuilder::new("chains");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let mut vals = Vec::new();
        for k in 0..8 {
            vals.push(b.load_region("l", region, base, Some(8 * k)));
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.fadd("a", acc, v);
        }
        b.store_region(region, acc, base, Some(640));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        for spec in [
            "",
            "slack-",
            "slack+,pressure+",
            "density+,exposed+",
            "source-",
            "pressure+,exposed+,slack-,density+,source-",
        ] {
            let chain = TieBreakChain::parse(spec).expect(spec);
            let sched = ListScheduler::new()
                .with_tie_breaks(chain)
                .run(&dag, &BalancedWeights::new());
            assert!(sched.verify(&dag).is_ok(), "chain {spec:?}");
            // Determinism: the same chain picks the same schedule again.
            let again = ListScheduler::new()
                .with_tie_breaks(chain)
                .run(&dag, &BalancedWeights::new());
            assert_eq!(sched.order(), again.order(), "chain {spec:?}");
        }
    }

    #[test]
    fn schedule_covers_all_even_under_starvation() {
        // Long chain with large weights: lots of vnops, still complete.
        let mut b = BlockBuilder::new("chain");
        let base = b.def_int("base");
        let mut cur = b.load("l0", base, 0);
        for _ in 0..5 {
            cur = b.fadd("a", cur, cur);
        }
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let sched = ListScheduler::new().run(&dag, &TraditionalWeights::new(Ratio::from_int(10)));
        assert!(sched.verify(&dag).is_ok());
        assert!(sched.vnop_count() >= 9, "load latency forces starvation");
    }
}
