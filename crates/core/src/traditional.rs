//! Baseline weight assigners: the traditional fixed-latency scheduler and
//! the §3 "average parallelism" alternative.

use bsched_dag::CodeDag;
use bsched_ir::OpLatencies;

use crate::balanced::BalancedWeights;
use crate::ratio::Ratio;
use crate::weights::{WeightAssigner, Weights};

/// The traditional list scheduler's weights: one implementation-defined
/// optimistic latency for **every** load (§2), nominal latency 1 for
/// everything else.
///
/// The paper runs this baseline at the cache-hit time (2), the effective
/// access time of each memory system (2.15, 2.4, 2.6, 3.6, 7.6, …) and
/// the network means (2, 3, 5, 30) — see Table 2's "Optimistic Latency"
/// column. Fractional latencies are represented exactly.
///
/// # Example
///
/// ```
/// use bsched_core::{Ratio, TraditionalWeights, WeightAssigner};
/// use bsched_dag::{build_dag, AliasModel};
/// use bsched_ir::{BlockBuilder, InstId};
///
/// let mut b = BlockBuilder::new("t");
/// let base = b.def_int("base");
/// let x = b.load("x", base, 0);
/// let _ = b.fadd("y", x, x);
/// let dag = build_dag(&b.finish(), AliasModel::Fortran);
/// let w = TraditionalWeights::new(Ratio::from_int(5)).assign(&dag);
/// assert_eq!(w.weight(InstId::new(1)), Ratio::from_int(5)); // the load
/// assert_eq!(w.weight(InstId::new(2)), Ratio::ONE);         // the add
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraditionalWeights {
    load_latency: Ratio,
    op_latencies: OpLatencies,
}

impl TraditionalWeights {
    /// Traditional weights with the given optimistic load latency.
    ///
    /// # Panics
    ///
    /// Panics if the latency is not positive.
    #[must_use]
    pub fn new(load_latency: Ratio) -> Self {
        assert!(load_latency > Ratio::ZERO, "load latency must be positive");
        Self {
            load_latency,
            op_latencies: OpLatencies::unit(),
        }
    }

    /// Uses fixed multi-cycle latencies for non-load opcodes (the §6
    /// asynchronous-FP-unit extension); loads keep the optimistic value.
    #[must_use]
    pub fn with_op_latencies(mut self, op_latencies: OpLatencies) -> Self {
        self.op_latencies = op_latencies;
        self
    }

    /// The configured optimistic latency.
    #[must_use]
    pub fn load_latency(&self) -> Ratio {
        self.load_latency
    }
}

impl WeightAssigner for TraditionalWeights {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn assign(&self, dag: &CodeDag) -> Weights {
        let mut w = Weights::unit(dag.len());
        for id in dag.node_ids() {
            *w.weight_mut(id) = if dag.is_load(id) {
                self.load_latency
            } else {
                Ratio::from_int(i64::from(self.op_latencies.latency(dag.opcode(id))))
            };
        }
        w
    }
}

/// The alternative §3 explicitly rejects: every load in the block gets the
/// block's **average** load-level parallelism as its weight.
///
/// "since load level parallelism typically varies within a basic block,
/// this method does not consider those imbalances … this alternative
/// produced schedules that executed no faster than schedules from the
/// traditional scheduler." Included so the ablation bench can retest that
/// claim.
#[derive(Debug, Clone, Default)]
pub struct AverageParallelismWeights {
    inner: BalancedWeights,
}

impl AverageParallelismWeights {
    /// Creates the averaging assigner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl WeightAssigner for AverageParallelismWeights {
    fn name(&self) -> &'static str {
        "average"
    }

    fn assign(&self, dag: &CodeDag) -> Weights {
        let per_load = self.inner.assign(dag);
        let loads = dag.load_ids();
        if loads.is_empty() {
            return per_load;
        }
        let total: Ratio = loads.iter().map(|&l| per_load.weight(l)).sum();
        let avg = total / Ratio::from_int(loads.len() as i64);
        let mut w = Weights::unit(dag.len());
        for l in loads {
            *w.weight_mut(l) = avg;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::DepKind;
    use bsched_ir::{BasicBlock, Inst, InstId, MemAccess, MemLoc, Opcode, RegionId};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    fn dag_of(loads: &[bool], edges: &[(u32, u32)]) -> CodeDag {
        let insts = loads
            .iter()
            .map(|&is_load| {
                if is_load {
                    Inst::new(
                        Opcode::Ldc1,
                        vec![],
                        vec![],
                        Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
                    )
                } else {
                    Inst::new(Opcode::FMove, vec![], vec![], None)
                }
            })
            .collect();
        let block = BasicBlock::new("t", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    #[test]
    fn traditional_is_uniform_on_loads() {
        let dag = dag_of(&[true, false, true], &[(0, 1)]);
        let w = TraditionalWeights::new(Ratio::new(13, 5)).assign(&dag); // 2.6
        assert_eq!(w.weight(id(0)), Ratio::new(13, 5));
        assert_eq!(w.weight(id(2)), Ratio::new(13, 5));
        assert_eq!(w.weight(id(1)), Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "load latency must be positive")]
    fn nonpositive_latency_panics() {
        let _ = TraditionalWeights::new(Ratio::ZERO);
    }

    #[test]
    fn average_smooths_imbalance() {
        // L0 isolated (high parallelism), L1→L2 chain feeding nothing:
        // balanced would give them different weights; average gives all
        // loads the same weight.
        let dag = dag_of(&[true, true, true, false, false], &[(1, 2)]);
        let avg = AverageParallelismWeights::new().assign(&dag);
        let w0 = avg.weight(id(0));
        assert_eq!(avg.weight(id(1)), w0);
        assert_eq!(avg.weight(id(2)), w0);
        assert_eq!(avg.weight(id(3)), Ratio::ONE, "non-load untouched");

        let balanced = BalancedWeights::new().assign(&dag);
        assert_ne!(
            balanced.weight(id(0)),
            balanced.weight(id(1)),
            "balanced differentiates"
        );
        // The average preserves total load weight.
        let bal_total: Ratio = [0, 1, 2].iter().map(|&i| balanced.weight(id(i))).sum();
        let avg_total: Ratio = [0, 1, 2].iter().map(|&i| avg.weight(id(i))).sum();
        assert_eq!(bal_total, avg_total);
    }

    #[test]
    fn average_on_loadless_dag_is_unit() {
        let dag = dag_of(&[false, false], &[(0, 1)]);
        let w = AverageParallelismWeights::new().assign(&dag);
        assert_eq!(w.weight(id(0)), Ratio::ONE);
        assert_eq!(w.weight(id(1)), Ratio::ONE);
    }

    #[test]
    fn names() {
        assert_eq!(TraditionalWeights::new(Ratio::ONE).name(), "traditional");
        assert_eq!(AverageParallelismWeights::new().name(), "average");
    }
}
