//! Balanced scheduling — the paper's primary contribution.
//!
//! This crate implements the instruction scheduling algorithm of
//! *"Balanced Scheduling: Instruction Scheduling When Memory Latency is
//! Uncertain"* (Kerns & Eggers, PLDI 1993) together with the traditional
//! baseline it is evaluated against:
//!
//! * [`BalancedWeights`] — per-load weights derived from **load-level
//!   parallelism** (Fig. 6): each instruction donates its issue slot to
//!   the loads it can execute in parallel with; serial loads in one
//!   connected component split the donation by `Chances`, the maximum
//!   number of loads on any path.
//! * [`TraditionalWeights`] — one implementation-defined optimistic
//!   latency for every load.
//! * [`AverageParallelismWeights`] — the §3 alternative the paper
//!   dismisses (block-average parallelism), kept for ablation.
//! * [`ListScheduler`] — the shared list scheduler (§4.1): bottom-up,
//!   delayed ready insertion with virtual no-ops, priority = weight +
//!   max successor priority, the paper's three tie-break heuristics. A
//!   top-down mode reproduces the §2 illustrations exactly.
//! * [`Ratio`] — exact rational weights (Table 1 reports `2 5/12`-style
//!   fractions; floating point would make tie-breaks order-dependent).
//!
//! # Quick start
//!
//! ```
//! use bsched_core::{BalancedWeights, ListScheduler, TraditionalWeights, Ratio, WeightAssigner};
//! use bsched_dag::{build_dag, AliasModel};
//! use bsched_ir::BlockBuilder;
//!
//! // A block with two independent loads and some arithmetic.
//! let mut b = BlockBuilder::new("kernel");
//! let region = b.fresh_region();
//! let base = b.def_int("base");
//! let x = b.load_region("x", region, base, Some(0));
//! let y = b.load_region("y", region, base, Some(8));
//! let s = b.fadd("s", x, y);
//! b.store_region(region, s, base, Some(16));
//! let block = b.finish();
//!
//! let dag = build_dag(&block, AliasModel::Fortran);
//! let balanced = ListScheduler::new().run(&dag, &BalancedWeights::new());
//! let traditional = ListScheduler::new().run(&dag, &TraditionalWeights::new(Ratio::from_int(2)));
//! assert!(balanced.verify(&dag).is_ok());
//! assert!(traditional.verify(&dag).is_ok());
//! ```

#![warn(missing_docs)]

pub mod balanced;
pub mod blend;
pub mod list;
pub mod ratio;
pub mod schedule;
pub mod ties;
pub mod traditional;
pub mod weights;

pub use balanced::BalancedWeights;
pub use blend::BlendedWeights;
pub use list::{compute_priorities, Direction, ListScheduler};
pub use ratio::{ParseRatioError, Ratio};
pub use schedule::{Schedule, ScheduleError};
pub use ties::{TieBreak, TieBreakChain, TieChainError, TiePrefer, MAX_TIE_KEYS};
pub use traditional::{AverageParallelismWeights, TraditionalWeights};
pub use weights::{Rounding, WeightAssigner, Weights};
