//! Scheduling weights and the weight-assignment interface.
//!
//! A list scheduler is parameterised by the weight it gives each node of
//! the code DAG (§2). Non-load instructions always weigh their nominal
//! single-cycle latency; what distinguishes the *traditional* scheduler
//! from the *balanced* scheduler is solely how **load** weights are
//! chosen. That choice is abstracted as [`WeightAssigner`]; the list
//! scheduler in [`crate::list`] works with any implementation.

use bsched_dag::CodeDag;
use bsched_ir::InstId;

use crate::ratio::Ratio;

/// How a fractional weight becomes an integer latency for the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest, halves up (default — matches the intuition that
    /// under-scheduling a load risks interlocks while over-scheduling only
    /// risks register pressure).
    #[default]
    Nearest,
    /// Always round down.
    Floor,
    /// Always round up.
    Ceil,
}

impl Rounding {
    /// Applies the rounding mode, clamping at a minimum latency of 1
    /// (every instruction occupies its issue slot).
    #[must_use]
    pub fn apply(self, w: Ratio) -> u32 {
        let v = match self {
            Rounding::Nearest => w.round(),
            Rounding::Floor => w.floor(),
            Rounding::Ceil => w.ceil(),
        };
        u32::try_from(v.max(1)).expect("weight exceeds u32")
    }
}

/// Exact per-instruction scheduling weights for one code DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Weights {
    weights: Vec<Ratio>,
}

impl Weights {
    /// Wraps a weight vector; one entry per DAG node.
    #[must_use]
    pub fn new(weights: Vec<Ratio>) -> Self {
        Self { weights }
    }

    /// Uniform weights of 1 for `n` nodes.
    #[must_use]
    pub fn unit(n: usize) -> Self {
        Self {
            weights: vec![Ratio::ONE; n],
        }
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The exact weight of instruction `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn weight(&self, id: InstId) -> Ratio {
        self.weights[id.index()]
    }

    /// Mutable access for accumulation.
    pub fn weight_mut(&mut self, id: InstId) -> &mut Ratio {
        &mut self.weights[id.index()]
    }

    /// The integer latency of `id` under `rounding`.
    #[must_use]
    pub fn latency(&self, id: InstId, rounding: Rounding) -> u32 {
        rounding.apply(self.weights[id.index()])
    }

    /// All weights as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Ratio] {
        &self.weights
    }
}

/// Strategy for computing scheduling weights from a code DAG.
///
/// Implementations in this crate:
///
/// * [`crate::balanced::BalancedWeights`] — the paper's contribution;
/// * [`crate::traditional::TraditionalWeights`] — fixed optimistic latency;
/// * [`crate::traditional::AverageParallelismWeights`] — the §3 rejected
///   alternative (per-block average load-level parallelism).
pub trait WeightAssigner {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Computes a weight for every instruction of `dag`.
    ///
    /// Non-load instructions must receive their nominal latency (1);
    /// only load weights may vary between strategies.
    fn assign(&self, dag: &CodeDag) -> Weights;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_modes() {
        let half = Ratio::new(5, 2);
        assert_eq!(Rounding::Nearest.apply(half), 3);
        assert_eq!(Rounding::Floor.apply(half), 2);
        assert_eq!(Rounding::Ceil.apply(half), 3);
        let third = Ratio::new(7, 3);
        assert_eq!(Rounding::Nearest.apply(third), 2);
        assert_eq!(Rounding::Ceil.apply(third), 3);
    }

    #[test]
    fn rounding_clamps_to_one() {
        assert_eq!(Rounding::Floor.apply(Ratio::new(1, 3)), 1);
        assert_eq!(Rounding::Nearest.apply(Ratio::ZERO), 1);
    }

    #[test]
    fn weights_accessors() {
        let mut w = Weights::unit(3);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        *w.weight_mut(InstId::new(1)) += Ratio::new(1, 2);
        assert_eq!(w.weight(InstId::new(1)), Ratio::new(3, 2));
        assert_eq!(w.latency(InstId::new(1), Rounding::Nearest), 2);
        assert_eq!(w.latency(InstId::new(0), Rounding::Nearest), 1);
        assert_eq!(w.as_slice().len(), 3);
    }
}
