//! Schedules: the output of list scheduling.

use std::fmt;

use bsched_dag::CodeDag;
use bsched_ir::{BasicBlock, InstId};

/// A completed schedule of one basic block.
///
/// Stores the new instruction order plus the issue slot the scheduler
/// assumed for each instruction. Slots may have gaps: those are the
/// *virtual no-ops* the scheduler inserted when the ready list starved
/// (§4.1); they are removed before code generation, so [`Schedule::apply`]
/// emits only real instructions — on the hardware-interlock machines the
/// paper models, the interlock hardware recreates any needed stalls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<InstId>,
    slots: Vec<u32>,
    vnops: u32,
}

impl Schedule {
    /// Creates a schedule from parallel `order`/`slots` vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or slots are not strictly
    /// increasing.
    #[must_use]
    pub fn new(order: Vec<InstId>, slots: Vec<u32>, vnops: u32) -> Self {
        assert_eq!(order.len(), slots.len(), "one slot per instruction");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "slots must strictly increase"
        );
        Self {
            order,
            slots,
            vnops,
        }
    }

    /// The instructions in their scheduled (forward) order.
    #[must_use]
    pub fn order(&self) -> &[InstId] {
        &self.order
    }

    /// The issue slot the scheduler assumed for each ordered instruction.
    #[must_use]
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for an empty schedule.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Virtual no-ops the scheduler inserted (ready-list starvation).
    #[must_use]
    pub fn vnop_count(&self) -> u32 {
        self.vnops
    }

    /// Total schedule length in issue slots, including virtual no-ops.
    #[must_use]
    pub fn slot_count(&self) -> u32 {
        self.slots.last().map_or(0, |s| s + 1)
    }

    /// Position of instruction `id` in the scheduled order.
    #[must_use]
    pub fn position(&self, id: InstId) -> Option<usize> {
        self.order.iter().position(|&x| x == id)
    }

    /// Materialises the schedule: returns `block` with its instructions
    /// permuted into scheduled order (virtual no-ops dropped).
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover exactly `block`'s
    /// instructions.
    #[must_use]
    pub fn apply(&self, block: &BasicBlock) -> BasicBlock {
        block.reordered(&self.order)
    }

    /// Checks that this schedule is a valid topological order of `dag`:
    /// a permutation of its nodes in which every dependence points
    /// forward.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn verify(&self, dag: &CodeDag) -> Result<(), ScheduleError> {
        if self.order.len() != dag.len() {
            return Err(ScheduleError::WrongLength {
                expected: dag.len(),
                got: self.order.len(),
            });
        }
        let mut pos = vec![usize::MAX; dag.len()];
        for (p, id) in self.order.iter().enumerate() {
            if id.index() >= dag.len() || pos[id.index()] != usize::MAX {
                return Err(ScheduleError::NotAPermutation { id: *id });
            }
            pos[id.index()] = p;
        }
        for e in dag.edges() {
            if pos[e.from.index()] >= pos[e.to.index()] {
                return Err(ScheduleError::DependenceViolated {
                    from: e.from,
                    to: e.to,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut next = 0;
        for (&id, &slot) in self.order.iter().zip(&self.slots) {
            while next < slot {
                writeln!(f, "{next:>4}: <vnop>")?;
                next += 1;
            }
            writeln!(f, "{slot:>4}: {id}")?;
            next = slot + 1;
        }
        Ok(())
    }
}

/// Reasons a schedule fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule does not contain one entry per DAG node.
    WrongLength {
        /// Node count of the DAG.
        expected: usize,
        /// Entry count of the schedule.
        got: usize,
    },
    /// An instruction is missing, duplicated or out of range.
    NotAPermutation {
        /// The offending id.
        id: InstId,
    },
    /// A dependence edge points backward in the schedule.
    DependenceViolated {
        /// The predecessor that was scheduled too late.
        from: InstId,
        /// The successor that was scheduled too early.
        to: InstId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { expected, got } => {
                write!(f, "schedule covers {got} instructions, dag has {expected}")
            }
            ScheduleError::NotAPermutation { id } => {
                write!(f, "instruction {id} is missing, duplicated or out of range")
            }
            ScheduleError::DependenceViolated { from, to } => {
                write!(f, "dependence {from} -> {to} violated")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::{build_dag, AliasModel};
    use bsched_ir::BlockBuilder;

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    fn chain_block() -> BasicBlock {
        let mut b = BlockBuilder::new("c");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let _ = b.fadd("y", x, x);
        b.finish()
    }

    #[test]
    fn accessors() {
        let s = Schedule::new(vec![id(0), id(1), id(2)], vec![0, 1, 5], 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.vnop_count(), 3);
        assert_eq!(s.slot_count(), 6);
        assert_eq!(s.position(id(2)), Some(2));
        assert_eq!(s.position(id(7)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_slots_panic() {
        let _ = Schedule::new(vec![id(0), id(1)], vec![1, 1], 0);
    }

    #[test]
    fn verify_accepts_valid_order() {
        let block = chain_block();
        let dag = build_dag(&block, AliasModel::Fortran);
        let s = Schedule::new(vec![id(0), id(1), id(2)], vec![0, 1, 2], 0);
        assert_eq!(s.verify(&dag), Ok(()));
    }

    #[test]
    fn verify_rejects_violation() {
        let block = chain_block();
        let dag = build_dag(&block, AliasModel::Fortran);
        let s = Schedule::new(vec![id(1), id(0), id(2)], vec![0, 1, 2], 0);
        assert_eq!(
            s.verify(&dag),
            Err(ScheduleError::DependenceViolated {
                from: id(0),
                to: id(1)
            })
        );
    }

    #[test]
    fn verify_rejects_wrong_length_and_duplicates() {
        let block = chain_block();
        let dag = build_dag(&block, AliasModel::Fortran);
        let short = Schedule::new(vec![id(0)], vec![0], 0);
        assert!(matches!(
            short.verify(&dag),
            Err(ScheduleError::WrongLength { .. })
        ));
        let dup = Schedule::new(vec![id(0), id(0), id(2)], vec![0, 1, 2], 0);
        assert!(matches!(
            dup.verify(&dag),
            Err(ScheduleError::NotAPermutation { .. })
        ));
    }

    #[test]
    fn apply_reorders_block() {
        let block = chain_block();
        let s = Schedule::new(vec![id(0), id(1), id(2)], vec![0, 1, 2], 0);
        let out = s.apply(&block);
        assert_eq!(out.len(), 3);
        assert_eq!(out.insts()[0], block.insts()[0]);
    }

    #[test]
    fn display_shows_vnops() {
        let s = Schedule::new(vec![id(0), id(1)], vec![0, 3], 2);
        let text = s.to_string();
        assert!(text.contains("<vnop>"));
        assert!(text.contains("3: i1"));
    }
}
