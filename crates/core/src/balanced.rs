//! The balanced scheduling weight algorithm (paper Fig. 6).
//!
//! ```text
//! 1. Initialize the latency of each load instruction to 1.
//! 2. for each instruction i in G
//! 3.   G_ind = G − (Pred(i) ∪ Succ(i))
//! 4.   for each connected component C in G_ind
//! 5.     Find the path with the maximum number of load instructions.
//! 6.     for each load instruction l ∈ C
//! 7.       add IssueSlots(i)/Chances to the weight of l
//! ```
//!
//! Every instruction `i` (loads included — Table 1 shows loads
//! contributing to other loads' weights) donates its issue slot to the
//! loads it could run in parallel with; loads *in series* within one
//! component split the donation (`Chances` > 1), loads *in parallel*
//! each receive the full donation through their separate components.

use bsched_dag::{load_levels, BitSet, ChancesMethod, Closures, CodeDag, DagWorkspace};
use bsched_ir::{InstId, OpLatencies};

use crate::ratio::Ratio;
use crate::weights::{WeightAssigner, Weights};

/// The paper's balanced weight assigner.
///
/// # Example
///
/// The Figure 1 DAG (two loads in series, four independent instructions)
/// yields a weight of `1 + 4/2 = 3` on each load:
///
/// ```
/// use bsched_core::{BalancedWeights, Ratio, WeightAssigner};
/// use bsched_dag::{build_dag, AliasModel};
/// use bsched_ir::BlockBuilder;
///
/// let mut b = BlockBuilder::new("fig1");
/// let base = b.def_int("base");
/// let l0 = b.load("L0", base, 0);
/// let a1 = b.int_to_addr("a1", l0);
/// let l1 = b.load("L1", a1, 0);
/// let _x4 = b.fadd("X4", l1, l1);
/// let dag = build_dag(&b.finish(), AliasModel::Fortran);
/// let w = BalancedWeights::new().assign(&dag);
/// // Nodes 1 and 3 are L0 and L1; base/a1/X4 supply no parallelism here,
/// // so their weights stay near 1 — the full Figure 1 example lives in
/// // this module's tests.
/// assert!(w.weight(bsched_ir::InstId::new(1)) >= Ratio::ONE);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BalancedWeights {
    method: ChancesMethod,
    known_latency: Vec<(InstId, Ratio)>,
    op_latencies: OpLatencies,
}

impl BalancedWeights {
    /// Balanced weights with the exact `Chances` computation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects how `Chances` (Fig. 6 line 5) is computed — exact DP or the
    /// paper's min/max-level union–find approximation.
    #[must_use]
    pub fn with_method(mut self, method: ChancesMethod) -> Self {
        self.method = method;
        self
    }

    /// Uses fixed multi-cycle latencies for non-load opcodes (the §6
    /// asynchronous-FP-unit extension). Load weights are still computed
    /// from load-level parallelism.
    #[must_use]
    pub fn with_op_latencies(mut self, op_latencies: OpLatencies) -> Self {
        self.op_latencies = op_latencies;
        self
    }

    /// §6 extension: pins specific loads to a *known* latency, excluding
    /// them from balancing (e.g. the second access to a cache line). The
    /// pinned loads receive exactly `latency` as their weight and no
    /// contributions are accumulated for them.
    #[must_use]
    pub fn with_known_latency(mut self, load: InstId, latency: Ratio) -> Self {
        self.known_latency.push((load, latency));
        self
    }

    /// [`WeightAssigner::assign`] with caller-provided scratch space.
    ///
    /// The Fig. 6 loop touches every (instruction, component) pair — an
    /// O(n²) walk whose naive form allocates several buffers per
    /// iteration. Passing one [`DagWorkspace`] here (and reusing it
    /// across blocks) keeps that inner loop allocation-free after the
    /// buffers warm up. Results are identical to `assign`.
    #[must_use]
    pub fn assign_with(&self, dag: &CodeDag, ws: &mut DagWorkspace) -> Weights {
        let n = dag.len();
        // Line 1: every instruction starts at its issue slot (1) — or its
        // fixed multi-cycle latency for non-loads under the §6 extension;
        // loads then accumulate contributions.
        let mut weights = Weights::unit(n);
        if n == 0 {
            return weights;
        }
        for id in dag.node_ids() {
            if !dag.is_load(id) {
                *weights.weight_mut(id) =
                    Ratio::from_int(i64::from(self.op_latencies.latency(dag.opcode(id))));
            }
        }
        // Pinned loads as a bitset: the inner loop asks "is l pinned?"
        // O(n²) times, so the O(k) list scan is hoisted into one O(1)
        // lookup. Out-of-range pins can't match any node; skip them.
        let mut pinned = BitSet::new(n);
        for &(load, _) in &self.known_latency {
            if load.index() < n {
                pinned.insert(load.index());
            }
        }
        let closures = Closures::compute(dag);
        let levels = match self.method {
            ChancesMethod::Exact => Vec::new(),
            ChancesMethod::LevelApprox => load_levels(dag),
        };

        // Line 2: for each instruction i in G.
        for i in dag.node_ids() {
            let issue_slots = i64::from(issue_slots_of(dag, i));
            // Lines 3–4: G_ind = G − (Pred(i) ∪ Succ(i)) and its connected
            // components, both into the workspace's reused buffers.
            ws.find_independent_components(dag, &closures, i);
            // Lines 5–7 for either Chances method.
            for k in 0..ws.component_count() {
                let chances = match self.method {
                    ChancesMethod::Exact => ws.chances_exact(dag, k),
                    ChancesMethod::LevelApprox => ws.chances_level_approx(dag, k, &levels),
                };
                if chances == 0 {
                    continue;
                }
                let contribution = Ratio::new(issue_slots, i64::from(chances));
                for &l in ws.component(k) {
                    if dag.is_load(l) && !pinned.contains(l.index()) {
                        *weights.weight_mut(l) += contribution;
                    }
                }
            }
        }

        for &(load, latency) in &self.known_latency {
            if load.index() < n {
                *weights.weight_mut(load) = latency;
            }
        }
        weights
    }
}

impl WeightAssigner for BalancedWeights {
    fn name(&self) -> &'static str {
        match self.method {
            ChancesMethod::Exact => "balanced",
            ChancesMethod::LevelApprox => "balanced-approx",
        }
    }

    fn assign(&self, dag: &CodeDag) -> Weights {
        self.assign_with(dag, &mut DagWorkspace::new())
    }
}

/// `IssueSlots(i)`: 1 for every opcode on the paper's single-issue
/// machine; the hook exists so a multi-issue extension can widen it.
fn issue_slots_of(dag: &CodeDag, i: InstId) -> u32 {
    dag.opcode(i).issue_slots()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::{chances_exact, connected_components, DepKind};
    use bsched_ir::{BasicBlock, Inst, MemAccess, MemLoc, Opcode, RegionId};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    /// Builds a bare DAG where `loads` marks load nodes and `edges` are
    /// true dependences; names follow the paper's `L`/`X` convention.
    fn paper_dag(loads: &[bool], edges: &[(u32, u32)]) -> CodeDag {
        let mut load_no = 0;
        let mut other_no = 0;
        let insts: Vec<Inst> = loads
            .iter()
            .map(|&is_load| {
                if is_load {
                    let name = format!("L{load_no}");
                    load_no += 1;
                    Inst::new(
                        Opcode::Ldc1,
                        vec![],
                        vec![],
                        Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
                    )
                    .with_name(name)
                } else {
                    let name = format!("X{other_no}");
                    other_no += 1;
                    Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name)
                }
            })
            .collect();
        let block = BasicBlock::new("paper", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    /// Figure 1: L0 → L1 → X4 with X0..X3 independent.
    /// Node order: 0:L0 1:L1 2:X4 3:X0 4:X1 5:X2 6:X3.
    fn figure1() -> CodeDag {
        paper_dag(
            &[true, true, false, false, false, false, false],
            &[(0, 1), (1, 2)],
        )
    }

    #[test]
    fn figure1_loads_weigh_three() {
        // §3: "The weight on each load instruction is simply one ... plus
        // the number of instruction issue slots that may be initiated
        // independently of the load divided by the number of loads in
        // series or, 1 + (4/2) = 3."
        let w = BalancedWeights::new().assign(&figure1());
        assert_eq!(w.weight(id(0)), Ratio::from_int(3), "L0");
        assert_eq!(w.weight(id(1)), Ratio::from_int(3), "L1");
        // Non-loads keep weight 1.
        for i in 2..7 {
            assert_eq!(w.weight(id(i)), Ratio::ONE, "X node {i}");
        }
    }

    /// Figure 4: L0 and L1 independent; X0..X3 independent; X4 uses both
    /// loads. Node order: 0:L0 1:L1 2:X4(succ of both) 3..6:X0..X3.
    fn figure4() -> CodeDag {
        paper_dag(
            &[true, true, false, false, false, false, false],
            &[(0, 2), (1, 2)],
        )
    }

    #[test]
    fn figure4_loads_weigh_six() {
        // §3: "each load instruction may execute in parallel with five
        // other instructions, so they are each assigned a weight of six
        // (1+5/1)." The five are the other load plus X0..X3.
        let w = BalancedWeights::new().assign(&figure4());
        assert_eq!(w.weight(id(0)), Ratio::from_int(6), "L0");
        assert_eq!(w.weight(id(1)), Ratio::from_int(6), "L1");
    }

    /// Figure 7 reconstruction. Program order:
    /// 0:L2  1:L3  2:L4  3:L5  4:L6  5:X1  6:X2  7:X3  8:X4  9:L1
    ///
    /// Edges: L2→L3, L2→X1, L2→X2, L3→L4, L3→L5, L5→L6, X2→X3, X3→X4.
    /// L1 is independent of everything. This structure reproduces every
    /// contribution cell of Table 1 (see EXPERIMENTS.md for the
    /// table-vs-narrative discrepancy in the printed totals).
    fn figure7() -> CodeDag {
        let loads = [
            true, true, true, true, true, false, false, false, false, true,
        ];
        let edges = [
            (0, 1),
            (0, 5),
            (0, 6),
            (1, 2),
            (1, 3),
            (3, 4),
            (6, 7),
            (7, 8),
        ];
        paper_dag(&loads, &edges)
    }

    #[test]
    fn figure7_table1_weights() {
        let dag = figure7();
        let w = BalancedWeights::new().assign(&dag);
        let l2 = id(0);
        let l3 = id(1);
        let l4 = id(2);
        let l5 = id(3);
        let l6 = id(4);
        let l1 = id(9);
        // L1 is independent of all nine other instructions; each
        // contributes 1/1 → weight 10 (Table 1 row L1).
        assert_eq!(w.weight(l1), Ratio::from_int(10), "L1");
        // L2 receives only L1's 1/4 (the big component's longest load
        // path is L2→L3→L5→L6 = 4) → 1 1/4 (Table 1 row L2).
        assert_eq!(w.weight(l2), Ratio::new(5, 4), "L2");
        // L3: 1 + 1/4 (L1) + 4·(1/3) (X1..X4, component chances 3).
        assert_eq!(w.weight(l3), Ratio::new(31, 12), "L3");
        // L4: 1 + 1/4 + 1 (L5) + 1 (L6) + 4·(1/3).
        assert_eq!(w.weight(l4), Ratio::new(55, 12), "L4");
        // L5/L6: 1 + 1/4 + 1/2 (L4, chances 2 over {L5,L6}) + 4·(1/3).
        assert_eq!(w.weight(l5), Ratio::new(37, 12), "L5");
        assert_eq!(w.weight(l6), Ratio::new(37, 12), "L6");
    }

    #[test]
    fn figure7_narrative_for_x1() {
        // §3: for i = X1, three components arise: {L1} (path length 1 →
        // X1 contributes 1/1 to L1), {L3..L6} (longest load path 3 → 1/3
        // each), and a loadless component. Verify via the building blocks.
        let dag = figure7();
        let closures = Closures::compute(&dag);
        let keep = closures.independent_of(id(5)); // X1
        assert!(!keep.contains(0), "L2 is a predecessor of X1");
        let comps = connected_components(&dag, &keep);
        assert_eq!(comps.len(), 3, "three components as the narrative states");
        let chances: Vec<u32> = comps.iter().map(|c| chances_exact(&dag, c)).collect();
        let mut sorted = chances.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 3],
            "loadless, {{L1}}, and chances-3 components"
        );
    }

    #[test]
    fn level_approx_agrees_on_paper_figures() {
        for dag in [figure1(), figure4(), figure7()] {
            let exact = BalancedWeights::new().assign(&dag);
            let approx = BalancedWeights::new()
                .with_method(ChancesMethod::LevelApprox)
                .assign(&dag);
            for i in dag.node_ids() {
                assert_eq!(exact.weight(i), approx.weight(i), "node {i}");
            }
        }
    }

    #[test]
    fn empty_dag_yields_empty_weights() {
        let dag = paper_dag(&[], &[]);
        let w = BalancedWeights::new().assign(&dag);
        assert!(w.is_empty());
    }

    #[test]
    fn single_load_weighs_one() {
        // No parallelism to exploit: the load keeps its issue slot only.
        let dag = paper_dag(&[true], &[]);
        let w = BalancedWeights::new().assign(&dag);
        assert_eq!(w.weight(id(0)), Ratio::ONE);
    }

    #[test]
    fn serial_chain_of_loads_stays_unit() {
        // L0→L1→L2: nothing can hide anything.
        let dag = paper_dag(&[true, true, true], &[(0, 1), (1, 2)]);
        let w = BalancedWeights::new().assign(&dag);
        for i in 0..3 {
            assert_eq!(w.weight(id(i)), Ratio::ONE, "L{i}");
        }
    }

    #[test]
    fn fully_parallel_block_splits_nothing() {
        // k independent loads, m independent non-loads: every non-load and
        // every other load contributes 1 to each load.
        let dag = paper_dag(&[true, true, false, false, false], &[]);
        let w = BalancedWeights::new().assign(&dag);
        assert_eq!(w.weight(id(0)), Ratio::from_int(5), "1 + 4 donors");
        assert_eq!(w.weight(id(1)), Ratio::from_int(5));
    }

    #[test]
    fn pinned_load_keeps_known_latency() {
        let dag = figure4();
        let w = BalancedWeights::new()
            .with_known_latency(id(0), Ratio::from_int(2))
            .assign(&dag);
        assert_eq!(w.weight(id(0)), Ratio::from_int(2), "pinned");
        assert_eq!(w.weight(id(1)), Ratio::from_int(6), "other load unaffected");
    }

    #[test]
    fn weights_are_at_least_one_for_all_loads() {
        // Property-flavoured check over a family of layered DAGs.
        for layers in 1..5u32 {
            let n = layers * 3;
            let loads: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            let edges: Vec<(u32, u32)> = (0..n - 3).map(|i| (i, i + 3)).collect();
            let dag = paper_dag(&loads, &edges);
            let w = BalancedWeights::new().assign(&dag);
            for i in dag.node_ids() {
                assert!(w.weight(i) >= Ratio::ONE);
            }
        }
    }

    #[test]
    fn one_workspace_reused_across_blocks_matches_fresh() {
        // The program pipeline holds one workspace across all blocks of
        // all methods; stale buffers must never bleed between calls.
        let mut ws = DagWorkspace::new();
        let dags = [figure7(), figure1(), figure4(), figure7()];
        for (b, dag) in dags.iter().enumerate() {
            for method in [ChancesMethod::Exact, ChancesMethod::LevelApprox] {
                let assigner = BalancedWeights::new().with_method(method);
                let reused = assigner.assign_with(dag, &mut ws);
                let fresh = assigner.assign(dag);
                for i in dag.node_ids() {
                    assert_eq!(
                        reused.weight(i),
                        fresh.weight(i),
                        "block {b} {method:?} node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_load_out_of_range_is_harmless() {
        // A pin naming a node outside the block can't match any load;
        // the bitset build must not panic on it.
        let dag = figure4();
        let w = BalancedWeights::new()
            .with_known_latency(id(1), Ratio::from_int(4))
            .with_known_latency(id(100), Ratio::from_int(9))
            .assign(&dag);
        assert_eq!(w.weight(id(1)), Ratio::from_int(4));
        assert_eq!(w.weight(id(0)), Ratio::from_int(6));
    }

    #[test]
    fn assigner_names() {
        assert_eq!(BalancedWeights::new().name(), "balanced");
        assert_eq!(
            BalancedWeights::new()
                .with_method(ChancesMethod::LevelApprox)
                .name(),
            "balanced-approx"
        );
    }
}
