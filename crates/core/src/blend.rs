//! Blended weights: an exact convex combination of balanced and
//! traditional per-load weights.
//!
//! The balanced assigner spends a block's measured parallelism on its
//! loads; the traditional assigner spends a fixed optimistic latency.
//! Between the two endpoints lies a one-parameter family — weight
//! `share·balanced + (1−share)·traditional` per load — that the
//! autotuner searches over. `share = 1` reproduces balanced weights
//! exactly and `share = 0` reproduces the traditional baseline, so the
//! family strictly contains both paper schedulers. All arithmetic is
//! exact [`Ratio`] arithmetic: blending never introduces float
//! tie-break instability.

use bsched_dag::{ChancesMethod, CodeDag};

use crate::balanced::BalancedWeights;
use crate::ratio::Ratio;
use crate::traditional::TraditionalWeights;
use crate::weights::{WeightAssigner, Weights};

/// Convex combination of [`BalancedWeights`] and [`TraditionalWeights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlendedWeights {
    latency: Ratio,
    share: Ratio,
    method: ChancesMethod,
}

impl BlendedWeights {
    /// Blends balanced weights (weighted `share`) with traditional
    /// weights at `latency` (weighted `1 − share`).
    ///
    /// # Panics
    ///
    /// Panics when `share` is outside `[0, 1]` or `latency` is not
    /// positive (the traditional assigner's own invariant).
    #[must_use]
    pub fn new(latency: Ratio, share: Ratio) -> Self {
        assert!(
            share >= Ratio::ZERO && share <= Ratio::ONE,
            "balanced share must lie in [0, 1]"
        );
        assert!(latency > Ratio::ZERO, "load latency must be positive");
        Self {
            latency,
            share,
            method: ChancesMethod::Exact,
        }
    }

    /// Switches the balanced half to the given `Chances` method.
    #[must_use]
    pub fn with_method(mut self, method: ChancesMethod) -> Self {
        self.method = method;
        self
    }

    /// The traditional half's optimistic load latency.
    #[must_use]
    pub fn latency(&self) -> Ratio {
        self.latency
    }

    /// The balanced half's weight in the combination.
    #[must_use]
    pub fn share(&self) -> Ratio {
        self.share
    }
}

impl WeightAssigner for BlendedWeights {
    fn name(&self) -> &'static str {
        "blended"
    }

    fn assign(&self, dag: &CodeDag) -> Weights {
        let balanced = BalancedWeights::new().with_method(self.method).assign(dag);
        let traditional = TraditionalWeights::new(self.latency).assign(dag);
        let inverse = Ratio::ONE - self.share;
        let mut out = Weights::unit(dag.len());
        for id in dag.node_ids() {
            *out.weight_mut(id) =
                self.share * balanced.weight(id) + inverse * traditional.weight(id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::{build_dag, AliasModel};
    use bsched_ir::BlockBuilder;

    fn sample_dag() -> CodeDag {
        let mut b = BlockBuilder::new("blend");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        let y = b.load_region("y", region, base, Some(8));
        let s = b.fadd("s", x, y);
        b.store_region(region, s, base, Some(16));
        build_dag(&b.finish(), AliasModel::Fortran)
    }

    #[test]
    fn endpoints_reproduce_the_paper_assigners() {
        let dag = sample_dag();
        let latency = Ratio::from_int(30);
        let pure_balanced = BlendedWeights::new(latency, Ratio::ONE).assign(&dag);
        assert_eq!(pure_balanced, BalancedWeights::new().assign(&dag));
        let pure_traditional = BlendedWeights::new(latency, Ratio::ZERO).assign(&dag);
        assert_eq!(
            pure_traditional,
            TraditionalWeights::new(latency).assign(&dag)
        );
    }

    #[test]
    fn midpoint_lies_between_the_endpoints() {
        let dag = sample_dag();
        let latency = Ratio::from_int(30);
        let bal = BalancedWeights::new().assign(&dag);
        let trad = TraditionalWeights::new(latency).assign(&dag);
        let mid = BlendedWeights::new(latency, Ratio::new(1, 2)).assign(&dag);
        for id in dag.node_ids() {
            let (lo, hi) = if bal.weight(id) <= trad.weight(id) {
                (bal.weight(id), trad.weight(id))
            } else {
                (trad.weight(id), bal.weight(id))
            };
            assert!(mid.weight(id) >= lo && mid.weight(id) <= hi, "{id:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_out_of_range_share() {
        let _ = BlendedWeights::new(Ratio::from_int(2), Ratio::from_int(2));
    }
}
