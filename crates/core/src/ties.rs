//! Parameterized ready-list tie-breaking.
//!
//! The paper fixes one tie-break order (§4.1): register-pressure delta,
//! then newly exposed instructions, then generation order. The autotuner
//! treats that order as a *search dimension*: a [`TieBreakChain`] names
//! which keys are consulted, in which order, and which end of each key's
//! range wins. The default chain reproduces the paper's behaviour
//! bit-for-bit, so a scheduler built without an explicit chain is
//! byte-identical to the pre-tuning implementation.
//!
//! Every chain is total: after the configured keys, the scheduler always
//! falls back to earliest-generated order, so selection is deterministic
//! no matter how short (or empty) the configured chain is.

use std::fmt;

/// One orderable property of a ready instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieBreak {
    /// `uses − defs`: how much register pressure picking it relieves.
    PressureDelta,
    /// How many neighbours become schedulable once it is picked.
    ExposedCount,
    /// ALAP − ASAP freedom on the DAG (0 = critical path).
    Slack,
    /// Maximum loads on any path from the node toward the leaves
    /// (the paper's load-level labelling).
    LoadDensity,
    /// Position in generation order.
    SourceOrder,
}

impl TieBreak {
    /// Every key, in the canonical-spelling order used by the tuner's
    /// candidate space.
    pub const ALL: [TieBreak; 5] = [
        TieBreak::PressureDelta,
        TieBreak::ExposedCount,
        TieBreak::Slack,
        TieBreak::LoadDensity,
        TieBreak::SourceOrder,
    ];

    /// Stable spelling used in canonical policy strings.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            TieBreak::PressureDelta => "pressure",
            TieBreak::ExposedCount => "exposed",
            TieBreak::Slack => "slack",
            TieBreak::LoadDensity => "density",
            TieBreak::SourceOrder => "source",
        }
    }

    /// Inverse of [`TieBreak::id`].
    #[must_use]
    pub fn from_id(id: &str) -> Option<TieBreak> {
        TieBreak::ALL.into_iter().find(|k| k.id() == id)
    }
}

/// Which end of a key's range wins the tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TiePrefer {
    /// The larger value is scheduled first.
    High,
    /// The smaller value is scheduled first.
    Low,
}

impl TiePrefer {
    /// Canonical one-character suffix (`+` high, `-` low).
    #[must_use]
    pub fn suffix(self) -> char {
        match self {
            TiePrefer::High => '+',
            TiePrefer::Low => '-',
        }
    }
}

/// Maximum number of keys a chain can carry — one slot per distinct key.
pub const MAX_TIE_KEYS: usize = 5;

/// An ordered tie-break chain, `Copy` so the scheduler stays `Copy`.
///
/// Construct with [`TieBreakChain::try_from_keys`] (or rely on
/// [`TieBreakChain::default`] for the paper's chain) and render/parse
/// the canonical `pressure+,exposed+` spelling with [`fmt::Display`]
/// and [`TieBreakChain::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TieBreakChain {
    keys: [(TieBreak, TiePrefer); MAX_TIE_KEYS],
    len: u8,
}

impl Default for TieBreakChain {
    /// The paper's §4.1 order: largest pressure delta, then most newly
    /// exposed instructions (generation order is the built-in fallback).
    fn default() -> Self {
        Self::try_from_keys(&[
            (TieBreak::PressureDelta, TiePrefer::High),
            (TieBreak::ExposedCount, TiePrefer::High),
        ])
        .expect("default chain fits")
    }
}

/// Why a key list does not form a valid chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TieChainError {
    /// More than [`MAX_TIE_KEYS`] keys.
    TooLong(usize),
    /// The same key appears twice (a repeat can never break a tie the
    /// first occurrence left unbroken).
    Duplicate(TieBreak),
    /// Unparseable canonical spelling.
    Parse(String),
}

impl fmt::Display for TieChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TieChainError::TooLong(n) => {
                write!(f, "tie-break chain has {n} keys (max {MAX_TIE_KEYS})")
            }
            TieChainError::Duplicate(k) => write!(f, "duplicate tie-break key {:?}", k.id()),
            TieChainError::Parse(s) => write!(f, "bad tie-break spec {s:?}"),
        }
    }
}

impl std::error::Error for TieChainError {}

impl TieBreakChain {
    /// Builds a chain from an ordered key list.
    ///
    /// # Errors
    ///
    /// [`TieChainError::TooLong`] past [`MAX_TIE_KEYS`] keys,
    /// [`TieChainError::Duplicate`] when a key repeats.
    pub fn try_from_keys(keys: &[(TieBreak, TiePrefer)]) -> Result<Self, TieChainError> {
        if keys.len() > MAX_TIE_KEYS {
            return Err(TieChainError::TooLong(keys.len()));
        }
        let mut chain = [(TieBreak::SourceOrder, TiePrefer::Low); MAX_TIE_KEYS];
        for (i, &(key, prefer)) in keys.iter().enumerate() {
            if keys[..i].iter().any(|&(k, _)| k == key) {
                return Err(TieChainError::Duplicate(key));
            }
            chain[i] = (key, prefer);
        }
        Ok(Self {
            keys: chain,
            len: u8::try_from(keys.len()).expect("checked above"),
        })
    }

    /// The configured keys, in consultation order.
    #[must_use]
    pub fn keys(&self) -> &[(TieBreak, TiePrefer)] {
        &self.keys[..usize::from(self.len)]
    }

    /// Whether `key` appears anywhere in the chain.
    #[must_use]
    pub fn uses(&self, key: TieBreak) -> bool {
        self.keys().iter().any(|&(k, _)| k == key)
    }

    /// Parses the canonical `key±,key±` spelling (e.g.
    /// `slack-,pressure+`). The empty string is the empty chain.
    ///
    /// # Errors
    ///
    /// [`TieChainError::Parse`] on an unknown key or missing suffix, and
    /// the length/duplicate errors of [`TieBreakChain::try_from_keys`].
    pub fn parse(spec: &str) -> Result<Self, TieChainError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Self::try_from_keys(&[]);
        }
        let mut keys = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (name, prefer) = if let Some(name) = part.strip_suffix('+') {
                (name, TiePrefer::High)
            } else if let Some(name) = part.strip_suffix('-') {
                (name, TiePrefer::Low)
            } else {
                return Err(TieChainError::Parse(part.to_owned()));
            };
            let key =
                TieBreak::from_id(name).ok_or_else(|| TieChainError::Parse(part.to_owned()))?;
            keys.push((key, prefer));
        }
        Self::try_from_keys(&keys)
    }
}

impl fmt::Display for TieBreakChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &(key, prefer)) in self.keys().iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}{}", key.id(), prefer.suffix())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chain_is_the_papers_order() {
        let chain = TieBreakChain::default();
        assert_eq!(
            chain.keys(),
            &[
                (TieBreak::PressureDelta, TiePrefer::High),
                (TieBreak::ExposedCount, TiePrefer::High),
            ]
        );
        assert_eq!(chain.to_string(), "pressure+,exposed+");
    }

    #[test]
    fn display_parse_roundtrip() {
        for spec in [
            "",
            "slack-",
            "density+,slack-,source+",
            "pressure+,exposed+",
        ] {
            let chain = TieBreakChain::parse(spec).expect(spec);
            assert_eq!(chain.to_string(), spec);
            assert_eq!(TieBreakChain::parse(&chain.to_string()), Ok(chain));
        }
    }

    #[test]
    fn rejects_duplicates_overflow_and_junk() {
        assert_eq!(
            TieBreakChain::parse("slack-,slack+"),
            Err(TieChainError::Duplicate(TieBreak::Slack))
        );
        let all = "pressure+,exposed+,slack-,density+,source-";
        assert!(TieBreakChain::parse(all).is_ok());
        assert!(matches!(
            TieBreakChain::try_from_keys(&[(TieBreak::Slack, TiePrefer::Low); 6]),
            Err(TieChainError::TooLong(6))
        ));
        assert!(matches!(
            TieBreakChain::parse("slack"),
            Err(TieChainError::Parse(_))
        ));
        assert!(matches!(
            TieBreakChain::parse("bogus+"),
            Err(TieChainError::Parse(_))
        ));
    }

    #[test]
    fn key_ids_roundtrip() {
        for key in TieBreak::ALL {
            assert_eq!(TieBreak::from_id(key.id()), Some(key));
        }
        assert_eq!(TieBreak::from_id("nope"), None);
    }
}
