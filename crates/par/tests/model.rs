//! Model-checked interleaving proofs for the work-stealing core.
//!
//! Build with `RUSTFLAGS="--cfg bsched_model"` (the CI `model` job);
//! without the cfg this file is empty and tier-1 never pays for it.
//! Result accounting deliberately uses *std* atomics/mutexes — they
//! are not yield points, so the bookkeeping cannot perturb the
//! schedules being explored.
#![cfg(bsched_model)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bsched_model::{explore, explore_pct, Config};
use bsched_par::deque::{Deque, Steal};
use bsched_par::pool::{Job, WorkerPool};

fn record(log: &Arc<Mutex<Vec<usize>>>, id: usize) -> Job {
    let log = Arc::clone(log);
    Box::new(move || log.lock().unwrap().push(id))
}

/// The PR-6 boundary race, exhaustively: one job in the deque, the
/// owner's `pop` racing a thief's `steal` for it. Every interleaving
/// of the two protocols is explored; in each one the job must run
/// exactly once — never zero times (lost), never twice (duplicated).
#[test]
fn take_steal_boundary_race_is_exhaustive_and_exactly_once() {
    let owner_wins = Arc::new(AtomicUsize::new(0));
    let thief_wins = Arc::new(AtomicUsize::new(0));
    let (ow, tw) = (Arc::clone(&owner_wins), Arc::clone(&thief_wins));
    let report = explore(&Config::default(), move || {
        let deque = Arc::new(Deque::new());
        let log = Arc::new(Mutex::new(Vec::new()));
        // Push before spawning the thief: the contested state is the
        // *last element*, which is where the epoch CAS matters.
        deque.push(record(&log, 7)).ok().expect("capacity");
        let thief = {
            let deque = Arc::clone(&deque);
            bsched_par::sync::thread::spawn(move || match deque.steal() {
                Steal::Taken(job) => {
                    job();
                    true
                }
                Steal::Empty | Steal::Retry => false,
            })
        };
        let popped = match deque.pop() {
            Some(job) => {
                job();
                true
            }
            None => false,
        };
        let stolen = thief.join().unwrap();
        let ran = log.lock().unwrap().clone();
        assert_eq!(ran, vec![7], "job must run exactly once, ran: {ran:?}");
        assert!(
            popped ^ stolen,
            "exactly one side wins the boundary race (popped={popped}, stolen={stolen})"
        );
        if popped {
            ow.fetch_add(1, Ordering::SeqCst);
        } else {
            tw.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
    assert!(report.complete, "the boundary race must be exhausted");
    assert!(
        owner_wins.load(Ordering::SeqCst) > 0 && thief_wins.load(Ordering::SeqCst) > 0,
        "exploration must witness both outcomes (owner {}, thief {})",
        owner_wins.load(Ordering::SeqCst),
        thief_wins.load(Ordering::SeqCst)
    );
    assert!(
        report.schedules_run >= 10,
        "expected a real interleaving space, got {} schedules",
        report.schedules_run
    );
}

/// Deeper deque traffic under bounded-exhaustive search (preemption
/// bound 2): three jobs, the thief stealing until dry, the owner
/// popping the rest — the multiset of executed jobs always equals the
/// submissions.
#[test]
fn multi_job_take_steal_preserves_the_multiset() {
    let cfg = Config {
        preemption_bound: Some(2),
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let deque = Arc::new(Deque::new());
        let log = Arc::new(Mutex::new(Vec::new()));
        for id in 0..3 {
            deque.push(record(&log, id)).ok().expect("capacity");
        }
        let thief = {
            let deque = Arc::clone(&deque);
            bsched_par::sync::thread::spawn(move || loop {
                match deque.steal() {
                    Steal::Taken(job) => job(),
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            })
        };
        while let Some(job) = deque.pop() {
            job();
        }
        thief.join().unwrap();
        // The owner's pop loop can see None on the lost last-element
        // race, but the winner ran it: drain anything left and compare
        // multisets.
        while let Some(job) = deque.pop() {
            job();
        }
        let mut ran = log.lock().unwrap().clone();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 2], "no job lost or duplicated");
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
}

/// Shutdown drains: jobs spawned *before* shutdown must all have run
/// by the time `shutdown()` returns, under thousands of PCT schedules.
#[test]
fn drain_never_strands_a_job() {
    let report = explore_pct(&Config::default(), 0xD5A1, 500, 3, || {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(
            ran.load(Ordering::SeqCst),
            2,
            "shutdown returned with a queued job unrun"
        );
    });
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
}

/// The PR-6 submit/shutdown race model: a `scope` on one thread racing
/// `shutdown()` on another. The fixed code must survive 10k PCT
/// schedules without a hang (a stranded job = the scope latch waits
/// forever = a detected deadlock, not a wedged test).
fn submit_racing_shutdown_model() {
    let pool = Arc::new(WorkerPool::new(1));
    let scoper = {
        let pool = Arc::clone(&pool);
        bsched_par::sync::thread::spawn(move || {
            let ran = AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
                ran.fetch_add(1, Ordering::SeqCst);
            })];
            pool.scope(jobs, || {});
            assert_eq!(ran.load(Ordering::SeqCst), 1, "scoped job must have run");
        })
    };
    pool.shutdown();
    scoper.join().unwrap();
}

#[cfg(not(bsched_model_mutant))]
#[test]
fn submit_racing_shutdown_passes_10k_pct_schedules() {
    let report = explore_pct(
        &Config::default(),
        0xB5C4ED,
        10_000,
        3,
        submit_racing_shutdown_model,
    );
    assert!(
        report.failure.is_none(),
        "{}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
    assert_eq!(report.schedules_run, 10_000);
}

/// With the fix mechanically reverted (`--cfg bsched_model_mutant`
/// gates out both shutdown's post-join injector sweep and submit's
/// post-enqueue re-check), the checker must *find* the race — the
/// scope latch deadlock — and the recorded schedule must replay to the
/// same failure. This is the proof that the model suite would have
/// caught the PR-6 bug.
#[cfg(bsched_model_mutant)]
#[test]
fn mutant_submit_shutdown_race_is_detected_and_replayable() {
    use bsched_model::replay;

    let report = explore_pct(
        &Config::default(),
        0xB5C4ED,
        10_000,
        3,
        submit_racing_shutdown_model,
    );
    let failure = report
        .failure
        .expect("the reverted fix must be caught by PCT");
    assert!(
        failure.message.contains("deadlock"),
        "stranded scope job shows up as a deadlock, got: {}",
        failure.message
    );
    let rendered = failure.render();
    assert!(
        rendered.contains("replay schedule"),
        "failure must carry a replayable schedule:\n{rendered}"
    );
    // Replay: the exact recorded schedule reproduces the hang.
    let again = replay(
        &Config::default(),
        &failure.schedule,
        submit_racing_shutdown_model,
    );
    let refound = again.failure.expect("replay reproduces the deadlock");
    assert!(
        refound.message.contains("deadlock"),
        "replayed failure differs: {}",
        refound.message
    );
}

/// Satellite: random push/pop/steal op-sequences through the
/// model-checked deque. For every generated sequence, every explored
/// schedule must preserve the job multiset.
mod random_op_sequences {
    use super::*;
    use proptest::prelude::*;

    fn run_sequence(mask: u32, ops: usize, steals: usize) {
        let cfg = Config {
            preemption_bound: Some(2),
            ..Config::default()
        };
        let report = explore(&cfg, move || {
            let deque = Arc::new(Deque::new());
            let log = Arc::new(Mutex::new(Vec::new()));
            let thief = {
                let deque = Arc::clone(&deque);
                bsched_par::sync::thread::spawn(move || {
                    for _ in 0..steals {
                        if let Steal::Taken(job) = deque.steal() {
                            job();
                        }
                    }
                })
            };
            let mut pushed = Vec::new();
            for i in 0..ops {
                if mask & (1 << i) != 0 {
                    deque.push(record(&log, i)).ok().expect("capacity");
                    pushed.push(i);
                } else if let Some(job) = deque.pop() {
                    job();
                }
            }
            thief.join().unwrap();
            while let Some(job) = deque.pop() {
                job();
            }
            let mut ran = log.lock().unwrap().clone();
            ran.sort_unstable();
            assert_eq!(ran, pushed, "multiset of completed jobs != submissions");
        });
        assert!(
            report.failure.is_none(),
            "mask={mask:#x} ops={ops} steals={steals}: {}",
            report.failure.map_or_else(String::new, |f| f.render())
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn deque_preserves_job_multiset_under_every_schedule(
            mask in 0u32..16,
            ops in 1usize..5,
            steals in 1usize..3,
        ) {
            run_sequence(mask, ops, steals);
        }
    }
}
