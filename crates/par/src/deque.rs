//! A Chase–Lev work-stealing deque specialised to pool jobs.
//!
//! One deque per worker. The **owner** pushes and pops at the *bottom*
//! (LIFO — freshly spawned work is hot in cache), **thieves** steal from
//! the *top* (FIFO — they take the oldest, largest-granularity work, the
//! property Gu & Napier's cache-complexity analysis leans on). Both
//! sides are lock-free: the indices are plain atomics and the only
//! synchronisation a steal needs is one compare-exchange on `top`.
//!
//! ## Invariants (the owner/thief protocol)
//!
//! * `top <= bottom` modulo transient owner decrements; the live window
//!   is `[top, bottom)` and never exceeds the fixed capacity.
//! * Only the owner writes slots, and only at `bottom`; a slot holding
//!   index `i` is rewritten only by a push of index `i + capacity`,
//!   which the capacity check forbids until `top > i`. A thief that
//!   read slot `i % capacity` therefore read the value for *epoch* `i`
//!   as long as its `top: i → i + 1` compare-exchange succeeds — the
//!   CAS is the epoch check, and it is what makes the relaxed slot read
//!   ABA-safe.
//! * Indices increase monotonically over the deque's lifetime (they are
//!   64-bit and never wrap in practice), so a stale index can never be
//!   mistaken for a current one.
//!
//! The memory orderings follow Lê, Pop, Cohen & Zappa Nardelli,
//! "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP
//! 2013), restricted to a fixed-capacity ring: a full deque rejects the
//! push (the pool overflows into its shared injector) instead of
//! growing, which keeps reclamation trivial.

use std::ptr;

use crate::pool::Job;
use crate::sync::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Slots per deque. Fan-outs submit at most `threads - 1` drain jobs
/// and server admission is bounded separately, so 256 is generous; a
/// full deque is not an error, just an overflow into the injector.
pub const CAPACITY: usize = 256;

/// What a thief saw at the top of a victim's deque.
pub enum Steal {
    /// A job, with ownership transferred to the thief.
    Taken(Job),
    /// Nothing to take.
    Empty,
    /// Lost a race with the owner or another thief; the victim may
    /// still have work — try again (conventionally: after trying
    /// someone else).
    Retry,
}

/// The deque proper. Jobs are boxed twice: the fat `dyn FnOnce` box is
/// itself boxed so a slot is one thin pointer an `AtomicPtr` can hold.
pub struct Deque {
    /// Next index a thief steals from.
    top: AtomicIsize,
    /// Next index the owner pushes to.
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<Job>]>,
}

// SAFETY: the raw pointers in `slots` are owned by the deque (each is a
// `Box<Job>` leaked into it) and every transfer of one between threads
// is mediated by the acquire/release protocol on `top`/`bottom`.
unsafe impl Send for Deque {}
// SAFETY: shared access is the owner/thief protocol itself — slots are
// written only by the owner at `bottom`, and a thief's claim on a slot
// is serialised by the `top` compare-exchange (the epoch check above),
// so `&Deque` from many threads never yields two owners for one job.
unsafe impl Sync for Deque {}

impl Deque {
    /// An empty deque.
    #[must_use]
    pub fn new() -> Deque {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..CAPACITY)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicPtr<Job> {
        // CAPACITY is a power of two in spirit but we do not rely on
        // it: a plain modulus keeps the invariant obvious.
        #[allow(clippy::cast_sign_loss)]
        let at = (index.rem_euclid(CAPACITY as isize)) as usize;
        &self.slots[at]
    }

    /// Owner-only: push a job at the bottom. Returns the job back when
    /// the deque is full (the caller overflows it elsewhere).
    pub fn push(&self, job: Job) -> Result<(), Job> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        #[allow(clippy::cast_possible_wrap)]
        if b - t >= CAPACITY as isize {
            return Err(job);
        }
        let raw = Box::into_raw(Box::new(job));
        self.slot(b).store(raw, Ordering::Relaxed);
        // The release store is what publishes the slot write to any
        // thief that acquires `bottom` and sees the new index.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pop the most recently pushed job.
    pub fn pop(&self) -> Option<Job> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders the speculative `bottom` decrement
        // against the thieves' `top` reads: either a racing thief sees
        // the decrement and gives up, or we see its `top` increment.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let raw = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: race the thieves for it on `top`.
                if self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief won; it owns the pointer now.
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.bottom.store(b + 1, Ordering::Relaxed);
            }
            // SAFETY: we either hold `top < bottom` exclusively (no
            // thief can pass the fence without us seeing it) or won the
            // last-element CAS; either way this epoch's pointer is ours.
            Some(*unsafe { Box::from_raw(raw) })
        } else {
            // Deque was empty; undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side: take the oldest job.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Relaxed is enough for the slot itself: the acquire load of
        // `bottom` made the owner's slot write for epoch `t` visible,
        // and the CAS below rejects the read if the epoch moved.
        let raw = self.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // SAFETY: the successful CAS on `top` at epoch `t` transfers
        // ownership of exactly this pointer to us (see module docs).
        Steal::Taken(*unsafe { Box::from_raw(raw) })
    }

    /// Approximate live length — a stats snapshot, not a decision input.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        usize::try_from(b - t).unwrap_or(0)
    }

    /// True when a steal attempt could plausibly succeed right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Workers drain every deque before exiting, so this is
        // normally a no-op; it exists so an unexpectedly abandoned
        // deque cannot leak its boxed jobs.
        while let Some(job) = self.pop() {
            drop(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn job(counter: &Arc<AtomicUsize>, add: usize) -> Job {
        let counter = Arc::clone(counter);
        Box::new(move || {
            counter.fetch_add(add, Ordering::SeqCst);
        })
    }

    #[test]
    fn owner_push_pop_is_lifo() {
        let deque = Deque::new();
        let ran = Arc::new(AtomicUsize::new(0));
        deque.push(job(&ran, 1)).ok().unwrap();
        deque.push(job(&ran, 10)).ok().unwrap();
        assert_eq!(deque.len(), 2);
        // LIFO: the 10-job was pushed last, pops first.
        deque.pop().unwrap()();
        assert_eq!(ran.load(Ordering::SeqCst), 10);
        deque.pop().unwrap()();
        assert_eq!(ran.load(Ordering::SeqCst), 11);
        assert!(deque.pop().is_none());
        assert!(deque.is_empty());
    }

    #[test]
    fn steal_takes_the_oldest_job() {
        let deque = Deque::new();
        let ran = Arc::new(AtomicUsize::new(0));
        deque.push(job(&ran, 1)).ok().unwrap();
        deque.push(job(&ran, 10)).ok().unwrap();
        match deque.steal() {
            Steal::Taken(j) => j(),
            _ => panic!("expected a job"),
        }
        // FIFO from the top: the 1-job went in first, is stolen first.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert!(matches!(deque.steal(), Steal::Taken(_) | Steal::Retry));
    }

    #[test]
    fn full_deque_rejects_the_push() {
        let deque = Deque::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..CAPACITY {
            deque.push(job(&ran, 1)).ok().unwrap();
        }
        assert!(deque.push(job(&ran, 1)).is_err(), "capacity bound holds");
        // Freeing one slot re-admits pushes.
        drop(deque.pop().unwrap());
        deque.push(job(&ran, 1)).ok().unwrap();
    }

    #[test]
    fn concurrent_thieves_take_every_job_exactly_once() {
        const JOBS: usize = 4096;
        const THIEVES: usize = 4;
        let deque = Arc::new(Deque::new());
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let thieves: Vec<_> = (0..THIEVES)
                .map(|_| {
                    let deque = Arc::clone(&deque);
                    let done = Arc::clone(&done);
                    scope.spawn(move || {
                        let mut taken = 0usize;
                        loop {
                            match deque.steal() {
                                Steal::Taken(j) => {
                                    j();
                                    taken += 1;
                                }
                                Steal::Retry => std::hint::spin_loop(),
                                Steal::Empty => {
                                    if done.load(Ordering::SeqCst) >= JOBS {
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        taken
                    })
                })
                .collect();
            // Owner: interleave pushes with occasional pops, counting
            // everything it keeps for itself.
            let mut popped = 0usize;
            let mut pushed = 0usize;
            while pushed < JOBS {
                let done = Arc::clone(&done);
                let j: Job = Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
                if deque.push(j).is_ok() {
                    pushed += 1;
                } else if let Some(j) = deque.pop() {
                    j();
                    popped += 1;
                }
                if pushed.is_multiple_of(7) {
                    if let Some(j) = deque.pop() {
                        j();
                        popped += 1;
                    }
                }
            }
            let stolen: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(done.load(Ordering::SeqCst), JOBS, "every job ran");
            assert_eq!(stolen + popped, JOBS, "each job ran exactly once");
        });
    }
}
