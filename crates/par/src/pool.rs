//! A long-lived worker pool.
//!
//! [`parallel_map`](crate::parallel_map) originally spawned OS threads
//! on every call; fine for table harnesses that fan out once, wasteful
//! for a server that fans out per request. [`WorkerPool`] keeps the
//! threads alive: construct it once, then hand it work two ways —
//!
//! * [`spawn`](WorkerPool::spawn) — fire-and-forget `'static` jobs (a
//!   server submitting request handlers);
//! * [`scope`](WorkerPool::scope) — borrowed jobs that are guaranteed to
//!   finish before the call returns (the engine under `parallel_map`,
//!   which borrows the item slice and the mapping closure from the
//!   caller's stack).
//!
//! Worker threads run with the nested-parallelism flag set, so any
//! `parallel_map` reached from inside a job degrades to serial exactly
//! as it would have on a per-call worker thread. Panicking jobs are
//! caught on the worker — a panic can neither kill a pool thread nor
//! leak a fault context into the next job.
//!
//! The process-wide pool behind `parallel_map` is [`global_pool`], sized
//! once from the machine's available parallelism. Per-call thread
//! budgets (`BSCHED_THREADS`, explicit `_with` arguments) are enforced
//! by how many drain jobs a fan-out submits, not by resizing the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

use crate::{in_parallel_worker, IN_PARALLEL};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size set of long-lived worker threads fed from one shared
/// queue.
pub struct WorkerPool {
    /// `None` only during [`shutdown`](WorkerPool::shutdown); dropping
    /// the sender is what tells workers to exit.
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    size: usize,
}

impl WorkerPool {
    /// Starts `size` worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("bsched-pool-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            size,
        }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a fire-and-forget job. A panic inside `job` is caught on
    /// the worker and discarded — jobs that care report their own
    /// outcome (through a channel, a mutex, a response socket).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(job));
    }

    /// Runs every borrowed `job` to completion, plus `caller` on the
    /// current thread, before returning.
    ///
    /// Jobs may borrow from the caller's stack: the call does not return
    /// — even by unwinding out of `caller` — until every job has
    /// finished, so no borrow can dangle. The `caller` closure runs
    /// concurrently with the jobs and is how a fan-out's submitting
    /// thread participates in the work instead of idling (pass `|| {}`
    /// to just wait). Job panics are caught and discarded, exactly as in
    /// [`spawn`](WorkerPool::spawn); a `caller` panic propagates after
    /// the jobs drain.
    ///
    /// Called from inside a pool worker, everything runs inline on the
    /// current thread instead — queueing behind the very job that is
    /// waiting would deadlock a single-worker pool.
    pub fn scope<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>, caller: impl FnOnce()) {
        if in_parallel_worker() {
            for job in jobs {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            caller();
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        for job in jobs {
            // SAFETY: the borrowed job is retyped as `'static` only so
            // it can cross the queue; `WaitForJobs` below blocks — on
            // return *and* on unwind — until the latch records that
            // every job ran (the `CountDown` guard fires even if a job
            // panics, and `submit` falls back to running rejected jobs
            // inline). No job, and therefore no `'a` borrow, survives
            // this call frame.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Box<dyn FnOnce() + Send>>(job)
            };
            let count_down = CountDown(Arc::clone(&latch));
            self.submit(Box::new(move || {
                let _count_down = count_down;
                let _ = catch_unwind(AssertUnwindSafe(job));
            }));
        }
        let _wait = WaitForJobs(&latch);
        caller();
    }

    /// Stops accepting work, lets queued jobs finish, and joins every
    /// worker. Idempotent; [`spawn`](WorkerPool::spawn) after shutdown
    /// runs the job inline on the caller.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take());
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    fn submit(&self, job: Job) {
        let rejected = match self.tx.lock().unwrap().as_ref() {
            Some(tx) => match tx.send(job) {
                Ok(()) => None,
                Err(mpsc::SendError(job)) => Some(job),
            },
            None => Some(job),
        };
        // Shut-down (or somehow worker-less) pool: run inline rather
        // than silently dropping — `scope` relies on every job running.
        if let Some(job) = rejected {
            let _ = catch_unwind(AssertUnwindSafe(job));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>) {
    IN_PARALLEL.with(|flag| flag.set(true));
    loop {
        // Holding the lock across `recv` is deliberate: it serialises
        // job *pickup* (cheap), not job *execution*.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let _ = catch_unwind(AssertUnwindSafe(job));
        // A job that set a fault context or cancel token and then
        // panicked must not leak it into the next job on this worker.
        bsched_faults::set_context(None);
        bsched_faults::set_cancel_token(None);
    }
}

/// The pool behind [`parallel_map`](crate::parallel_map), created on
/// first use and sized to the machine (never resized — per-call budgets
/// throttle by submitting fewer jobs).
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, usize::from))
    })
}

/// Counts completed jobs down to zero; waiters block until it gets
/// there.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

/// Counts the latch down when dropped — so a panicking job still counts.
struct CountDown(Arc<Latch>);

impl Drop for CountDown {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// Blocks on the latch when dropped — so `scope` cannot unwind past its
/// borrowed jobs.
struct WaitForJobs<'a>(&'a Latch);

impl Drop for WaitForJobs<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn spawn_runs_jobs_on_worker_threads() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.spawn(move || {
                assert!(in_parallel_worker(), "pool workers carry the flag");
                tx.send(i).unwrap();
            });
        }
        let mut got: Vec<usize> = (0..32).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_borrowed_jobs_before_returning() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs, || {
            hits.fetch_add(100, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 108);
    }

    #[test]
    fn scope_waits_even_when_the_caller_panics() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        std::thread::sleep(Duration::from_millis(10));
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope(jobs, || panic!("caller boom"));
        }));
        assert!(result.is_err());
        // If scope had unwound without waiting, some increments could
        // land after this read (use-after-free in the real engine).
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("job boom"));
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn jobs_cannot_leak_fault_context_across_jobs() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| {
            bsched_faults::set_context(Some(("LEAKY|cell".to_owned(), 1)));
            panic!("die before cleanup");
        });
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(bsched_faults::current_context()).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(None));
    }

    #[test]
    fn scope_from_inside_a_worker_runs_inline() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner = Arc::clone(&pool);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || {
            // The single worker is busy with *this* job; queueing and
            // waiting would deadlock. Inline execution must not.
            let hits = AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            inner.scope(jobs, || ());
            tx.send(hits.load(Ordering::SeqCst)).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(3));
    }

    #[test]
    fn shutdown_drains_and_is_idempotent() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        pool.shutdown();
        pool.shutdown();
        drop(tx);
        assert_eq!(rx.iter().count(), 16, "queued jobs finish before join");
        // Post-shutdown spawns degrade to inline execution, so this has
        // already run by the next line.
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.spawn(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
