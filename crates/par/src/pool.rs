//! A long-lived work-stealing worker pool.
//!
//! [`parallel_map`](crate::parallel_map) originally spawned OS threads
//! on every call; fine for table harnesses that fan out once, wasteful
//! for a server that fans out per request. [`WorkerPool`] keeps the
//! threads alive: construct it once, then hand it work two ways —
//!
//! * [`spawn`](WorkerPool::spawn) — fire-and-forget `'static` jobs (a
//!   server submitting request handlers);
//! * [`scope`](WorkerPool::scope) — borrowed jobs that are guaranteed to
//!   finish before the call returns (the engine under `parallel_map`,
//!   which borrows the item slice and the mapping closure from the
//!   caller's stack).
//!
//! ## Dispatch: per-worker deques, stealing, and an injector
//!
//! The pool used to feed every worker from one `Mutex<mpsc::Receiver>`;
//! under load the lock serialised job *fetch* across all workers, which
//! is exactly the dispatch ceiling the serving benchmarks hit. Now each
//! worker owns a Chase–Lev deque ([`crate::deque`]): it pushes and pops
//! its own work LIFO at the bottom, and when it runs dry it steals FIFO
//! from the top of a randomly chosen victim. Jobs submitted from
//! outside the pool land in a shared *injector* queue; a dry worker
//! grabs a batch from the injector into its own deque so subsequent
//! fetches (its own and thieves') are lock-free. No worker ever holds a
//! lock while fetching from another worker's queue, so one slow job can
//! never stall anyone else's fetch path.
//!
//! Idle workers park on a `Condvar` (not a spin loop: the daemon is
//! mostly idle between bursts and spinning would burn the very cores
//! the evaluation workload wants). Every submission notifies the
//! parking lot; the notify takes the parking mutex, which closes the
//! lost-wakeup race with a worker that is mid-way into parking.
//!
//! Worker threads run with the nested-parallelism flag set, so any
//! `parallel_map` reached from inside a job degrades to serial exactly
//! as it would have on a per-call worker thread. Panicking jobs are
//! caught on the worker — a panic can neither kill a pool thread nor
//! leak a fault context into the next job.
//!
//! The process-wide pool behind `parallel_map` is [`global_pool`], sized
//! once from the machine's available parallelism. Per-call thread
//! budgets (`BSCHED_THREADS`, explicit `_with` arguments) are enforced
//! by how many drain jobs a fan-out submits, not by resizing the pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use crate::deque::{Deque, Steal};
use crate::sync::{thread, AtomicBool, AtomicU64, Condvar, Mutex, Ordering};
use crate::{in_parallel_worker, IN_PARALLEL};

/// A queued unit of work: boxed so one thin pointer moves through the
/// deques and injector.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// How many injector jobs a dry worker moves into its own deque in one
/// grab (the first is run immediately). Batching amortises the injector
/// lock and gives thieves something to steal.
const INJECTOR_BATCH: usize = 16;

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this
    /// thread, if any — lets `submit` push to its own deque and tests
    /// observe which worker ran an item.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Monotone pool ids so the thread-local worker registration can never
/// be confused across pools.
fn next_pool_id() -> u64 {
    // Deliberately `std`: a process-wide id counter is bookkeeping, not
    // part of the pool's concurrency protocol, and a model run must not
    // interleave on it.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A point-in-time snapshot of the pool's dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep on the parking `Condvar`.
    pub parks: u64,
    /// Jobs currently queued (injector + all deques), excluding jobs
    /// already executing.
    pub queued: usize,
}

/// The `Condvar` parking lot idle workers sleep in.
struct Parking {
    lock: Mutex<()>,
    available: Condvar,
}

struct Shared {
    id: u64,
    deques: Box<[Deque]>,
    /// External submissions and deque overflow. Locked only around
    /// push/batch-pop — never across job execution or a steal.
    injector: Mutex<VecDeque<Job>>,
    parking: Parking,
    shutdown: AtomicBool,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl Shared {
    /// Whether any queue in the pool plausibly holds work. Races are
    /// fine everywhere this is called *outside* the parking lock; under
    /// the parking lock it is exact enough to prevent lost wakeups (see
    /// `worker_loop`).
    fn has_work(&self) -> bool {
        !self.injector.lock().unwrap().is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    fn queued(&self) -> usize {
        self.injector.lock().unwrap().len() + self.deques.iter().map(Deque::len).sum::<usize>()
    }

    /// Wakes one parked worker. Always takes the parking mutex: a
    /// worker parks only while holding it, so the notify is ordered
    /// either before the worker's final work re-check (which will see
    /// the just-pushed job) or after it began waiting (so it hears the
    /// notify). Cheap when uncontended — and submissions vastly
    /// outnumber parks under load.
    fn notify_one(&self) {
        let _guard = self.parking.lock.lock().unwrap();
        self.parking.available.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.parking.lock.lock().unwrap();
        self.parking.available.notify_all();
    }

    /// Runs every job still sitting in the injector inline on the
    /// calling thread. Only meaningful once `shutdown` is set: jobs
    /// stranded by a submit racing the shutdown must still run —
    /// `scope` hangs on its latch forever otherwise. The lock is never
    /// held across a job, so a stranded job that itself submits cannot
    /// deadlock.
    #[cfg_attr(bsched_model_mutant, allow(dead_code))]
    fn run_stranded_inline(&self) {
        loop {
            let job = self.injector.lock().unwrap().pop_front();
            match job {
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => return,
            }
        }
    }
}

/// A fixed-size set of long-lived worker threads with per-worker
/// work-stealing deques and a shared injector for external submissions.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    size: usize,
}

impl WorkerPool {
    /// Starts `size` worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            id: next_pool_id(),
            deques: (0..size).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            parking: Parking {
                lock: Mutex::new(()),
                available: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let handles = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("bsched-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            size,
        }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Steal/park counters and current queue depth, for `/stats`.
    #[must_use]
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            queued: self.shared.queued(),
        }
    }

    /// The index of the pool worker running the calling thread, if the
    /// calling thread belongs to *this* pool. Tests use this to assert
    /// work distribution; it is `None` on every other thread.
    #[must_use]
    pub fn current_worker_index(&self) -> Option<usize> {
        WORKER.with(Cell::get).and_then(|(pool, index)| {
            if pool == self.shared.id {
                Some(index)
            } else {
                None
            }
        })
    }

    /// Submits a fire-and-forget job. A panic inside `job` is caught on
    /// the worker and discarded — jobs that care report their own
    /// outcome (through a channel, a mutex, a response socket).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(job));
    }

    /// Runs every borrowed `job` to completion, plus `caller` on the
    /// current thread, before returning.
    ///
    /// Jobs may borrow from the caller's stack: the call does not return
    /// — even by unwinding out of `caller` — until every job has
    /// finished, so no borrow can dangle. The `caller` closure runs
    /// concurrently with the jobs and is how a fan-out's submitting
    /// thread participates in the work instead of idling (pass `|| {}`
    /// to just wait). Job panics are caught and discarded, exactly as in
    /// [`spawn`](WorkerPool::spawn); a `caller` panic propagates after
    /// the jobs drain.
    ///
    /// Called from inside a pool worker, everything runs inline on the
    /// current thread instead — queueing behind the very job that is
    /// waiting would deadlock a single-worker pool.
    pub fn scope<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>, caller: impl FnOnce()) {
        if in_parallel_worker() {
            for job in jobs {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            caller();
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        for job in jobs {
            // SAFETY: the borrowed job is retyped as `'static` only so
            // it can cross the queue; `WaitForJobs` below blocks — on
            // return *and* on unwind — until the latch records that
            // every job ran (the `CountDown` guard fires even if a job
            // panics, and `submit` falls back to running rejected jobs
            // inline). No job, and therefore no `'a` borrow, survives
            // this call frame.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Box<dyn FnOnce() + Send>>(job)
            };
            let count_down = CountDown(Arc::clone(&latch));
            self.submit(Box::new(move || {
                let _count_down = count_down;
                let _ = catch_unwind(AssertUnwindSafe(job));
            }));
        }
        let _wait = WaitForJobs(&latch);
        caller();
    }

    /// Stops accepting work, lets queued jobs finish, and joins every
    /// worker. Idempotent; [`spawn`](WorkerPool::spawn) after shutdown
    /// runs the job inline on the caller.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // A submit racing this shutdown can read `shutdown == false`,
        // get preempted, and enqueue after the workers drained and
        // exited. Sweep the injector now that the join is done;
        // `submit`'s own post-enqueue re-check covers a push that lands
        // after this sweep. (`bsched_model_mutant` reverts this fix so
        // the model suite can prove the checker catches the PR-6 race.)
        #[cfg(not(bsched_model_mutant))]
        self.shared.run_stranded_inline();
    }

    fn submit(&self, job: Job) {
        // Shut-down pool: run inline rather than silently dropping —
        // `scope` relies on every job running.
        if self.shared.shutdown.load(Ordering::SeqCst) {
            let _ = catch_unwind(AssertUnwindSafe(job));
            return;
        }
        // A worker spawning from inside a job keeps the work local
        // (LIFO, cache-warm, lock-free); everyone else goes through the
        // injector. A full deque overflows into the injector too.
        let job = match self.current_worker_index() {
            Some(index) => self.shared.deques[index].push(job).err(),
            None => Some(job),
        };
        if let Some(job) = job {
            self.shared.injector.lock().unwrap().push_back(job);
        }
        self.shared.notify_one();
        // Close the race with `shutdown()`: if the flag flipped between
        // the check above and the enqueue, the workers (and shutdown's
        // own injector sweep) may already be gone, leaving the job
        // stranded — and a `scope` latch waiting on it forever. SeqCst
        // orders this load against the store in `shutdown`, so either
        // we see the flag here and drain, or our push is visible to
        // shutdown's sweep. Deque pushes (the worker fast path) are
        // safe without this: the pushing worker is still alive inside a
        // job, and drains its own deque before exiting.
        #[cfg(not(bsched_model_mutant))]
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.shared.run_stranded_inline();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: fetch → run → repeat, parking when the whole pool is
/// dry, exiting when shut down *and* dry.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    IN_PARALLEL.with(|flag| flag.set(true));
    WORKER.with(|w| w.set(Some((shared.id, index))));
    // Randomised victim order, seeded per worker (splitmix64): thieves
    // starting at different victims spread contention.
    let mut rng = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1);
    loop {
        if let Some(job) = find_work(shared, index, &mut rng) {
            let _ = catch_unwind(AssertUnwindSafe(job));
            // A job that set a fault context or cancel token and then
            // panicked must not leak it into the next job on this
            // worker.
            bsched_faults::set_context(None);
            bsched_faults::set_cancel_token(None);
            continue;
        }
        // Nothing anywhere: park. The final re-check happens under the
        // parking mutex, which every submission also takes to notify —
        // so either we see the job here, or the submitter's notify
        // comes after we started waiting.
        let guard = shared.parking.lock.lock().unwrap();
        if shared.has_work() {
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.parks.fetch_add(1, Ordering::Relaxed);
        drop(shared.parking.available.wait(guard));
    }
}

/// The fetch path: own deque (LIFO), then an injector batch, then
/// stealing from randomised victims. Lock-free except the brief
/// injector pop.
fn find_work(shared: &Shared, index: usize, rng: &mut u64) -> Option<Job> {
    if let Some(job) = shared.deques[index].pop() {
        return Some(job);
    }
    // Dry: refill from the injector, keeping the first job to run now
    // and parking the rest in our own deque where fetches are
    // lock-free and thieves can reach them.
    {
        let mut injector = shared.injector.lock().unwrap();
        if let Some(first) = injector.pop_front() {
            let mut moved = 0;
            while moved < INJECTOR_BATCH - 1 {
                let Some(job) = injector.pop_front() else {
                    break;
                };
                if let Err(job) = shared.deques[index].push(job) {
                    injector.push_front(job);
                    break;
                }
                moved += 1;
            }
            drop(injector);
            if moved > 0 {
                // Let sleepers know there is suddenly stealable work.
                shared.notify_one();
            }
            return Some(first);
        }
    }
    // Steal, visiting every other worker once in a rotated order; a
    // `Retry` (lost race) means work exists, so sweep again a few
    // times before giving up and letting the caller park.
    let n = shared.deques.len();
    if n <= 1 {
        return None;
    }
    for _sweep in 0..4 {
        let mut contended = false;
        // splitmix64 step for the rotation.
        *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        #[allow(clippy::cast_possible_truncation)]
        let start = (z ^ (z >> 31)) as usize % n;
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == index {
                continue;
            }
            match shared.deques[victim].steal() {
                Steal::Taken(job) => {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        std::hint::spin_loop();
    }
    None
}

/// The pool behind [`parallel_map`](crate::parallel_map), created on
/// first use and sized to the machine (never resized — per-call budgets
/// throttle by submitting fewer jobs).
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, usize::from))
    })
}

/// Counts completed jobs down to zero; waiters block until it gets
/// there.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

/// Counts the latch down when dropped — so a panicking job still counts.
struct CountDown(Arc<Latch>);

impl Drop for CountDown {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// Blocks on the latch when dropped — so `scope` cannot unwind past its
/// borrowed jobs.
struct WaitForJobs<'a>(&'a Latch);

impl Drop for WaitForJobs<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    #[test]
    fn spawn_runs_jobs_on_worker_threads() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32usize {
            let tx = tx.clone();
            pool.spawn(move || {
                assert!(in_parallel_worker(), "pool workers carry the flag");
                tx.send(i).unwrap();
            });
        }
        let mut got: Vec<usize> = (0..32).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scope_joins_borrowed_jobs_before_returning() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs, || {
            hits.fetch_add(100, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 108);
    }

    #[test]
    fn scope_waits_even_when_the_caller_panics() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        std::thread::sleep(Duration::from_millis(10));
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope(jobs, || panic!("caller boom"));
        }));
        assert!(result.is_err());
        // If scope had unwound without waiting, some increments could
        // land after this read (use-after-free in the real engine).
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| panic!("job boom"));
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn jobs_cannot_leak_fault_context_across_jobs() {
        let pool = WorkerPool::new(1);
        pool.spawn(|| {
            bsched_faults::set_context(Some(("LEAKY|cell".to_owned(), 1)));
            panic!("die before cleanup");
        });
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(bsched_faults::current_context()).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(None));
    }

    #[test]
    fn scope_from_inside_a_worker_runs_inline() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner = Arc::clone(&pool);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || {
            // The single worker is busy with *this* job; queueing and
            // waiting would deadlock. Inline execution must not.
            let hits = AtomicUsize::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            inner.scope(jobs, || ());
            tx.send(hits.load(Ordering::SeqCst)).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(3));
    }

    #[test]
    fn shutdown_drains_and_is_idempotent() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        pool.shutdown();
        pool.shutdown();
        drop(tx);
        assert_eq!(rx.iter().count(), 16, "queued jobs finish before join");
        // Post-shutdown spawns degrade to inline execution, so this has
        // already run by the next line.
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.spawn(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    /// Regression: a spawn racing `shutdown()` could read
    /// `shutdown == false`, lose the CPU while the workers drained and
    /// exited, then enqueue a job nobody would ever run — for `scope`,
    /// a latch that never counts down. Every submitted job must run
    /// regardless of how the two interleave.
    #[test]
    fn spawns_racing_shutdown_are_never_stranded() {
        for _ in 0..100 {
            let pool = Arc::new(WorkerPool::new(2));
            let ran = Arc::new(AtomicUsize::new(0));
            let submitter = {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        let ran = Arc::clone(&ran);
                        pool.spawn(move || {
                            ran.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            };
            pool.shutdown();
            submitter.join().unwrap();
            // Post-join, every job has either run on a worker, been
            // swept inline by shutdown, or run inline by the submitter
            // itself — spawn-after-shutdown and the post-enqueue
            // re-check both execute synchronously, so no waiting.
            assert_eq!(ran.load(Ordering::SeqCst), 16, "job stranded");
        }
    }

    /// Regression for the shared-receiver design this pool replaced:
    /// with one mpsc receiver behind a mutex, workers serialised on job
    /// *fetch*; one slow job could not block others from fetching, but
    /// the lock convoy showed up as latency. Here: one job sleeps, and
    /// every other worker must keep making progress meanwhile.
    #[test]
    fn one_slow_job_does_not_stall_other_workers() {
        let pool = WorkerPool::new(4);
        let (slow_tx, slow_rx) = mpsc::channel();
        pool.spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            slow_tx.send(()).unwrap();
        });
        // 64 fast jobs submitted *after* the slow one; they must all
        // finish long before the slow job does.
        let (tx, rx) = mpsc::channel();
        let started = Instant::now();
        for i in 0..64usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut done = 0;
        while done < 64 {
            rx.recv_timeout(Duration::from_secs(10)).expect("fast job");
            done += 1;
        }
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "fast jobs waited on the slow one: {:?}",
            started.elapsed()
        );
        slow_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    }

    /// Steal-heavy skewed workload: one worker hoards a deque full of
    /// children and sleeps; the only way the children run promptly is
    /// for the other workers to steal them. Every worker must complete
    /// at least one item.
    #[test]
    fn skewed_workload_is_stolen_and_every_worker_participates() {
        const WORKERS: usize = 4;
        let pool = Arc::new(WorkerPool::new(WORKERS));
        let seen: Arc<Mutex<std::collections::HashSet<usize>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        let child = |seen: &Arc<Mutex<std::collections::HashSet<usize>>>| {
            let seen = Arc::clone(seen);
            let pool = Arc::clone(&pool);
            move || {
                if let Some(w) = pool.current_worker_index() {
                    seen.lock().unwrap().insert(w);
                }
            }
        };
        // The hoarder parks 64 children in its *own* deque and then
        // sleeps: while it sleeps, those children can only run by being
        // stolen.
        let (done_tx, done_rx) = mpsc::channel();
        let hoarder_pool = Arc::clone(&pool);
        let hoarder_seen = Arc::clone(&seen);
        let hoarder_child = child(&seen);
        pool.spawn(move || {
            for _ in 0..64 {
                let job = hoarder_child.clone();
                hoarder_pool.spawn(job);
            }
            // Sleep until the thieves have visibly run some children.
            for _ in 0..200 {
                std::thread::sleep(Duration::from_millis(5));
                if !hoarder_seen.lock().unwrap().is_empty() {
                    break;
                }
            }
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("hoarder finished");
        // Keep feeding small waves through the injector until every
        // worker (now including the freed hoarder) has run at least one
        // item.
        let deadline = Instant::now() + Duration::from_secs(30);
        while seen.lock().unwrap().len() < WORKERS {
            assert!(Instant::now() < deadline, "a worker never ran an item");
            for _ in 0..8 {
                pool.spawn(child(&seen));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let metrics = pool.metrics();
        assert!(
            metrics.steals > 0,
            "children in a sleeping worker's deque can only run via steals"
        );
    }

    #[test]
    fn metrics_report_parks_and_empty_queues() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        // Give workers a moment to go back to sleep.
        std::thread::sleep(Duration::from_millis(50));
        let metrics = pool.metrics();
        assert_eq!(metrics.queued, 0);
        assert!(metrics.parks > 0, "idle workers park instead of spinning");
    }

    #[test]
    fn worker_index_is_none_outside_the_pool() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.current_worker_index(), None);
        let other = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        let probe = Arc::new(pool);
        let probe_inner = Arc::clone(&probe);
        other.spawn(move || {
            // A worker of a *different* pool is not a worker of this
            // one.
            tx.send(probe_inner.current_worker_index()).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(None));
    }
}
