//! Deterministic fork-join parallelism for the experiment harness.
//!
//! The measurement protocol derives every random stream from a master
//! seed by *counter splitting* (`Pcg32::split`), so per-item work is a
//! pure function of the item index — which items run on which OS thread
//! cannot change any result. [`parallel_map`] exploits that: it fans a
//! slice out over a dynamic work queue and returns results **in item
//! order**, so callers fold them exactly as a serial loop would and get
//! bit-identical output.
//!
//! Thread count comes from the `BSCHED_THREADS` environment variable
//! (read on every call, so tests can toggle it), defaulting to the
//! machine's available parallelism. `BSCHED_THREADS=1` forces serial
//! execution everywhere.
//!
//! Nested calls degrade gracefully: a `parallel_map` running inside a
//! worker thread of another `parallel_map` executes serially instead of
//! oversubscribing the machine. The harness relies on this — the bench
//! crate parallelises over table cells while `evaluate()` parallelises
//! over blocks, and whichever fans out first wins.
//!
//! Panics are isolated **per item**, never per pool: a panicking item
//! cannot stall the work queue or poison the worker state, and every
//! other item still runs to completion. [`parallel_map`] then re-raises
//! the first panic in *item order* (so which thread hit it first cannot
//! change what the caller observes), while [`parallel_map_catch`]
//! instead hands each item's outcome back as a
//! `Result<R, `[`CaughtPanic`]`>` for callers that degrade gracefully.
//!
//! # Example
//!
//! ```
//! let squares = bsched_par::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

// Private normally; public under `--cfg bsched_model` so the model
// tests can drive push/pop/steal schedules directly.
#[cfg(not(bsched_model))]
mod deque;
#[cfg(bsched_model)]
pub mod deque;
pub mod pool;
pub mod sync;

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

pub use pool::{global_pool, PoolMetrics, WorkerPool};

thread_local! {
    /// Set inside pool worker threads so nested calls run serially
    /// instead of spawning threads-of-threads.
    pub(crate) static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a [`parallel_map`] worker thread.
#[must_use]
pub fn in_parallel_worker() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// The number of worker threads fan-out points should use right now:
/// `BSCHED_THREADS` if set to a positive integer, otherwise the
/// machine's available parallelism. Re-read on every call.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("BSCHED_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// A panic caught while mapping one item, rendered to text.
///
/// The original payload is consumed where it is caught (payloads are not
/// `Clone`); what travels back to the caller is the panic message — a
/// `&str` or `String` payload verbatim, anything else a placeholder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    message: String,
}

impl CaughtPanic {
    fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        Self { message }
    }

    /// The panic message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panicked: {}", self.message)
    }
}

impl std::error::Error for CaughtPanic {}

/// Maps `f` over `items` on up to [`max_threads`] threads, returning
/// results in item order.
///
/// `f` receives `(index, &item)` and must be a pure function of them for
/// the order guarantee to mean anything. Equivalent to
/// `items.iter().enumerate().map(..).collect()` — including panic
/// propagation — just faster.
///
/// # Panics
///
/// If any item's `f` panics, every other item still completes, and the
/// first panic **in item order** is re-raised with its original payload
/// — the same panic a serial loop would have surfaced, regardless of
/// which worker thread happened to hit one first.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(max_threads(), items, f)
}

/// [`parallel_map`] with an explicit thread budget (tests use this to
/// compare serial and parallel execution without touching the
/// environment). `threads <= 1` runs serially on the calling thread, as
/// does any call nested inside another `parallel_map`.
pub fn parallel_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for result in run_isolated(threads, items, f) {
        match result {
            Ok(r) => out.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Like [`parallel_map`], but a panicking item becomes an `Err` in its
/// slot instead of unwinding: all other items complete and their results
/// come back in item order. The degradation path of the table harness —
/// one poisoned cell must not take down the run.
pub fn parallel_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, CaughtPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_catch_with(max_threads(), items, f)
}

/// [`parallel_map_catch`] with an explicit thread budget.
pub fn parallel_map_catch_with<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<Result<R, CaughtPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_isolated(threads, items, f)
        .into_iter()
        .map(|r| r.map_err(|payload| CaughtPanic::from_payload(payload.as_ref())))
        .collect()
}

/// The shared engine: every item's `f` runs inside `catch_unwind`, so a
/// drain job can never unwind — the work queue always empties and no
/// pool worker ever dies mid-fan-out.
///
/// The parallel path runs on the [`global_pool`]: `threads - 1` drain
/// jobs are submitted and the calling thread drains alongside them, so
/// the fan-out makes progress even when every pool worker is busy with
/// someone else's work.
fn run_isolated<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Result<R, Box<dyn Any + Send>>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    let call = |i: usize| catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
    if threads <= 1 || in_parallel_worker() {
        return (0..n).map(call).collect();
    }

    // Pool workers inherit the spawner's fault context and cancel
    // token: a fan-out *within* one watched cell keeps charging faults
    // to that cell and still observes its watchdog.
    let fault_ctx = bsched_faults::current_context();
    let cancel = bsched_faults::current_cancel_token();

    // Dynamic work queue: drains race on a shared counter so uneven
    // item costs (block sizes vary wildly) still balance.
    type Outcome<R> = Result<R, Box<dyn Any + Send>>;
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Outcome<R>)>> = Mutex::new(Vec::new());
    let drain = |participant_is_caller: bool| {
        if !participant_is_caller {
            bsched_faults::set_context(fault_ctx.clone());
            bsched_faults::set_cancel_token(cancel.clone());
        }
        let mut local = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, call(i)));
        }
        if !local.is_empty() {
            done.lock().unwrap().extend(local);
        }
    };
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (1..threads)
        .map(|_| Box::new(|| drain(false)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool::global_pool().scope(jobs, || {
        // The caller keeps its own fault context but drains as a worker
        // so nested fan-outs inside `f` stay serial here too.
        IN_PARALLEL.with(|flag| flag.set(true));
        drain(true);
        IN_PARALLEL.with(|flag| flag.set(false));
    });

    let mut slots: Vec<Option<Result<R, _>>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in done.into_inner().unwrap() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one drain"))
        .collect()
}

/// A wall-clock watchdog fired before the guarded work finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout {
    /// The configured limit.
    pub limit: Duration,
}

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timed out after {:?}", self.limit)
    }
}

impl std::error::Error for Timeout {}

/// Runs `f` under a wall-clock watchdog.
///
/// `f` executes on a dedicated thread that inherits the caller's fault
/// context, nested-parallelism flag, and a fresh
/// [`bsched_faults::CancelToken`]. If it finishes within `limit`, its
/// result comes back as `Ok`. If the deadline passes first, the token is
/// cancelled — cooperative loops (the simulator checks between runs)
/// notice and bail — and the caller gets `Err(Timeout)` immediately; the
/// abandoned thread unwinds on its own and its late result is discarded.
///
/// # Errors
///
/// `Err(Timeout)` when the deadline passes before `f` returns.
///
/// # Panics
///
/// A panic inside `f` (within the deadline) is re-raised on the calling
/// thread with its original payload, exactly as if `f` had been called
/// directly.
pub fn run_with_timeout<R, F>(limit: Duration, f: F) -> Result<R, Timeout>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let token = bsched_faults::CancelToken::new();
    let worker_token = token.clone();
    let fault_ctx = bsched_faults::current_context();
    let nested = in_parallel_worker();
    let (tx, rx) = mpsc::sync_channel(1);
    // Detached on purpose: `std::thread::scope` would have to join the
    // runaway thread, which is exactly what a watchdog must not do.
    std::thread::spawn(move || {
        IN_PARALLEL.with(|flag| flag.set(nested));
        bsched_faults::set_context(fault_ctx);
        let outcome =
            bsched_faults::with_cancel_token(worker_token, || catch_unwind(AssertUnwindSafe(f)));
        // The receiver is gone once the watchdog fires; a late result
        // (or late panic) is deliberately dropped with it.
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(limit) {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(payload)) => resume_unwind(payload),
        Err(_) => {
            token.cancel();
            Err(Timeout { limit })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate `BSCHED_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = [10u64, 20, 30, 40, 50];
        let pairs = parallel_map_with(4, &items, |i, &x| (i, x));
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let sums = parallel_map_with(4, &outer, |_, &o| {
            assert!(in_parallel_worker());
            let inner: Vec<usize> = (0..50).collect();
            parallel_map_with(4, &inner, |_, &x| x + o)
                .iter()
                .sum::<usize>()
        });
        let expected: Vec<usize> = outer
            .iter()
            .map(|o| (0..50).sum::<usize>() + 50 * o)
            .collect();
        assert_eq!(sums, expected);
        assert!(!in_parallel_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(4, &[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn first_panic_in_item_order_wins() {
        // Items 2 and 6 both panic; whichever thread trips first, the
        // caller must always see item 2's payload.
        for threads in [1, 2, 4, 8] {
            let items: Vec<usize> = (0..8).collect();
            let payload = std::panic::catch_unwind(|| {
                parallel_map_with(threads, &items, |_, &x| {
                    if x == 2 || x == 6 {
                        std::panic::panic_any(format!("item {x}"));
                    }
                    x
                })
            })
            .unwrap_err();
            let message = payload.downcast_ref::<String>().unwrap();
            assert_eq!(message, "item 2", "threads = {threads}");
        }
    }

    #[test]
    fn catch_isolates_panics_per_item() {
        let items: Vec<u32> = (0..16).collect();
        for threads in [1, 3, 8] {
            let results = parallel_map_catch_with(threads, &items, |i, &x| {
                assert!(x % 5 != 3, "boom at {i}");
                x * 2
            });
            assert_eq!(results.len(), items.len());
            for (i, r) in results.iter().enumerate() {
                if i % 5 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert!(err.message().contains(&format!("boom at {i}")), "{err}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 2, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn pool_survives_a_panicking_item() {
        // A caught panic must leave no residue: the flag is clear on the
        // caller, and the next fan-out behaves normally.
        let _ = std::panic::catch_unwind(|| {
            parallel_map_with(4, &[0u8; 32], |i, _| {
                assert!(i != 9);
                i
            })
        });
        assert!(!in_parallel_worker(), "flag must not leak after a panic");
        let items: Vec<usize> = (0..64).collect();
        let doubled = parallel_map_with(4, &items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn caught_panic_renders_static_and_formatted_messages() {
        let results = parallel_map_catch_with(2, &[0u8, 1], |_, &x| {
            if x == 0 {
                panic!("static message");
            }
            std::panic::panic_any(7u32);
        });
        let first = results[0].as_ref().unwrap_err();
        assert_eq!(first.message(), "static message");
        assert_eq!(first.to_string(), "panicked: static message");
        let second = results[1].as_ref().unwrap_err();
        assert_eq!(second.message(), "non-string panic payload");
    }

    #[test]
    fn workers_inherit_fault_context_and_cancel_token() {
        let items: Vec<usize> = (0..32).collect();
        let token = bsched_faults::CancelToken::new();
        let contexts = bsched_faults::with_cell_context("CELL|ctx", 2, || {
            bsched_faults::with_cancel_token(token.clone(), || {
                parallel_map_with(4, &items, |_, _| {
                    (
                        bsched_faults::current_context(),
                        bsched_faults::current_cancel_token().is_some(),
                    )
                })
            })
        });
        for (ctx, has_token) in contexts {
            assert_eq!(ctx, Some(("CELL|ctx".to_owned(), 2)));
            assert!(has_token);
        }
        assert_eq!(bsched_faults::current_context(), None);
    }

    #[test]
    fn timeout_returns_result_within_deadline() {
        let out = run_with_timeout(Duration::from_secs(30), || 6 * 7);
        assert_eq!(out, Ok(42));
    }

    #[test]
    fn timeout_fires_and_cancels_the_worker() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let saw_cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&saw_cancel);
        let out = run_with_timeout(Duration::from_millis(20), move || {
            // Cooperative worker: poll the token like the simulator does.
            for _ in 0..2_000 {
                if bsched_faults::cancelled() {
                    flag.store(true, Ordering::SeqCst);
                    return 0u32;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            1
        });
        assert_eq!(
            out,
            Err(Timeout {
                limit: Duration::from_millis(20)
            })
        );
        assert!(out.unwrap_err().to_string().contains("timed out"));
        // Give the abandoned worker a moment to observe the cancel.
        for _ in 0..200 {
            if saw_cancel.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("worker never observed the cancelled token");
    }

    #[test]
    fn timeout_reraises_worker_panics() {
        let caught = std::panic::catch_unwind(|| {
            let _ = run_with_timeout(Duration::from_secs(30), || -> u32 {
                std::panic::panic_any("watchdogged boom".to_owned());
            });
        })
        .unwrap_err();
        assert_eq!(
            caught.downcast_ref::<String>().map(String::as_str),
            Some("watchdogged boom")
        );
    }

    #[test]
    fn timeout_worker_inherits_fault_context() {
        let ctx = bsched_faults::with_cell_context("CELL|t", 1, || {
            run_with_timeout(Duration::from_secs(30), bsched_faults::current_context)
        });
        assert_eq!(ctx, Ok(Some(("CELL|t".to_owned(), 1))));
    }

    #[test]
    fn env_var_controls_thread_budget() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("BSCHED_THREADS", "3");
        assert_eq!(max_threads(), 3);
        std::env::set_var("BSCHED_THREADS", "1");
        assert_eq!(max_threads(), 1);
        // Invalid values fall back to the hardware default.
        let default = std::thread::available_parallelism().map_or(1, usize::from);
        for bad in ["0", "-2", "many", ""] {
            std::env::set_var("BSCHED_THREADS", bad);
            assert_eq!(max_threads(), default, "BSCHED_THREADS={bad:?}");
        }
        std::env::remove_var("BSCHED_THREADS");
        assert_eq!(max_threads(), default);
    }
}
