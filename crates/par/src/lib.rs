//! Deterministic fork-join parallelism for the experiment harness.
//!
//! The measurement protocol derives every random stream from a master
//! seed by *counter splitting* (`Pcg32::split`), so per-item work is a
//! pure function of the item index — which items run on which OS thread
//! cannot change any result. [`parallel_map`] exploits that: it fans a
//! slice out over a dynamic work queue and returns results **in item
//! order**, so callers fold them exactly as a serial loop would and get
//! bit-identical output.
//!
//! Thread count comes from the `BSCHED_THREADS` environment variable
//! (read on every call, so tests can toggle it), defaulting to the
//! machine's available parallelism. `BSCHED_THREADS=1` forces serial
//! execution everywhere.
//!
//! Nested calls degrade gracefully: a `parallel_map` running inside a
//! worker thread of another `parallel_map` executes serially instead of
//! oversubscribing the machine. The harness relies on this — the bench
//! crate parallelises over table cells while `evaluate()` parallelises
//! over blocks, and whichever fans out first wins.
//!
//! # Example
//!
//! ```
//! let squares = bsched_par::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set inside `parallel_map` worker threads so nested calls run
    /// serially instead of spawning threads-of-threads.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a [`parallel_map`] worker thread.
#[must_use]
pub fn in_parallel_worker() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// The number of worker threads fan-out points should use right now:
/// `BSCHED_THREADS` if set to a positive integer, otherwise the
/// machine's available parallelism. Re-read on every call.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("BSCHED_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` on up to [`max_threads`] threads, returning
/// results in item order.
///
/// `f` receives `(index, &item)` and must be a pure function of them for
/// the order guarantee to mean anything. Equivalent to
/// `items.iter().enumerate().map(..).collect()` — including panic
/// propagation — just faster.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_with(max_threads(), items, f)
}

/// [`parallel_map`] with an explicit thread budget (tests use this to
/// compare serial and parallel execution without touching the
/// environment). `threads <= 1` runs serially on the calling thread, as
/// does any call nested inside another `parallel_map`.
pub fn parallel_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 || in_parallel_worker() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Dynamic work queue: workers race on a shared counter so uneven
    // item costs (block sizes vary wildly) still balance.
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_PARALLEL.with(|flag| flag.set(true));
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        done.push((i, f(i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(done) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate `BSCHED_THREADS`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = [10u64, 20, 30, 40, 50];
        let pairs = parallel_map_with(4, &items, |i, &x| (i, x));
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map_with(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let sums = parallel_map_with(4, &outer, |_, &o| {
            assert!(in_parallel_worker());
            let inner: Vec<usize> = (0..50).collect();
            parallel_map_with(4, &inner, |_, &x| x + o).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|o| (0..50).sum::<usize>() + 50 * o).collect();
        assert_eq!(sums, expected);
        assert!(!in_parallel_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with(4, &[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_var_controls_thread_budget() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("BSCHED_THREADS", "3");
        assert_eq!(max_threads(), 3);
        std::env::set_var("BSCHED_THREADS", "1");
        assert_eq!(max_threads(), 1);
        // Invalid values fall back to the hardware default.
        let default = std::thread::available_parallelism().map_or(1, usize::from);
        for bad in ["0", "-2", "many", ""] {
            std::env::set_var("BSCHED_THREADS", bad);
            assert_eq!(max_threads(), default, "BSCHED_THREADS={bad:?}");
        }
        std::env::remove_var("BSCHED_THREADS");
        assert_eq!(max_threads(), default);
    }
}
