//! The sync primitives the concurrency core is written against.
//!
//! Normally these are **zero-cost aliases for `std`** — `pub use`
//! re-exports, no wrappers, no branches — so production builds are
//! bit-for-bit what they were before the model checker existed. Under
//! `--cfg bsched_model` (set via `RUSTFLAGS`, never by a feature, so
//! it cannot leak into a release build through unification) the same
//! names resolve to [`bsched_model::sync`]'s instrumented types, whose
//! every operation is a yield point for the deterministic scheduler.
//!
//! Code under `crates/par` and `crates/serve` imports atomics, locks,
//! condvars, and thread spawning from here (or from the
//! `bsched_par::sync` re-export) instead of `std::sync` /
//! `std::thread`. `std::sync::Arc` and friends that carry no
//! scheduling behaviour stay on `std`.

#[cfg(bsched_model)]
pub use bsched_model::sync::*;

#[cfg(not(bsched_model))]
mod std_alias {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// The `std::thread` subset the concurrency core uses.
    pub mod thread {
        pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle, Result};
    }
}

#[cfg(not(bsched_model))]
pub use std_alias::*;
