//! Measurement: the §4.3 simulation and bootstrap protocol.

use bsched_cpusim::{simulate_block_traced, try_simulate_runs_stats, ProcessorModel};
use bsched_memsim::LatencyModel;
use bsched_stats::{bootstrap_means, paired_improvement, Improvement, Pcg32};
use bsched_verify::{verify_timeline, ValidationLevel};

use crate::error::PipelineError;
use crate::pipeline::CompiledProgram;

/// Measurement protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Full simulations per block ("30 times with new random numbers").
    pub runs: u32,
    /// Bootstrap resampled means per block ("until we have 100 sample
    /// means").
    pub resamples: usize,
    /// Processor model (UNLIMITED / MAX-8 / LEN-8).
    pub processor: ProcessorModel,
    /// Instructions issued per cycle (§6 superscalar extension; the
    /// paper's machines are single-issue).
    pub issue_width: u32,
    /// Master seed; every block/run derives its stream from it.
    pub seed: u64,
    /// At [`ValidationLevel::Full`], each block's run-0 simulation is
    /// replayed with tracing and the timeline checked against the memory
    /// model's declared latency support. Defaults to `BSCHED_VALIDATE`;
    /// below `Full` this field changes nothing.
    pub validation: ValidationLevel,
    /// Watchdog: a single simulation run whose issue clock passes this
    /// many cycles is killed with
    /// [`SimError::BudgetExceeded`](bsched_cpusim::SimError). `None`
    /// disables the check. Defaults to `BSCHED_CYCLE_BUDGET` (cycles;
    /// `0` or `off` disables), falling back to
    /// [`DEFAULT_CYCLE_BUDGET`] — far above any real block, so clean
    /// runs never notice it.
    pub cycle_budget: Option<u64>,
}

/// The default per-run cycle budget: one billion cycles. The largest
/// benchmark blocks finish in thousands of cycles, so only a runaway
/// simulation (e.g. an injected stall fault) can reach it.
pub const DEFAULT_CYCLE_BUDGET: u64 = 1_000_000_000;

fn cycle_budget_from_env() -> Option<u64> {
    match std::env::var("BSCHED_CYCLE_BUDGET") {
        Ok(v) => {
            let v = v.trim();
            if v.eq_ignore_ascii_case("off") || v == "0" {
                None
            } else {
                v.parse().ok().or(Some(DEFAULT_CYCLE_BUDGET))
            }
        }
        Err(_) => Some(DEFAULT_CYCLE_BUDGET),
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            runs: 30,
            resamples: 100,
            processor: ProcessorModel::Unlimited,
            issue_width: 1,
            seed: 0x5EED,
            validation: ValidationLevel::from_env(),
            cycle_budget: cycle_budget_from_env(),
        }
    }
}

/// A program's measured behaviour under one memory system and processor.
#[derive(Debug, Clone)]
pub struct ProgramEval {
    /// 100 (or `resamples`) bootstrap program runtimes: each is the
    /// frequency-weighted sum of per-block resampled mean runtimes.
    pub bootstrap_runtimes: Vec<f64>,
    /// Mean of the bootstrap runtimes (the runtime the tables report).
    pub mean_runtime: f64,
    /// Frequency-weighted dynamic instruction count.
    pub dynamic_instructions: f64,
    /// Frequency-weighted mean interlock cycles.
    pub mean_interlocks: f64,
}

impl ProgramEval {
    /// Percentage of execution cycles that are interlocks (TI%/BI% in
    /// Tables 3 and 5).
    #[must_use]
    pub fn interlock_percent(&self) -> f64 {
        let cycles = self.dynamic_instructions + self.mean_interlocks;
        if cycles == 0.0 {
            0.0
        } else {
            self.mean_interlocks / cycles * 100.0
        }
    }
}

/// One block's contribution to the program-level statistics: the
/// bootstrap means of its run times plus its mean interlock count. A
/// pure function of `(block, index, config)` — every random stream is
/// counter-split from the master seed — so blocks can be computed in any
/// order, on any thread, with identical results.
fn block_stats(
    cb: &crate::pipeline::CompiledBlock,
    index: usize,
    mem: &dyn LatencyModel,
    config: &EvalConfig,
) -> Result<(Vec<f64>, f64), PipelineError> {
    let sim_root = Pcg32::seed_from_u64(config.seed);
    let boot_root = Pcg32::seed_from_u64(config.seed ^ 0xB007_5742_u64);
    let block_rng = sim_root.split(index as u64);
    // One simulation pass per (block, run): runtimes and interlock
    // accounting come from the same runs. The guarded entry point is
    // bit-identical to the unguarded one on the happy path; it only
    // adds the cycle-budget and cancellation watchdogs.
    let stats = try_simulate_runs_stats(
        &cb.block,
        mem,
        config.processor,
        config.issue_width,
        config.runs,
        config.cycle_budget,
        &block_rng,
    )?;
    if config.validation >= ValidationLevel::Full && config.issue_width == 1 && config.runs > 0 {
        // Replay run 0 with tracing (`split` is pure, so the extra
        // simulation reuses run 0's exact latency stream and perturbs
        // nothing) and check the timeline against the model's declared
        // latency support and the min-latency critical path.
        let mut run_rng = block_rng.split(0);
        let (result, events) =
            simulate_block_traced(&cb.block, mem, config.processor, &mut run_rng);
        verify_timeline(
            &cb.block,
            &events,
            result.cycles(),
            mem.min_latency(),
            mem.max_latency(),
        )?;
    }
    let mut boot_rng = boot_root.split(index as u64);
    let means = bootstrap_means(&stats.elapsed, config.resamples, &mut boot_rng);
    Ok((means, stats.mean_interlocks()))
}

/// Folds per-block statistics into a [`ProgramEval`], always in block
/// order so floating-point accumulation is identical however the
/// per-block work was scheduled.
fn combine(
    program: &CompiledProgram,
    per_block: Vec<(Vec<f64>, f64)>,
    config: &EvalConfig,
) -> ProgramEval {
    let mut bootstrap_runtimes = vec![0.0; config.resamples];
    let mut mean_interlocks = 0.0;
    for (cb, (means, interlocks)) in program.blocks.iter().zip(per_block) {
        let freq = cb.block.frequency();
        for (total, m) in bootstrap_runtimes.iter_mut().zip(&means) {
            *total += m * freq;
        }
        mean_interlocks += interlocks * freq;
    }
    let mean_runtime =
        bootstrap_runtimes.iter().sum::<f64>() / bootstrap_runtimes.len().max(1) as f64;
    ProgramEval {
        bootstrap_runtimes,
        mean_runtime,
        dynamic_instructions: program.dynamic_instructions(),
        mean_interlocks,
    }
}

/// Runs the full measurement protocol on a compiled program.
///
/// Per block: `runs` independent simulations (independent latency draws,
/// deterministically derived from `config.seed`), bootstrap-resampled
/// into `resamples` means; block means are scaled by profiled frequency
/// and summed into program-level bootstrap runtimes, exactly as §4.3
/// describes.
///
/// Blocks are evaluated in parallel (`BSCHED_THREADS` workers) when the
/// memory model reports itself thread-safe via
/// [`LatencyModel::as_sync`]; stateful models (`LineCache`,
/// `MarkovNetworkModel`) evaluate serially. Either way the result is
/// bit-identical to [`evaluate_serial`]: per-block work depends only on
/// the block index and master seed, and contributions are folded in
/// block order.
#[must_use]
pub fn evaluate(
    program: &CompiledProgram,
    mem: &dyn LatencyModel,
    config: &EvalConfig,
) -> ProgramEval {
    try_evaluate(program, mem, config).expect("evaluation failed validation")
}

/// [`evaluate`] restricted to the calling thread, accepting stateful
/// (non-`Sync`) models. `evaluate` delegates here when parallelism is
/// unavailable; tests use it to check serial/parallel parity.
#[must_use]
pub fn evaluate_serial(
    program: &CompiledProgram,
    mem: &dyn LatencyModel,
    config: &EvalConfig,
) -> ProgramEval {
    try_evaluate_serial(program, mem, config).expect("evaluation failed validation")
}

/// [`evaluate`] with validation findings surfaced as errors instead of
/// panics.
///
/// # Errors
///
/// At [`ValidationLevel::Full`], returns the first (in block order)
/// timeline finding; below `Full`, never fails.
pub fn try_evaluate(
    program: &CompiledProgram,
    mem: &dyn LatencyModel,
    config: &EvalConfig,
) -> Result<ProgramEval, PipelineError> {
    match mem.as_sync() {
        Some(sync_mem) if bsched_par::max_threads() > 1 => {
            let per_block = bsched_par::parallel_map(&program.blocks, |i, cb| {
                block_stats(cb, i, sync_mem, config)
            });
            let per_block = per_block.into_iter().collect::<Result<Vec<_>, _>>()?;
            Ok(combine(program, per_block, config))
        }
        _ => try_evaluate_serial(program, mem, config),
    }
}

/// [`try_evaluate`] restricted to the calling thread.
///
/// # Errors
///
/// Same contract as [`try_evaluate`].
pub fn try_evaluate_serial(
    program: &CompiledProgram,
    mem: &dyn LatencyModel,
    config: &EvalConfig,
) -> Result<ProgramEval, PipelineError> {
    let per_block = program
        .blocks
        .iter()
        .enumerate()
        .map(|(i, cb)| block_stats(cb, i, mem, config))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(combine(program, per_block, config))
}

/// Pairs a traditional-scheduler evaluation with a balanced one and
/// returns the percentage improvement with its 95% confidence interval
/// (§4.3: "the 100 sample means from the balanced scheduler are paired
/// with an equal number from the traditional scheduler").
#[must_use]
pub fn compare(traditional: &ProgramEval, balanced: &ProgramEval) -> Improvement {
    paired_improvement(
        &traditional.bootstrap_runtimes,
        &balanced.bootstrap_runtimes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, SchedulerChoice};
    use bsched_core::Ratio;
    use bsched_ir::{BlockBuilder, Function};
    use bsched_memsim::{CacheModel, FixedLatency, NetworkModel};

    fn demo_program() -> Function {
        let mut blocks = Vec::new();
        for (n, freq) in [(8usize, 100.0), (16, 40.0)] {
            let mut b = BlockBuilder::new(format!("b{n}"));
            b.set_frequency(freq);
            let region = b.fresh_region();
            let base = b.def_int("base");
            let vals: Vec<_> = (0..n)
                .map(|k| b.load_region("l", region, base, Some(8 * k as i64)))
                .collect();
            let mut acc = vals[0];
            for &v in &vals[1..] {
                acc = b.fadd("a", acc, v);
            }
            b.store_region(region, acc, base, Some(9_000));
            blocks.push(b.finish());
        }
        Function::new("demo", blocks)
    }

    #[test]
    fn evaluation_is_deterministic() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let cfg = EvalConfig::default();
        let mem = CacheModel::l80_5();
        let a = evaluate(&prog, &mem, &cfg);
        let b = evaluate(&prog, &mem, &cfg);
        assert_eq!(a.bootstrap_runtimes, b.bootstrap_runtimes);
        assert_eq!(a.mean_interlocks, b.mean_interlocks);
    }

    #[test]
    fn fixed_latency_one_gives_zero_interlocks_everywhere() {
        // With actual latency 1 every schedule is perfect.
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let eval = evaluate(&prog, &FixedLatency::new(1), &EvalConfig::default());
        assert_eq!(eval.mean_interlocks, 0.0);
        assert_eq!(eval.interlock_percent(), 0.0);
        // Runtime equals dynamic instructions exactly.
        assert!((eval.mean_runtime - eval.dynamic_instructions).abs() < 1e-9);
    }

    #[test]
    fn balanced_beats_traditional_under_uncertainty() {
        // The paper's headline claim on a high-variance network.
        let pipeline = Pipeline::default();
        let func = demo_program();
        let balanced = pipeline
            .compile(&func, &SchedulerChoice::balanced())
            .unwrap();
        let traditional = pipeline
            .compile(&func, &SchedulerChoice::traditional(Ratio::from_int(2)))
            .unwrap();
        let mem = NetworkModel::new(2.0, 5.0);
        let cfg = EvalConfig::default();
        let b = evaluate(&balanced, &mem, &cfg);
        let t = evaluate(&traditional, &mem, &cfg);
        let imp = compare(&t, &b);
        assert!(
            imp.mean_percent > 0.0,
            "balanced should win under N(2,5): {imp}"
        );
    }

    #[test]
    fn identical_programs_improve_zero() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let eval = evaluate(&prog, &CacheModel::l80_5(), &EvalConfig::default());
        let imp = compare(&eval, &eval);
        assert_eq!(imp.mean_percent, 0.0);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let cfg = EvalConfig::default();
        for mem in [
            bsched_memsim::MemorySystem::from(CacheModel::l80_5()),
            NetworkModel::new(3.0, 5.0).into(),
        ] {
            assert!(mem.as_sync().is_some());
            let par = evaluate(&prog, &mem, &cfg);
            let ser = evaluate_serial(&prog, &mem, &cfg);
            assert_eq!(par.bootstrap_runtimes, ser.bootstrap_runtimes);
            assert_eq!(par.mean_runtime, ser.mean_runtime);
            assert_eq!(par.mean_interlocks, ser.mean_interlocks);
        }
    }

    #[test]
    fn stateful_models_still_evaluate() {
        // LineCache has a RefCell tag store, reports as_sync() = None and
        // must take the serial path inside evaluate() unchanged.
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let mem = bsched_memsim::LineCache::small_l1();
        assert!(mem.as_sync().is_none());
        let cfg = EvalConfig::default();
        let a = evaluate(&prog, &mem, &cfg);
        let b = evaluate_serial(&prog, &mem, &cfg);
        assert_eq!(a.bootstrap_runtimes, b.bootstrap_runtimes);
    }

    #[test]
    fn tiny_cycle_budget_surfaces_as_a_typed_sim_error() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let cfg = EvalConfig {
            cycle_budget: Some(2),
            ..EvalConfig::default()
        };
        let err = try_evaluate(&prog, &CacheModel::l80_5(), &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Sim(bsched_cpusim::SimError::BudgetExceeded { .. })
            ),
            "{err}"
        );
        assert_eq!(err.failure_kind().id(), "budget-exceeded");
    }

    #[test]
    fn default_budget_is_invisible_to_clean_runs() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let with_budget = EvalConfig::default();
        let without = EvalConfig {
            cycle_budget: None,
            ..EvalConfig::default()
        };
        let mem = CacheModel::l80_5();
        let a = evaluate(&prog, &mem, &with_budget);
        let b = evaluate(&prog, &mem, &without);
        assert_eq!(a.bootstrap_runtimes, b.bootstrap_runtimes);
    }

    #[test]
    fn interlock_percent_bounds() {
        let prog = Pipeline::default()
            .compile(&demo_program(), &SchedulerChoice::balanced())
            .unwrap();
        let eval = evaluate(&prog, &NetworkModel::new(30.0, 5.0), &EvalConfig::default());
        let pct = eval.interlock_percent();
        assert!(pct > 0.0 && pct < 100.0, "{pct}");
        // At mean latency 30 on these small blocks, interlocks dominate.
        assert!(pct > 30.0, "{pct}");
    }
}
