//! The end-to-end experiment pipeline (paper §4).
//!
//! Reproduces the paper's compilation and measurement flow for one
//! program and one scheduler:
//!
//! ```text
//! block ──DAG──► schedule pass 1 (virtual regs)
//!       ──linear-scan regalloc (FIFO spill pool)──► spill-augmented block
//!       ──DAG──► schedule pass 2 (physical regs)
//!       ──cpusim × memsim, 30 seeded runs──► cycle samples
//!       ──bootstrap (100 resampled means, frequency-weighted)──► program runtime
//! ```
//!
//! [`Pipeline::compile`] performs the two scheduling passes around
//! register allocation (§4.1); [`evaluate`] runs the §4.3 measurement
//! protocol; [`compare`] pairs two evaluations into the percentage
//! improvement the paper's tables report.
//!
//! # Example
//!
//! ```
//! use bsched_core::Ratio;
//! use bsched_cpusim::ProcessorModel;
//! use bsched_memsim::CacheModel;
//! use bsched_pipeline::{compare, evaluate, EvalConfig, Pipeline, SchedulerChoice};
//! use bsched_ir::{BlockBuilder, Function};
//!
//! let mut b = BlockBuilder::new("kernel");
//! let region = b.fresh_region();
//! let base = b.def_int("base");
//! let x = b.load_region("x", region, base, Some(0));
//! let y = b.load_region("y", region, base, Some(8));
//! let s = b.fadd("s", x, y);
//! b.store_region(region, s, base, Some(16));
//! let program = Function::new("demo", vec![b.finish()]);
//!
//! let pipeline = Pipeline::default();
//! let balanced = pipeline.compile(&program, &SchedulerChoice::balanced()).unwrap();
//! let traditional =
//!     pipeline.compile(&program, &SchedulerChoice::traditional(Ratio::from_int(2))).unwrap();
//! let eval = EvalConfig { processor: ProcessorModel::Unlimited, ..EvalConfig::default() };
//! let mem = CacheModel::l80_5();
//! let b_eval = evaluate(&balanced, &mem, &eval);
//! let t_eval = evaluate(&traditional, &mem, &eval);
//! let improvement = compare(&t_eval, &b_eval);
//! assert!(improvement.mean_percent.is_finite());
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod pipeline;
pub mod policy;

pub use error::{AnalyzeError, PipelineError};
pub use eval::{
    compare, evaluate, evaluate_serial, try_evaluate, try_evaluate_serial, EvalConfig, ProgramEval,
    DEFAULT_CYCLE_BUDGET,
};
pub use pipeline::{
    AllocationStrategy, AnalysisGate, CompiledBlock, CompiledProgram, Pipeline, SchedulerChoice,
};
pub use policy::{PolicyParseError, PolicySpec, WeightFamily, POLICY_ARTIFACT_VERSION};
