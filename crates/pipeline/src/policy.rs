//! Tuned scheduling policies: the autotuner's candidate representation.
//!
//! A [`PolicySpec`] pins down every free parameter of one list-scheduling
//! configuration: the weight-function family (balanced, traditional,
//! block-average, or an exact balanced/traditional blend), the
//! fractional-weight rounding mode, and the ready-list tie-break chain.
//! `bsched-tune` searches over these; once found, a policy is a
//! first-class [`crate::SchedulerChoice`] variant usable everywhere a
//! scheduler is — the batch tables, `bsched verify`/`analyze`, and the
//! serving daemon.
//!
//! Two serializations, both lossless:
//!
//! * the **canonical string** (`family=…;rounding=…;ties=…`) — a single
//!   unambiguous line used for cache keys, wire specs
//!   (`"scheduler":"policy:family=…"`), and display;
//! * the **JSON artifact** written by `bsched tune --out` and read back
//!   by `--scheduler policy:<file.json>`.

use std::fmt;

use bsched_analyze::json::{self, Json};
use bsched_core::{Ratio, Rounding, TieBreakChain};
use bsched_dag::ChancesMethod;

/// Magic/version tag of the JSON policy artifact.
pub const POLICY_ARTIFACT_VERSION: &str = "bsched-policy-v1";

/// The weight-function family a policy schedules with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightFamily {
    /// The paper's balanced weights.
    Balanced {
        /// Exact `Chances` DP or the §3 level approximation.
        method: ChancesMethod,
    },
    /// One fixed optimistic load latency.
    Traditional {
        /// The assumed load latency.
        latency: Ratio,
    },
    /// The §3 block-average alternative.
    Average,
    /// Exact convex combination `share·balanced + (1−share)·traditional`.
    Blend {
        /// The traditional half's optimistic latency.
        latency: Ratio,
        /// Balanced weight in the combination, in `[0, 1]`.
        share: Ratio,
    },
}

/// One fully specified scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicySpec {
    /// Weight-function family.
    pub family: WeightFamily,
    /// How fractional weights become integer latencies.
    pub rounding: Rounding,
    /// Ready-list tie-break chain.
    pub ties: TieBreakChain,
}

/// Why a policy spec or artifact failed to parse. Always a typed error,
/// never a panic: malformed artifacts come from disk and the network.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyParseError(pub String);

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad policy: {}", self.0)
    }
}

impl std::error::Error for PolicyParseError {}

fn err(msg: impl Into<String>) -> PolicyParseError {
    PolicyParseError(msg.into())
}

/// Renders a ratio as the unambiguous `num/den` form (never the
/// human `2 3/5` mixed form, which contains a space).
fn ratio_canonical(r: Ratio) -> String {
    format!("{}/{}", r.numer(), r.denom())
}

fn parse_ratio(s: &str) -> Result<Ratio, PolicyParseError> {
    s.parse::<Ratio>()
        .map_err(|e| err(format!("bad ratio {s:?}: {e}")))
}

impl PolicySpec {
    /// The policy equivalent to [`crate::SchedulerChoice::balanced`]
    /// under the default pipeline: exact balanced weights, nearest
    /// rounding, the paper's tie-break chain. Always a member of the
    /// tuner's candidate space, which is why a tuned policy can never
    /// score worse than balanced under the same evaluation.
    #[must_use]
    pub fn balanced_default() -> Self {
        Self {
            family: WeightFamily::Balanced {
                method: ChancesMethod::Exact,
            },
            rounding: Rounding::Nearest,
            ties: TieBreakChain::default(),
        }
    }

    /// The canonical one-line form: `family=…;rounding=…;ties=…`.
    ///
    /// Field order is fixed and every parameter is spelled out, so two
    /// distinct policies always render distinct strings — this is what
    /// feeds the serving cache's 128-bit key.
    #[must_use]
    pub fn canonical(&self) -> String {
        let family = match self.family {
            WeightFamily::Balanced {
                method: ChancesMethod::Exact,
            } => "balanced".to_owned(),
            WeightFamily::Balanced {
                method: ChancesMethod::LevelApprox,
            } => "balanced-approx".to_owned(),
            WeightFamily::Traditional { latency } => {
                format!("traditional:{}", ratio_canonical(latency))
            }
            WeightFamily::Average => "average".to_owned(),
            WeightFamily::Blend { latency, share } => format!(
                "blend:{}:{}",
                ratio_canonical(latency),
                ratio_canonical(share)
            ),
        };
        let rounding = match self.rounding {
            Rounding::Nearest => "nearest",
            Rounding::Floor => "floor",
            Rounding::Ceil => "ceil",
        };
        format!("family={family};rounding={rounding};ties={}", self.ties)
    }

    /// Parses the canonical form produced by [`PolicySpec::canonical`].
    ///
    /// # Errors
    ///
    /// A typed [`PolicyParseError`] naming the first malformed field.
    pub fn parse_canonical(spec: &str) -> Result<Self, PolicyParseError> {
        let mut family = None;
        let mut rounding = None;
        let mut ties = None;
        for part in spec.trim().split(';') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got {part:?}")))?;
            match key {
                "family" => family = Some(Self::parse_family(value)?),
                "rounding" => {
                    rounding = Some(match value {
                        "nearest" => Rounding::Nearest,
                        "floor" => Rounding::Floor,
                        "ceil" => Rounding::Ceil,
                        other => {
                            return Err(err(format!(
                                "unknown rounding {other:?} (nearest|floor|ceil)"
                            )))
                        }
                    });
                }
                "ties" => {
                    ties =
                        Some(TieBreakChain::parse(value).map_err(|e| err(format!("ties: {e}")))?);
                }
                other => return Err(err(format!("unknown policy field {other:?}"))),
            }
        }
        Ok(Self {
            family: family.ok_or_else(|| err("missing field \"family\""))?,
            rounding: rounding.ok_or_else(|| err("missing field \"rounding\""))?,
            ties: ties.ok_or_else(|| err("missing field \"ties\""))?,
        })
    }

    fn parse_family(value: &str) -> Result<WeightFamily, PolicyParseError> {
        match value {
            "balanced" => Ok(WeightFamily::Balanced {
                method: ChancesMethod::Exact,
            }),
            "balanced-approx" => Ok(WeightFamily::Balanced {
                method: ChancesMethod::LevelApprox,
            }),
            "average" => Ok(WeightFamily::Average),
            other => {
                if let Some(lat) = other.strip_prefix("traditional:") {
                    Ok(WeightFamily::Traditional {
                        latency: parse_ratio(lat)?,
                    })
                } else if let Some(rest) = other.strip_prefix("blend:") {
                    let (lat, share) = rest
                        .split_once(':')
                        .ok_or_else(|| err(format!("blend wants latency:share, got {rest:?}")))?;
                    let share = parse_ratio(share)?;
                    if share < Ratio::ZERO || share > Ratio::ONE {
                        return Err(err(format!("blend share {share} outside [0, 1]")));
                    }
                    let latency = parse_ratio(lat)?;
                    if latency <= Ratio::ZERO {
                        return Err(err(format!("blend latency {latency} must be positive")));
                    }
                    Ok(WeightFamily::Blend { latency, share })
                } else {
                    Err(err(format!(
                        "unknown family {other:?} \
                         (balanced|balanced-approx|traditional:<r>|average|blend:<r>:<r>)"
                    )))
                }
            }
        }
    }

    /// Renders the JSON policy artifact `bsched tune --out` writes.
    /// `meta` entries (already-rendered JSON values) are appended after
    /// the policy fields — the tuner records its score and provenance
    /// there without this type knowing about them.
    #[must_use]
    pub fn to_artifact_json(&self, meta: &[(&str, String)]) -> String {
        let mut out = format!(
            "{{\"policy\":{},\"canonical\":{}",
            json::string(POLICY_ARTIFACT_VERSION),
            json::string(&self.canonical())
        );
        for (key, value) in meta {
            out.push_str(&format!(",{}:{value}", json::string(key)));
        }
        out.push('}');
        out
    }

    /// Parses a JSON policy artifact (the whole file contents).
    ///
    /// # Errors
    ///
    /// A typed [`PolicyParseError`] on non-JSON input, a missing or
    /// mismatched version tag, or a malformed canonical string.
    pub fn from_artifact_json(text: &str) -> Result<Self, PolicyParseError> {
        let v: Json = json::parse(text.trim()).ok_or_else(|| err("artifact is not valid JSON"))?;
        let version = v
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing \"policy\" version tag"))?;
        if version != POLICY_ARTIFACT_VERSION {
            return Err(err(format!(
                "unsupported policy version {version:?} (want {POLICY_ARTIFACT_VERSION:?})"
            )));
        }
        let canonical = v
            .get("canonical")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing \"canonical\" policy string"))?;
        Self::parse_canonical(canonical)
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_core::{TieBreak, TiePrefer};

    fn sample() -> PolicySpec {
        PolicySpec {
            family: WeightFamily::Blend {
                latency: Ratio::from_int(30),
                share: Ratio::new(1, 2),
            },
            rounding: Rounding::Ceil,
            ties: TieBreakChain::try_from_keys(&[
                (TieBreak::Slack, TiePrefer::Low),
                (TieBreak::PressureDelta, TiePrefer::High),
            ])
            .unwrap(),
        }
    }

    #[test]
    fn canonical_roundtrip_every_family() {
        let specs = [
            PolicySpec::balanced_default(),
            PolicySpec {
                family: WeightFamily::Balanced {
                    method: ChancesMethod::LevelApprox,
                },
                ..PolicySpec::balanced_default()
            },
            PolicySpec {
                family: WeightFamily::Traditional {
                    latency: Ratio::new(13, 5),
                },
                rounding: Rounding::Floor,
                ties: TieBreakChain::parse("source-").unwrap(),
            },
            PolicySpec {
                family: WeightFamily::Average,
                ..PolicySpec::balanced_default()
            },
            sample(),
        ];
        for spec in specs {
            let text = spec.canonical();
            assert_eq!(PolicySpec::parse_canonical(&text), Ok(spec), "{text}");
        }
    }

    #[test]
    fn canonical_is_golden_stable() {
        // Pinned: this string feeds the serving cache key. Changing it
        // invalidates every cached entry for tuned policies — do so
        // knowingly.
        assert_eq!(
            sample().canonical(),
            "family=blend:30/1:1/2;rounding=ceil;ties=slack-,pressure+"
        );
        assert_eq!(
            PolicySpec::balanced_default().canonical(),
            "family=balanced;rounding=nearest;ties=pressure+,exposed+"
        );
    }

    #[test]
    fn artifact_roundtrip_and_meta() {
        let spec = sample();
        let text = spec.to_artifact_json(&[("score", "123.5".to_owned())]);
        assert_eq!(PolicySpec::from_artifact_json(&text), Ok(spec));
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("score").unwrap().as_f64(), Some(123.5));
    }

    #[test]
    fn typed_errors_for_malformed_input() {
        for (text, needle) in [
            ("", "expected key=value"),
            ("family=balanced", "missing field \"rounding\""),
            ("family=bogus;rounding=nearest;ties=", "unknown family"),
            ("family=balanced;rounding=up;ties=", "unknown rounding"),
            ("family=balanced;rounding=ceil;ties=junk", "ties:"),
            (
                "family=blend:30/1:3/2;rounding=ceil;ties=",
                "outside [0, 1]",
            ),
            ("family=blend:0/1:1/2;rounding=ceil;ties=", "positive"),
        ] {
            let e = PolicySpec::parse_canonical(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text} -> {e}");
        }
        for (text, needle) in [
            ("not json", "not valid JSON"),
            ("{}", "version tag"),
            (r#"{"policy":"v0"}"#, "unsupported policy version"),
            (r#"{"policy":"bsched-policy-v1"}"#, "missing \"canonical\""),
        ] {
            let e = PolicySpec::from_artifact_json(text).expect_err(text);
            assert!(e.to_string().contains(needle), "{text} -> {e}");
        }
    }
}
