//! Compilation: two list-scheduling passes around register allocation.

use bsched_analyze::{Analyzer, Severity};
use bsched_core::{
    AverageParallelismWeights, BalancedWeights, BlendedWeights, Direction, ListScheduler, Ratio,
    Rounding, TraditionalWeights, WeightAssigner,
};
use bsched_dag::{build_dag, AliasModel, ChancesMethod};
use bsched_ir::{BasicBlock, Function};
use bsched_regalloc::{allocate, allocate_usage_count, rename_registers, AllocatorConfig};
use bsched_verify::{verify_allocation, verify_schedule, ValidationLevel};

use crate::error::{AnalyzeError, PipelineError};
use crate::policy::{PolicySpec, WeightFamily};

/// Whether the static analyzer gates compilation (`bsched-analyze`).
///
/// The gate runs the correctness lints on each *input* block before the
/// first scheduling pass — catching malformed programs before they turn
/// into meaningless table cells. It must stay `Copy` (the [`Pipeline`]
/// is `Copy`), so it carries a policy, not a lint configuration; callers
/// needing per-lint control run an [`Analyzer`] themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisGate {
    /// No pre-scheduling analysis (default: compiled output is
    /// byte-identical to a build without the analyzer).
    #[default]
    Off,
    /// Fail compilation when any error-level lint fires.
    Check,
    /// Fail compilation when any lint fires at warn level or above.
    Strict,
}

impl AnalysisGate {
    /// Reads the `BSCHED_ANALYZE` environment variable
    /// (`off`/`check`/`strict`; unset or unrecognised means [`Off`](AnalysisGate::Off)).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("BSCHED_ANALYZE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "check" | "1" => AnalysisGate::Check,
                "strict" => AnalysisGate::Strict,
                _ => AnalysisGate::Off,
            },
            Err(_) => AnalysisGate::Off,
        }
    }

    /// The lowest severity that blocks compilation, or `None` when off.
    #[must_use]
    pub fn blocking_severity(self) -> Option<Severity> {
        match self {
            AnalysisGate::Off => None,
            AnalysisGate::Check => Some(Severity::Error),
            AnalysisGate::Strict => Some(Severity::Warn),
        }
    }
}

/// Which register allocator the pipeline runs (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationStrategy {
    /// The modern Belady-evicting linear scan (default).
    #[default]
    BeladyScan,
    /// The 1992-vintage usage-count, spill-everywhere allocator that
    /// recreates GCC 2.2.2's spill behaviour (Table 4's generator).
    UsageCount,
}

/// Which weight-assignment strategy drives both scheduling passes.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerChoice {
    /// The paper's balanced scheduler.
    Balanced {
        /// How `Chances` is computed (exact DP or the §3 approximation).
        method: ChancesMethod,
    },
    /// A traditional list scheduler with one optimistic load latency.
    Traditional {
        /// The assumed load latency (cache-hit time, effective access
        /// time, or network mean — Table 2's "Optimistic Latency").
        latency: Ratio,
    },
    /// The §3 block-average alternative (ablation).
    Average,
    /// A tuned policy discovered by `bsched-tune`: the policy's own
    /// rounding mode and tie-break chain override the pipeline defaults.
    Tuned(PolicySpec),
}

impl SchedulerChoice {
    /// Balanced scheduling with the exact `Chances` computation.
    #[must_use]
    pub fn balanced() -> Self {
        SchedulerChoice::Balanced {
            method: ChancesMethod::Exact,
        }
    }

    /// Traditional scheduling at `latency`.
    #[must_use]
    pub fn traditional(latency: Ratio) -> Self {
        SchedulerChoice::Traditional { latency }
    }

    /// Display name for experiment output.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SchedulerChoice::Balanced {
                method: ChancesMethod::Exact,
            } => "balanced".to_owned(),
            SchedulerChoice::Balanced {
                method: ChancesMethod::LevelApprox,
            } => "balanced-approx".to_owned(),
            SchedulerChoice::Traditional { latency } => format!("traditional({latency})"),
            SchedulerChoice::Average => "average".to_owned(),
            SchedulerChoice::Tuned(spec) => format!("tuned({})", spec.canonical()),
        }
    }

    /// The canonical serialization that feeds content-addressed cache
    /// keys: every parameter of every variant is spelled out, so two
    /// choices compare equal if and only if they render the same string.
    /// (Contrast [`SchedulerChoice::name`], which is display-oriented:
    /// `traditional(2 3/5)` prints a mixed fraction, and a raw wire spec
    /// such as `traditional=13/5` would alias it differently.)
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            SchedulerChoice::Balanced {
                method: ChancesMethod::Exact,
            } => "balanced".to_owned(),
            SchedulerChoice::Balanced {
                method: ChancesMethod::LevelApprox,
            } => "balanced-approx".to_owned(),
            SchedulerChoice::Traditional { latency } => {
                format!("traditional:{}/{}", latency.numer(), latency.denom())
            }
            SchedulerChoice::Average => "average".to_owned(),
            SchedulerChoice::Tuned(spec) => format!("policy:{}", spec.canonical()),
        }
    }

    fn assigner(&self) -> Box<dyn WeightAssigner> {
        match self {
            SchedulerChoice::Balanced { method } => {
                Box::new(BalancedWeights::new().with_method(*method))
            }
            SchedulerChoice::Traditional { latency } => Box::new(TraditionalWeights::new(*latency)),
            SchedulerChoice::Average => Box::new(AverageParallelismWeights::new()),
            SchedulerChoice::Tuned(spec) => match spec.family {
                WeightFamily::Balanced { method } => {
                    Box::new(BalancedWeights::new().with_method(method))
                }
                WeightFamily::Traditional { latency } => Box::new(TraditionalWeights::new(latency)),
                WeightFamily::Average => Box::new(AverageParallelismWeights::new()),
                WeightFamily::Blend { latency, share } => {
                    Box::new(BlendedWeights::new(latency, share))
                }
            },
        }
    }

    /// The scheduler a choice runs under a pipeline's defaults: a tuned
    /// policy carries its own rounding and tie-break chain; every other
    /// variant takes the pipeline's.
    fn scheduler(&self, direction: Direction, rounding: Rounding) -> ListScheduler {
        match self {
            SchedulerChoice::Tuned(spec) => ListScheduler::new()
                .with_direction(direction)
                .with_rounding(spec.rounding)
                .with_tie_breaks(spec.ties),
            _ => ListScheduler::new()
                .with_direction(direction)
                .with_rounding(rounding),
        }
    }
}

/// One block after the full compilation flow.
#[derive(Debug, Clone)]
pub struct CompiledBlock {
    /// The final, scheduled, physically-allocated block.
    pub block: BasicBlock,
    /// Spill instructions the allocator inserted.
    pub spill_count: usize,
}

/// A whole program after compilation.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Program name.
    pub name: String,
    /// Scheduler used, for reporting.
    pub scheduler: String,
    /// Compiled blocks, in original order.
    pub blocks: Vec<CompiledBlock>,
}

impl CompiledProgram {
    /// Frequency-weighted dynamic instruction count (`TIns`/`BIns` in
    /// Table 3).
    #[must_use]
    pub fn dynamic_instructions(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.block.len() as f64 * b.block.frequency())
            .sum()
    }

    /// Frequency-weighted dynamic spill-instruction count.
    #[must_use]
    pub fn dynamic_spills(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.spill_count as f64 * b.block.frequency())
            .sum()
    }

    /// Percentage of executed instructions that are spill code — the
    /// Table 4 statistic.
    #[must_use]
    pub fn spill_percent(&self) -> f64 {
        let total = self.dynamic_instructions();
        if total == 0.0 {
            0.0
        } else {
            self.dynamic_spills() / total * 100.0
        }
    }
}

/// The compilation pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Memory disambiguation discipline (Fortran for headline runs).
    pub alias: AliasModel,
    /// Scheduling direction (bottom-up, as in §4.1).
    pub direction: Direction,
    /// Fractional-weight rounding.
    pub rounding: Rounding,
    /// Register file and spill pool shape.
    pub allocator: AllocatorConfig,
    /// Which allocator runs between the scheduling passes.
    pub allocation: AllocationStrategy,
    /// Whether the post-allocation scheduling pass runs (§4.1; disabling
    /// it is an ablation that shows why GCC schedules twice).
    pub second_pass: bool,
    /// §4.1's alternative to the FIFO spill pool: software register
    /// renaming after allocation, breaking anti/output dependences before
    /// the second scheduling pass. Off by default (the paper shipped the
    /// FIFO pool).
    pub rename_after_alloc: bool,
    /// How much independent validation runs per block (see
    /// `bsched-verify`). Defaults to the `BSCHED_VALIDATE` environment
    /// variable; at [`ValidationLevel::Off`] the compiled output is
    /// byte-identical to a build without the validators.
    pub validation: ValidationLevel,
    /// Whether `bsched-analyze`'s correctness lints gate compilation.
    /// Defaults to the `BSCHED_ANALYZE` environment variable (off when
    /// unset).
    pub analysis: AnalysisGate,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self {
            alias: AliasModel::Fortran,
            direction: Direction::BottomUp,
            rounding: Rounding::Nearest,
            allocator: AllocatorConfig::mips_default(),
            allocation: AllocationStrategy::default(),
            second_pass: true,
            rename_after_alloc: false,
            validation: ValidationLevel::from_env(),
            analysis: AnalysisGate::from_env(),
        }
    }
}

impl Pipeline {
    /// Compiles one block: schedule → allocate → reschedule.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (register file too small for an
    /// instruction's operands) and, at [`ValidationLevel::Schedule`] or
    /// above, any finding from the independent validators: both
    /// scheduling passes are checked against a freshly built DAG, and at
    /// [`ValidationLevel::Full`] the allocated block is value-flow
    /// checked against its pre-allocation input.
    pub fn compile_block(
        &self,
        block: &BasicBlock,
        choice: &SchedulerChoice,
    ) -> Result<CompiledBlock, PipelineError> {
        // Optional pre-scheduling gate: reject blocks the static
        // analyzer can prove degenerate before spending any scheduling
        // or simulation work on them.
        if let Some(threshold) = self.analysis.blocking_severity() {
            let diags = Analyzer::new(self.alias).analyze_block(block, None);
            let blocking: Vec<_> = diags
                .into_iter()
                .filter(|d| d.severity >= threshold)
                .collect();
            if !blocking.is_empty() {
                return Err(AnalyzeError {
                    block: block.name().to_owned(),
                    diagnostics: blocking,
                }
                .into());
            }
        }

        let assigner = choice.assigner();
        let scheduler = choice.scheduler(self.direction, self.rounding);

        // Pass 1: virtual registers, maximal freedom.
        let dag1 = build_dag(block, self.alias);
        let sched1 = scheduler.run(&dag1, assigner.as_ref());
        debug_assert!(sched1.verify(&dag1).is_ok());
        if self.validation >= ValidationLevel::Schedule {
            verify_schedule(block, sched1.order(), self.alias)?;
        }
        let ordered = sched1.apply(block);

        // Register allocation on the pass-1 order.
        let alloc = match self.allocation {
            AllocationStrategy::BeladyScan => allocate(&ordered, &self.allocator)?,
            AllocationStrategy::UsageCount => allocate_usage_count(&ordered, &self.allocator)?,
        };
        let allocated_block = if self.rename_after_alloc {
            rename_registers(&alloc.block, &self.allocator)
        } else {
            alloc.block.clone()
        };
        if self.validation >= ValidationLevel::Full {
            verify_allocation(&ordered, &allocated_block, &self.allocator)?;
        }

        // Pass 2: integrate spill code under physical-register deps.
        let final_block = if self.second_pass {
            let dag2 = build_dag(&allocated_block, self.alias);
            let sched2 = scheduler.run(&dag2, assigner.as_ref());
            debug_assert!(sched2.verify(&dag2).is_ok());
            if self.validation >= ValidationLevel::Schedule {
                verify_schedule(&allocated_block, sched2.order(), self.alias)?;
            }
            sched2.apply(&allocated_block)
        } else {
            allocated_block
        };

        Ok(CompiledBlock {
            block: final_block,
            spill_count: alloc.spill_count(),
        })
    }

    /// Compiles every block of `func`.
    ///
    /// # Errors
    ///
    /// Propagates the first block's allocation or validation failure.
    pub fn compile(
        &self,
        func: &Function,
        choice: &SchedulerChoice,
    ) -> Result<CompiledProgram, PipelineError> {
        let blocks = func
            .blocks()
            .iter()
            .map(|b| self.compile_block(b, choice))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledProgram {
            name: func.name().to_owned(),
            scheduler: choice.name(),
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;

    fn pressure_block(n: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("p");
        b.set_frequency(10.0);
        let region = b.fresh_region();
        let base = b.def_int("base");
        let vals: Vec<_> = (0..n)
            .map(|k| b.load_region("l", region, base, Some(8 * k as i64)))
            .collect();
        let mut acc = vals[0];
        for &v in vals.iter().rev() {
            acc = b.fadd("a", acc, v);
        }
        b.store_region(region, acc, base, Some(10_000));
        b.finish()
    }

    #[test]
    fn compile_block_produces_physical_schedule() {
        let block = pressure_block(6);
        let out = Pipeline::default()
            .compile_block(&block, &SchedulerChoice::balanced())
            .unwrap();
        assert_eq!(out.block.len(), block.len() + out.spill_count);
        assert!(out.block.insts().iter().all(|i| i
            .defs()
            .iter()
            .chain(i.uses())
            .all(|r| !r.is_virt())));
        assert_eq!(out.block.frequency(), 10.0);
    }

    #[test]
    fn pressure_forces_spills_through_pipeline() {
        let block = pressure_block(30);
        let out = Pipeline::default()
            .compile_block(&block, &SchedulerChoice::balanced())
            .unwrap();
        assert!(out.spill_count > 0);
        assert_eq!(out.block.spill_count(), out.spill_count);
    }

    #[test]
    fn compile_program_statistics() {
        let func = Function::new("f", vec![pressure_block(4), pressure_block(25)]);
        let prog = Pipeline::default()
            .compile(&func, &SchedulerChoice::traditional(Ratio::from_int(2)))
            .unwrap();
        assert_eq!(prog.blocks.len(), 2);
        assert!(prog.dynamic_instructions() > 0.0);
        assert!(prog.spill_percent() >= 0.0);
        assert_eq!(prog.scheduler, "traditional(2)");
        // Spill percent consistency.
        let manual = prog.dynamic_spills() / prog.dynamic_instructions() * 100.0;
        assert!((prog.spill_percent() - manual).abs() < 1e-12);
    }

    #[test]
    fn second_pass_can_be_disabled() {
        let block = pressure_block(25);
        let with_pass = Pipeline::default();
        let without_pass = Pipeline {
            second_pass: false,
            ..Pipeline::default()
        };
        let a = with_pass
            .compile_block(&block, &SchedulerChoice::balanced())
            .unwrap();
        let b = without_pass
            .compile_block(&block, &SchedulerChoice::balanced())
            .unwrap();
        // Same instructions, possibly different order.
        assert_eq!(a.block.len(), b.block.len());
        assert_eq!(a.spill_count, b.spill_count);
    }

    #[test]
    fn compilation_is_deterministic() {
        // End-to-end: two compilations of the same function are
        // bit-identical (guards against map-iteration-order leaks
        // anywhere in the pipeline).
        let func = Function::new("f", vec![pressure_block(25), pressure_block(6)]);
        let pipeline = Pipeline {
            rename_after_alloc: true,
            ..Pipeline::default()
        };
        let a = pipeline
            .compile(&func, &SchedulerChoice::balanced())
            .unwrap();
        let b = pipeline
            .compile(&func, &SchedulerChoice::balanced())
            .unwrap();
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.spill_count, y.spill_count);
        }
    }

    #[test]
    fn full_validation_passes_over_every_pipeline_variant() {
        // The independent validators must find nothing to complain
        // about in the real pipeline, whichever allocator, renaming
        // mode and scheduler drive it.
        let block = pressure_block(30);
        let schedulers = [
            SchedulerChoice::balanced(),
            SchedulerChoice::traditional(Ratio::from_int(2)),
            SchedulerChoice::Average,
        ];
        for allocation in [
            AllocationStrategy::BeladyScan,
            AllocationStrategy::UsageCount,
        ] {
            for rename_after_alloc in [false, true] {
                let pipeline = Pipeline {
                    allocation,
                    rename_after_alloc,
                    validation: ValidationLevel::Full,
                    ..Pipeline::default()
                };
                for scheduler in &schedulers {
                    pipeline
                        .compile_block(&block, scheduler)
                        .unwrap_or_else(|e| {
                            panic!("{allocation:?}/rename={rename_after_alloc}: {e}")
                        });
                }
            }
        }
    }

    #[test]
    fn analysis_gate_blocks_bad_blocks_and_passes_clean_ones() {
        let pipeline = Pipeline {
            analysis: AnalysisGate::Check,
            ..Pipeline::default()
        };
        // A clean block sails through.
        pipeline
            .compile_block(&pressure_block(6), &SchedulerChoice::balanced())
            .unwrap();

        // A dead store (error-level lint) is rejected before scheduling.
        let mut b = BlockBuilder::new("bad");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(8));
        b.store_region(region, x, base, Some(0));
        b.store_region(region, x, base, Some(0));
        let err = pipeline
            .compile_block(&b.finish(), &SchedulerChoice::balanced())
            .unwrap_err();
        match err {
            PipelineError::Analyze(e) => {
                assert_eq!(e.block, "bad");
                assert_eq!(e.diagnostics.len(), 1);
                assert_eq!(e.diagnostics[0].lint.id(), "dead-store");
            }
            other => panic!("expected analysis rejection, got {other}"),
        }
    }

    #[test]
    fn analysis_gate_off_ignores_bad_blocks() {
        let mut b = BlockBuilder::new("bad");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(8));
        b.store_region(region, x, base, Some(0));
        b.store_region(region, x, base, Some(0));
        let pipeline = Pipeline {
            analysis: AnalysisGate::Off,
            ..Pipeline::default()
        };
        pipeline
            .compile_block(&b.finish(), &SchedulerChoice::balanced())
            .unwrap();
    }

    #[test]
    fn analysis_gate_severities() {
        assert_eq!(AnalysisGate::Off.blocking_severity(), None);
        assert_eq!(
            AnalysisGate::Check.blocking_severity(),
            Some(Severity::Error)
        );
        assert_eq!(
            AnalysisGate::Strict.blocking_severity(),
            Some(Severity::Warn)
        );
    }

    #[test]
    fn scheduler_choice_names() {
        assert_eq!(SchedulerChoice::balanced().name(), "balanced");
        assert_eq!(
            SchedulerChoice::traditional(Ratio::new(13, 5)).name(),
            "traditional(2 3/5)"
        );
        assert_eq!(SchedulerChoice::Average.name(), "average");
        assert_eq!(
            SchedulerChoice::Balanced {
                method: ChancesMethod::LevelApprox
            }
            .name(),
            "balanced-approx"
        );
    }
}
