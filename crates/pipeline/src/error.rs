//! One error type for the whole compile–simulate flow.

use bsched_analyze::{Diagnostic, FailureKind};
use bsched_cpusim::SimError;
use bsched_regalloc::AllocError;
use bsched_verify::VerifyError;
use bsched_workload::{LowerError, ParseError};

/// Static-analysis diagnostics that stopped compilation: the
/// pre-scheduling gate (see `Pipeline::analysis`) found lints at or above
/// its blocking severity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    /// Name of the rejected block.
    pub block: String,
    /// Every blocking diagnostic, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} blocking diagnostic{} in {}",
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.block
        )?;
        if let Some(first) = self.diagnostics.first() {
            write!(f, ": {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalyzeError {}

/// Any failure between kernel text and a measured table cell.
///
/// Each stage keeps its own precise error type; this enum is the spine
/// that lets harness code thread them through one `Result` with `?`:
/// parsing ([`ParseError`]), lowering ([`LowerError`]), register
/// allocation ([`AllocError`]) and independent validation
/// ([`VerifyError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Register allocation failed.
    Alloc(AllocError),
    /// An independent validator rejected a stage's output.
    Verify(VerifyError),
    /// Kernel source text failed to parse.
    Parse(ParseError),
    /// A kernel could not be lowered to the IR.
    Lower(LowerError),
    /// The pre-scheduling static-analysis gate rejected a block.
    Analyze(AnalyzeError),
    /// A watchdog stopped the simulation (cycle budget or cancellation).
    Sim(SimError),
}

impl PipelineError {
    /// The stable failure-vocabulary id for this error — the same
    /// [`FailureKind`] the table harness, journal and
    /// `bsched analyze --format json` report.
    #[must_use]
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            PipelineError::Alloc(_) => FailureKind::Alloc,
            PipelineError::Verify(_) => FailureKind::Verify,
            PipelineError::Parse(_) => FailureKind::Parse,
            PipelineError::Lower(_) => FailureKind::Lower,
            PipelineError::Analyze(_) => FailureKind::Analysis,
            PipelineError::Sim(SimError::BudgetExceeded { .. }) => FailureKind::BudgetExceeded,
            PipelineError::Sim(SimError::Cancelled) => FailureKind::Cancelled,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Alloc(e) => write!(f, "register allocation: {e}"),
            PipelineError::Verify(e) => write!(f, "validation: {e}"),
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Lower(e) => write!(f, "lowering: {e}"),
            PipelineError::Analyze(e) => write!(f, "analysis: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Alloc(e) => Some(e),
            PipelineError::Verify(e) => Some(e),
            PipelineError::Parse(e) => Some(e),
            PipelineError::Lower(e) => Some(e),
            PipelineError::Analyze(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<AnalyzeError> for PipelineError {
    fn from(e: AnalyzeError) -> Self {
        PipelineError::Analyze(e)
    }
}

impl From<AllocError> for PipelineError {
    fn from(e: AllocError) -> Self {
        PipelineError::Alloc(e)
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_rendering() {
        let e: PipelineError = AllocError::PhysicalInput.into();
        assert_eq!(
            e.to_string(),
            "register allocation: input block already uses physical registers"
        );
        let e: PipelineError = VerifyError::LengthMismatch {
            expected: 2,
            got: 1,
        }
        .into();
        assert!(e.to_string().starts_with("validation: "));
        let e: PipelineError = LowerError::InvalidFrequency { value: -1.0 }.into();
        assert!(e.to_string().starts_with("lowering: "));
        let e: PipelineError = bsched_workload::parse_kernel("kernel")
            .map(|_| ())
            .unwrap_err()
            .into();
        assert!(e.to_string().starts_with("parse: "));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn sim_errors_convert_and_render() {
        let e: PipelineError = SimError::BudgetExceeded {
            budget: 10,
            cycle: 99,
        }
        .into();
        assert!(e.to_string().starts_with("simulation: cycle budget"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn failure_kinds_match_the_shared_vocabulary() {
        let cases: Vec<(PipelineError, &str)> = vec![
            (AllocError::PhysicalInput.into(), "alloc"),
            (
                VerifyError::LengthMismatch {
                    expected: 2,
                    got: 1,
                }
                .into(),
                "verify",
            ),
            (
                bsched_workload::parse_kernel("kernel")
                    .map(|_| ())
                    .unwrap_err()
                    .into(),
                "parse",
            ),
            (LowerError::InvalidFrequency { value: -1.0 }.into(), "lower"),
            (
                SimError::BudgetExceeded {
                    budget: 1,
                    cycle: 2,
                }
                .into(),
                "budget-exceeded",
            ),
            (SimError::Cancelled.into(), "cancelled"),
        ];
        for (err, id) in cases {
            assert_eq!(err.failure_kind().id(), id, "{err}");
        }
    }

    #[test]
    fn analyze_error_reports_count_and_first_diagnostic() {
        let diag = Diagnostic {
            lint: bsched_analyze::Lint::DeadStore,
            severity: bsched_analyze::Severity::Error,
            block: "k".to_owned(),
            inst: Some(bsched_ir::InstId::new(2)),
            span: None,
            message: "overwritten".to_owned(),
        };
        let e: PipelineError = AnalyzeError {
            block: "k".to_owned(),
            diagnostics: vec![diag],
        }
        .into();
        let rendered = e.to_string();
        assert!(
            rendered.starts_with("analysis: 1 blocking diagnostic in k: "),
            "{rendered}"
        );
        assert!(rendered.contains("dead-store"), "{rendered}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
