//! One error type for the whole compile–simulate flow.

use bsched_regalloc::AllocError;
use bsched_verify::VerifyError;
use bsched_workload::{LowerError, ParseError};

/// Any failure between kernel text and a measured table cell.
///
/// Each stage keeps its own precise error type; this enum is the spine
/// that lets harness code thread them through one `Result` with `?`:
/// parsing ([`ParseError`]), lowering ([`LowerError`]), register
/// allocation ([`AllocError`]) and independent validation
/// ([`VerifyError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Register allocation failed.
    Alloc(AllocError),
    /// An independent validator rejected a stage's output.
    Verify(VerifyError),
    /// Kernel source text failed to parse.
    Parse(ParseError),
    /// A kernel could not be lowered to the IR.
    Lower(LowerError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Alloc(e) => write!(f, "register allocation: {e}"),
            PipelineError::Verify(e) => write!(f, "validation: {e}"),
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Lower(e) => write!(f, "lowering: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Alloc(e) => Some(e),
            PipelineError::Verify(e) => Some(e),
            PipelineError::Parse(e) => Some(e),
            PipelineError::Lower(e) => Some(e),
        }
    }
}

impl From<AllocError> for PipelineError {
    fn from(e: AllocError) -> Self {
        PipelineError::Alloc(e)
    }
}

impl From<VerifyError> for PipelineError {
    fn from(e: VerifyError) -> Self {
        PipelineError::Verify(e)
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<LowerError> for PipelineError {
    fn from(e: LowerError) -> Self {
        PipelineError::Lower(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_rendering() {
        let e: PipelineError = AllocError::PhysicalInput.into();
        assert_eq!(
            e.to_string(),
            "register allocation: input block already uses physical registers"
        );
        let e: PipelineError = VerifyError::LengthMismatch { expected: 2, got: 1 }.into();
        assert!(e.to_string().starts_with("validation: "));
        let e: PipelineError = LowerError::InvalidFrequency { value: -1.0 }.into();
        assert!(e.to_string().starts_with("lowering: "));
        let e: PipelineError =
            bsched_workload::parse_kernel("kernel").map(|_| ()).unwrap_err().into();
        assert!(e.to_string().starts_with("parse: "));
        assert!(std::error::Error::source(&e).is_some());
    }
}
