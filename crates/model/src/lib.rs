//! `bsched-model`: an in-repo concurrency model checker (mini-loom).
//!
//! The repo's hot paths — the Chase–Lev deque, the `WorkerPool`
//! park/unpark protocol, the serve-side stats and cache counters — are
//! hand-rolled lock-free/low-lock code, exactly the kind of code where
//! interleaving bugs hide from ordinary tests. This crate makes those
//! interleavings *enumerable*: a model test runs a closure over N
//! model threads whose every sync operation (atomic access, mutex
//! lock/unlock, condvar wait/notify, spawn/join, sleep/yield) is a
//! scheduler yield point, and the checker re-executes the closure once
//! per distinct schedule.
//!
//! Two exploration strategies:
//!
//! - **Bounded exhaustive DFS with sleep-set reduction** ([`explore`])
//!   for small models: every schedule (up to the bounds) is visited,
//!   minus those the sleep sets prove equivalent to an already-visited
//!   one. Use this to *prove* a 2–3 thread interaction correct.
//! - **Seeded PCT randomized priority scheduling** ([`explore_pct`])
//!   for larger models: each schedule assigns random thread priorities
//!   plus `depth` priority-change points (Burckhardt et al.'s
//!   probabilistic concurrency testing), giving a probabilistic bug
//!   guarantee where exhaustive search is infeasible.
//!
//! Both detect deadlocks (every live thread blocked; condvar waiters
//! flagged as possible lost wakeups) and record every step into a
//! [`Trace`]; a failing schedule is replayable with [`replay`] and the
//! trace prints as a step-by-step interleaving with source locations.
//!
//! The production code is ported onto [`sync`], whose types compile to
//! thin std wrappers and *fall through to plain std behaviour*
//! whenever no checker is active on the current thread — so the same
//! binary runs model tests and ordinary tests, and `bsched-par`
//! re-exports true zero-cost std aliases unless built with
//! `--cfg bsched_model`.

pub mod checker;
pub mod sync;

pub use checker::{
    check, check_pct, explore, explore_pct, replay, Config, Failure, Report, Trace, TraceStep,
};
