//! Instrumented sync primitives: std-compatible wrappers whose every
//! operation is a scheduler yield point when the calling thread is a
//! model thread, and plain std behaviour otherwise.
//!
//! The fall-through design is what lets one binary serve both worlds:
//! `cargo test -p bsched-model` exercises the checker through these
//! types with no special cfg, while `--cfg bsched_model` builds of
//! `bsched-par`/`bsched-serve` route the *production* deque, pool,
//! stats, and prober through them. Outside a model run every method is
//! a thread-local lookup (`None`) plus the std call; inside one, the
//! method declares the op to the controller and blocks until granted.
//!
//! API notes:
//! - Memory orderings are accepted and forwarded to std, but the model
//!   explores *sequentially consistent* interleavings only: it finds
//!   ordering bugs expressible as interleavings of SC steps (which is
//!   what the deque/pool bugs of PR 6 were), not relaxed-memory
//!   reorderings — that is what the Miri/TSan CI jobs are for.
//! - `thread::sleep` under the model is a pure yield: model time does
//!   not pass, so timing can never mask an interleaving.

use std::fmt;
use std::panic::Location;
use std::sync::{LockResult, PoisonError};

pub use std::sync::atomic::Ordering;

use crate::checker::{self, OpKind};

/// Declare `kind` on the object at `addr` if this is a model thread.
#[track_caller]
fn op(addr: usize, kind: OpKind, name: &'static str) {
    if let Some((exec, me)) = checker::current_ctx() {
        exec.yield_op(me, kind, addr, 0, name, Location::caller(), usize::MAX);
    }
}

/// An atomic fence. Under the model this is a yield point that
/// conflicts with every atomic op (the deque's push/steal protocol
/// hinges on its two `SeqCst` fences).
#[track_caller]
pub fn fence(order: Ordering) {
    op(0, OpKind::Fence, "fence");
    std::sync::atomic::fence(order);
}

macro_rules! model_atomic {
    ($name:ident, $std:ty, $ty:ty, $zero:expr, $doc:expr) => {
        #[doc = $doc]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// A new atomic holding `v`.
            #[must_use]
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            #[track_caller]
            pub fn load(&self, order: Ordering) -> $ty {
                op(self as *const Self as usize, OpKind::AtomicLoad, "load");
                self.inner.load(order)
            }

            #[track_caller]
            pub fn store(&self, v: $ty, order: Ordering) {
                op(self as *const Self as usize, OpKind::AtomicStore, "store");
                self.inner.store(v, order);
            }

            #[track_caller]
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                op(self as *const Self as usize, OpKind::AtomicRmw, "swap");
                self.inner.swap(v, order)
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                op(
                    self as *const Self as usize,
                    OpKind::AtomicRmw,
                    "compare_exchange",
                );
                self.inner.compare_exchange(current, new, success, failure)
            }

            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                op(
                    self as *const Self as usize,
                    OpKind::AtomicRmw,
                    "compare_exchange_weak",
                );
                // The model has no spurious failures to explore; the
                // strong variant keeps replays deterministic.
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Consume the atomic (no yield point: `self` is owned,
            /// so no other thread can race it).
            #[must_use]
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new($zero)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $std:ty, $ty:ty, $doc:expr) => {
        model_atomic!($name, $std, $ty, 0, $doc);

        impl $name {
            #[track_caller]
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                op(self as *const Self as usize, OpKind::AtomicRmw, "fetch_add");
                self.inner.fetch_add(v, order)
            }

            #[track_caller]
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                op(self as *const Self as usize, OpKind::AtomicRmw, "fetch_sub");
                self.inner.fetch_sub(v, order)
            }
        }
    };
}

model_atomic_int!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    "Instrumented `std::sync::atomic::AtomicUsize`."
);
model_atomic_int!(
    AtomicIsize,
    std::sync::atomic::AtomicIsize,
    isize,
    "Instrumented `std::sync::atomic::AtomicIsize`."
);
model_atomic_int!(
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64,
    "Instrumented `std::sync::atomic::AtomicU64`."
);
model_atomic_int!(
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32,
    "Instrumented `std::sync::atomic::AtomicU32`."
);
model_atomic!(
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool,
    false,
    "Instrumented `std::sync::atomic::AtomicBool`."
);

/// Instrumented `std::sync::atomic::AtomicPtr`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// A new atomic pointer holding `p`.
    #[must_use]
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[track_caller]
    pub fn load(&self, order: Ordering) -> *mut T {
        op(self as *const Self as usize, OpKind::AtomicLoad, "load");
        self.inner.load(order)
    }

    #[track_caller]
    pub fn store(&self, p: *mut T, order: Ordering) {
        op(self as *const Self as usize, OpKind::AtomicStore, "store");
        self.inner.store(p, order);
    }

    #[track_caller]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        op(self as *const Self as usize, OpKind::AtomicRmw, "swap");
        self.inner.swap(p, order)
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Instrumented `std::sync::Mutex`. Under the model, the *scheduler*
/// arbitrates ownership (a pending `lock` on a held mutex is simply
/// not enabled), so the inner std lock is always uncontended among
/// model threads.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex protecting `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    fn addr(&self) -> usize {
        self as *const Mutex<T> as usize
    }

    /// Acquire the lock (a `MutexLock` yield point under the model).
    ///
    /// # Errors
    ///
    /// Poisoned if a holder panicked, exactly as std.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let loc = Location::caller();
        let model = checker::current_ctx();
        if let Some((exec, me)) = &model {
            exec.yield_op(
                *me,
                OpKind::MutexLock,
                self.addr(),
                0,
                "lock",
                loc,
                usize::MAX,
            );
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                model,
                lock: self,
                loc,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: Some(poisoned.into_inner()),
                model,
                lock: self,
                loc,
            })),
        }
    }

    /// Consume the mutex (no yield point: exclusive by ownership).
    ///
    /// # Errors
    ///
    /// Poisoned if a holder panicked.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// Mutable access (no yield point: exclusive by borrow).
    ///
    /// # Errors
    ///
    /// Poisoned if a holder panicked.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; dropping it is a `MutexUnlock` yield
/// point under the model. The inner std lock is released *before* the
/// unlock op is declared — safe because the declaring thread still
/// holds the execution token, so no other model thread can run until
/// the scheduler processes the unlock.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<checker::Execution>, usize)>,
    lock: &'a Mutex<T>,
    loc: &'static Location<'static>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, me)) = self.model.take() {
            self.inner = None;
            exec.yield_op(
                me,
                OpKind::MutexUnlock,
                self.lock.addr(),
                0,
                "unlock",
                self.loc,
                usize::MAX,
            );
        }
    }
}

/// Instrumented `std::sync::Condvar`. Model waits never touch the
/// inner std condvar: the scheduler parks the thread and a scheduled
/// notify moves it back to runnable — which is precisely how lost
/// wakeups become *observable* as deadlocks instead of being papered
/// over by timing.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// A new condition variable.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Release the guard's mutex and wait to be notified, then
    /// reacquire. Under the model this is a single `CondWait` op whose
    /// wake side is a synthetic `relock-after-wait` lock op.
    ///
    /// # Errors
    ///
    /// Poisoned if a holder of the mutex panicked.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let loc = Location::caller();
        let lock = guard.lock;
        if let Some((exec, me)) = guard.model.take() {
            // Release the real lock first; we still hold the execution
            // token, so nothing can slip in before the CondWait op is
            // declared.
            guard.inner = None;
            drop(guard);
            exec.yield_op(
                me,
                OpKind::CondWait,
                self.addr(),
                lock.addr(),
                "wait",
                loc,
                usize::MAX,
            );
            // The scheduler granted the relock: the std mutex is free
            // at model level, take it without another yield point.
            match lock.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: Some((exec, me)),
                    lock,
                    loc,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    model: Some((exec, me)),
                    lock,
                    loc,
                })),
            }
        } else {
            let std_guard = guard.inner.take().expect("guard holds the lock");
            drop(guard);
            match self.inner.wait(std_guard) {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                    lock,
                    loc,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    model: None,
                    lock,
                    loc,
                })),
            }
        }
    }

    /// Wake one waiter (a `CondNotifyOne` yield point under the model;
    /// waking nobody is recorded in the trace — that is the lost-
    /// wakeup signature).
    #[track_caller]
    pub fn notify_one(&self) {
        op(self.addr(), OpKind::CondNotifyOne, "notify_one");
        self.inner.notify_one();
    }

    /// Wake every waiter.
    #[track_caller]
    pub fn notify_all(&self) {
        op(self.addr(), OpKind::CondNotifyAll, "notify_all");
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Instrumented subset of `std::thread`: spawning from a model thread
/// creates a new *model* thread the scheduler interleaves; spawning
/// from anywhere else is plain `std::thread::spawn`.
pub mod thread {
    use std::panic::Location;
    use std::sync::Arc;
    use std::time::Duration;

    pub use std::thread::Result;

    use crate::checker::{self, OpKind};

    /// Instrumented `std::thread::Builder`.
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A new builder with no name set.
        #[must_use]
        pub fn new() -> Builder {
            Builder { name: None }
        }

        /// Name the thread (model threads keep this as their trace
        /// name; their OS name stays `bsched-model-t<tid>` so the
        /// panic hook can recognise them).
        #[must_use]
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawn the thread.
        ///
        /// # Errors
        ///
        /// OS thread creation failure, as std.
        #[track_caller]
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let loc = Location::caller();
            if let Some((exec, me)) = checker::current_ctx() {
                let name = self.name.unwrap_or_else(|| "spawned".to_owned());
                let tid = checker::register_thread(&exec, name);
                let os = checker::spawn_model_thread(&exec, tid, loc, f);
                // The spawn itself is a yield point for the parent:
                // schedules where the child runs before the parent's
                // next op are explored.
                exec.yield_op(me, OpKind::Spawn, 0, 0, "spawn", loc, tid);
                Ok(JoinHandle(Inner::Model { tid, exec, os }))
            } else {
                let mut builder = std::thread::Builder::new();
                if let Some(name) = self.name {
                    builder = builder.name(name);
                }
                builder.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }

    /// Instrumented `std::thread::spawn`.
    #[track_caller]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Instrumented `std::thread::sleep`: under the model a pure yield
    /// point — model time does not pass, so sleeps can never hide an
    /// interleaving.
    #[track_caller]
    pub fn sleep(dur: Duration) {
        if let Some((exec, me)) = checker::current_ctx() {
            exec.yield_op(
                me,
                OpKind::Sleep,
                0,
                0,
                "sleep",
                Location::caller(),
                usize::MAX,
            );
        } else {
            std::thread::sleep(dur);
        }
    }

    /// Instrumented `std::thread::yield_now`.
    #[track_caller]
    pub fn yield_now() {
        if let Some((exec, me)) = checker::current_ctx() {
            exec.yield_op(
                me,
                OpKind::Yield,
                0,
                0,
                "yield_now",
                Location::caller(),
                usize::MAX,
            );
        } else {
            std::thread::yield_now();
        }
    }

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            exec: Arc<checker::Execution>,
            os: std::thread::JoinHandle<T>,
        },
    }

    /// Instrumented `std::thread::JoinHandle`.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Join the thread. Under the model, a `Join` op that is
        /// enabled only once the target finished — a join on a thread
        /// that can never finish is a detected deadlock, not a hang.
        ///
        /// # Errors
        ///
        /// The thread's panic payload if it panicked.
        #[track_caller]
        pub fn join(self) -> Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { tid, exec, os } => {
                    if let Some((cur, me)) = checker::current_ctx() {
                        debug_assert!(Arc::ptr_eq(&cur, &exec), "join across model runs");
                        cur.yield_op(me, OpKind::Join, 0, 0, "join", Location::caller(), tid);
                    }
                    os.join()
                }
            }
        }

        /// Whether the thread has finished (no yield point; advisory,
        /// as in std).
        #[must_use]
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Inner::Std(h) => h.is_finished(),
                Inner::Model { os, .. } => os.is_finished(),
            }
        }
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("JoinHandle(..)")
        }
    }
}
