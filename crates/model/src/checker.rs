//! The controlled-scheduling explorer.
//!
//! # Execution model
//!
//! A model run executes the user's closure on real OS threads, but
//! only **one** of them is ever running user code: a single "token" is
//! handed from the controller to exactly one model thread at a time.
//! Every shim operation ([`crate::sync`]) is a *yield point*: the
//! thread declares the operation it is about to perform
//! ([`Status::Pending`]), hands the token back, and blocks until the
//! controller grants it. The controller waits until every live thread
//! has declared (quiescence), computes the *enabled* set (a pending
//! `lock` on a held mutex is not enabled; a `join` on a live thread is
//! not enabled), asks the active strategy to pick one, applies the
//! operation's scheduler-visible effect (mutex ownership, condvar
//! wait/wake), records a [`TraceStep`], and hands the token over.
//! Declaring *before* scheduling is what lets the sleep-set reduction
//! and the deadlock detector reason about every thread's next move
//! without lookahead.
//!
//! Because user code runs strictly one-thread-at-a-time, everything
//! that happens between two yield points is atomic from the model's
//! point of view — which is exactly the granularity we want, since the
//! shim interposes on every cross-thread communication primitive.
//!
//! # Determinism and object identity
//!
//! A schedule is replayed by re-executing the closure from scratch
//! (stateless / CHESS-style). Heap addresses differ across runs, so
//! objects are identified by **first-touch interning order**: the k-th
//! distinct object to appear in a scheduled operation gets id k. Only
//! the token holder can construct or touch objects, so interning order
//! is a pure function of the schedule prefix and ids are stable across
//! replays. (Corollary: model tests should keep their atomics/mutexes
//! alive for the whole run — an object freed and reallocated at the
//! same address would alias its id.)
//!
//! # Abandoning a run
//!
//! When a run ends (success, failure, prune, or step limit) the
//! controller sets the `abandoned` flag and wakes everyone; parked
//! model threads panic with a private sentinel that unwinds them out
//! of user code, and the controller waits until every OS thread has
//! exited before returning, so no state leaks into the next schedule.
//! A panic hook (installed once, wrapping any previous hook)
//! suppresses panic spew from model threads — the failure surfaces as
//! a rendered [`Failure`] instead.

use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// What kind of sync operation a thread is about to perform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Synthetic first op of every model thread.
    Start,
    /// Parent-side half of a thread spawn.
    Spawn,
    /// Wait for a model thread to finish.
    Join,
    AtomicLoad,
    AtomicStore,
    /// Read-modify-write: swap, fetch_add/sub, compare_exchange.
    AtomicRmw,
    Fence,
    MutexLock,
    MutexUnlock,
    /// Atomically release the mutex and start waiting on the condvar.
    CondWait,
    CondNotifyOne,
    CondNotifyAll,
    /// `thread::sleep` — a pure yield point; model time does not pass.
    Sleep,
    /// `thread::yield_now`.
    Yield,
}

impl OpKind {
    /// Can this operation change state another thread observes?
    fn is_write(self) -> bool {
        matches!(
            self,
            OpKind::AtomicStore
                | OpKind::AtomicRmw
                | OpKind::MutexLock
                | OpKind::MutexUnlock
                | OpKind::CondWait
                | OpKind::CondNotifyOne
                | OpKind::CondNotifyAll
        )
    }

    fn is_atomic(self) -> bool {
        matches!(
            self,
            OpKind::AtomicLoad | OpKind::AtomicStore | OpKind::AtomicRmw | OpKind::Fence
        )
    }
}

/// One declared operation. `obj`/`obj2` are interned object ids
/// (0 = none); `target` is a tid for `Spawn`/`Join` (`usize::MAX` =
/// none); `loc` is the production call site via `#[track_caller]`.
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub(crate) kind: OpKind,
    pub(crate) obj: usize,
    pub(crate) obj2: usize,
    pub(crate) name: &'static str,
    pub(crate) loc: &'static Location<'static>,
    pub(crate) target: usize,
}

/// Identity for cross-run comparison (sleep sets, replay checks).
/// `loc` is deliberately excluded: it is stable too, but `(tid, kind,
/// objects, target)` already pins the op since a thread has at most
/// one pending op.
fn same_op(a: &Op, b: &Op) -> bool {
    a.kind == b.kind && a.obj == b.obj && a.obj2 == b.obj2 && a.target == b.target
}

/// Dependence relation for the sleep-set reduction. Conservative:
/// `true` when reordering the two ops might matter.
fn conflicts(a: &Op, b: &Op) -> bool {
    use OpKind::{Fence, Join, Sleep, Spawn, Start, Yield};
    let structural = |k: OpKind| matches!(k, Start | Spawn | Join);
    if structural(a.kind) || structural(b.kind) {
        return true;
    }
    if matches!(a.kind, Sleep | Yield) || matches!(b.kind, Sleep | Yield) {
        return false;
    }
    if a.kind == Fence || b.kind == Fence {
        return a.kind.is_atomic() && b.kind.is_atomic();
    }
    let overlap = (a.obj != 0 && (a.obj == b.obj || a.obj == b.obj2))
        || (a.obj2 != 0 && (a.obj2 == b.obj || a.obj2 == b.obj2));
    overlap && (a.kind.is_write() || b.kind.is_write())
}

/// A runnable `(thread, declared op)` pair offered to the strategy.
#[derive(Clone, Debug)]
pub(crate) struct Candidate {
    pub(crate) tid: usize,
    pub(crate) op: Op,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Turn {
    Controller,
    Thread(usize),
}

#[derive(Debug)]
enum Status {
    /// Spawned; has not reached its `Start` op yet.
    Starting,
    /// Declared an op; waiting for the controller to grant it.
    Pending(Op),
    /// Holds the token and is executing user code.
    Running,
    /// Parked on a condvar; woken only by a notify (back to `Pending`
    /// with a synthetic lock-reacquire op).
    WaitingCond {
        cv: usize,
        mutex: usize,
        op: Op,
    },
    Finished,
    Panicked,
}

struct ThreadState {
    status: Status,
    name: String,
}

struct ExecState {
    turn: Turn,
    threads: Vec<ThreadState>,
    /// mutex object id → owning tid.
    mutex_owner: HashMap<usize, usize>,
    /// raw address → interned object id (first-touch order).
    interned: HashMap<usize, usize>,
    step: usize,
    trace: Vec<TraceStep>,
    schedule: Vec<usize>,
    abandoned: bool,
    failure: Option<String>,
    /// OS threads that have been registered and not yet exited.
    live_os: usize,
}

/// One model run's shared state: a single lock + condvar carries the
/// token handoff between the controller and all model threads.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Panic payload used to unwind parked threads when a run is
/// abandoned. Never observable by user code that completes normally.
struct Abandon;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The active `(execution, tid)` for this OS thread, if it is a model
/// thread. The shim falls through to plain std behaviour when `None`.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Suppress panic spew from model threads; the failure is rendered as
/// a schedule trace instead. Installed once, delegating to whatever
/// hook was in place before.
fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("bsched-model-t"));
            if !model_thread {
                prev(info);
            }
        }));
    });
}

impl Execution {
    fn new() -> Execution {
        Execution {
            state: StdMutex::new(ExecState {
                turn: Turn::Controller,
                threads: Vec::new(),
                mutex_owner: HashMap::new(),
                interned: HashMap::new(),
                step: 0,
                trace: Vec::new(),
                schedule: Vec::new(),
                abandoned: false,
                failure: None,
                live_os: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Declare an op, yield the token, and block until granted (or
    /// the run is abandoned, in which case this panics the thread out
    /// of user code). For `CondWait` the single call spans the whole
    /// wait: it returns only once a notify has moved the thread back
    /// to pending *and* the controller has granted the lock reacquire.
    // A flat argument list: this is the shim's single internal hook,
    // and an Op-builder struct would repeat every field at each of the
    // ~20 macro-generated call sites.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn yield_op(
        self: &Arc<Execution>,
        me: usize,
        kind: OpKind,
        raw_obj: usize,
        raw_obj2: usize,
        name: &'static str,
        loc: &'static Location<'static>,
        target: usize,
    ) {
        let mut st = self.state.lock().unwrap();
        if st.abandoned {
            drop(st);
            // Ops reached while unwinding an abandoned run (e.g. a
            // MutexGuard dropped by the abandon panic itself) must not
            // re-panic: a panic inside a panic aborts the process.
            if std::thread::panicking() {
                return;
            }
            panic::panic_any(Abandon);
        }
        let obj = intern(&mut st, raw_obj);
        let obj2 = intern(&mut st, raw_obj2);
        let op = Op {
            kind,
            obj,
            obj2,
            name,
            loc,
            target,
        };
        st.threads[me].status = Status::Pending(op);
        if st.turn == Turn::Thread(me) {
            st.turn = Turn::Controller;
        }
        self.cv.notify_all();
        loop {
            if st.abandoned {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                panic::panic_any(Abandon);
            }
            if matches!(st.threads[me].status, Status::Running) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// The controller side of one schedule: wait for quiescence, pick,
    /// apply, repeat — then tear the run down completely.
    fn run_controller(
        self: &Arc<Execution>,
        cfg: &Config,
        chooser: &mut dyn FnMut(&[Candidate]) -> Choice,
    ) -> RunResult {
        let mut st = self.state.lock().unwrap();
        let outcome = loop {
            while st.failure.is_none() && !quiescent(&st) {
                st = self.cv.wait(st).unwrap();
            }
            if let Some(msg) = st.failure.clone() {
                break Outcome::Failure(msg);
            }
            if st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                break Outcome::Ok;
            }
            if st.step >= cfg.max_steps {
                break Outcome::StepLimit;
            }
            let enabled = enabled_candidates(&st);
            if enabled.is_empty() {
                break Outcome::Failure(deadlock_message(&st));
            }
            let pick = match chooser(&enabled) {
                Choice::Pick(i) => enabled[i].clone(),
                Choice::Prune => break Outcome::Pruned,
            };
            let tid = pick.tid;
            let op = pick.op;
            let mut note = String::new();
            match op.kind {
                OpKind::MutexLock => {
                    st.mutex_owner.insert(op.obj, tid);
                }
                OpKind::MutexUnlock => {
                    st.mutex_owner.remove(&op.obj);
                }
                OpKind::CondWait => {
                    // Release the mutex and park; the token stays with
                    // the controller — nobody is granted this step's
                    // "other half", the next loop iteration picks who
                    // runs while tid waits.
                    st.mutex_owner.remove(&op.obj2);
                    st.threads[tid].status = Status::WaitingCond {
                        cv: op.obj,
                        mutex: op.obj2,
                        op,
                    };
                    record_step(&mut st, tid, op, String::new());
                    continue;
                }
                OpKind::CondNotifyOne | OpKind::CondNotifyAll => {
                    let all = op.kind == OpKind::CondNotifyAll;
                    let mut woken = Vec::new();
                    for (wtid, t) in st.threads.iter().enumerate() {
                        if let Status::WaitingCond { cv, .. } = t.status {
                            if cv == op.obj {
                                woken.push(wtid);
                                if !all {
                                    break;
                                }
                            }
                        }
                    }
                    for &wtid in &woken {
                        let Status::WaitingCond { mutex, op: wop, .. } = st.threads[wtid].status
                        else {
                            unreachable!("collected above")
                        };
                        // The waiter's next move is reacquiring the
                        // mutex it released when it began waiting.
                        st.threads[wtid].status = Status::Pending(Op {
                            kind: OpKind::MutexLock,
                            obj: mutex,
                            obj2: 0,
                            name: "relock-after-wait",
                            loc: wop.loc,
                            target: usize::MAX,
                        });
                    }
                    note = if woken.is_empty() {
                        "wakes nobody".to_owned()
                    } else {
                        format!(
                            "wakes {}",
                            woken
                                .iter()
                                .map(|t| format!("t{t}"))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    };
                }
                _ => {}
            }
            record_step(&mut st, tid, op, note);
            st.threads[tid].status = Status::Running;
            st.turn = Turn::Thread(tid);
            self.cv.notify_all();
        };
        // Teardown: unwind every parked thread and wait for all OS
        // threads to exit so nothing leaks into the next schedule.
        st.abandoned = true;
        self.cv.notify_all();
        while st.live_os > 0 {
            st = self.cv.wait(st).unwrap();
        }
        RunResult {
            outcome,
            trace: Trace {
                steps: std::mem::take(&mut st.trace),
            },
            schedule: std::mem::take(&mut st.schedule),
            steps: st.step,
        }
    }
}

fn intern(st: &mut ExecState, raw: usize) -> usize {
    if raw == 0 {
        return 0;
    }
    let next = st.interned.len() + 1;
    *st.interned.entry(raw).or_insert(next)
}

fn quiescent(st: &ExecState) -> bool {
    st.turn == Turn::Controller
        && st
            .threads
            .iter()
            .all(|t| !matches!(t.status, Status::Starting | Status::Running))
}

fn enabled_candidates(st: &ExecState) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        if let Status::Pending(op) = t.status {
            let runnable = match op.kind {
                OpKind::MutexLock => !st.mutex_owner.contains_key(&op.obj),
                OpKind::Join => matches!(
                    st.threads[op.target].status,
                    Status::Finished | Status::Panicked
                ),
                _ => true,
            };
            if runnable {
                out.push(Candidate { tid, op });
            }
        }
    }
    out
}

fn record_step(st: &mut ExecState, tid: usize, op: Op, note: String) {
    st.schedule.push(tid);
    st.step += 1;
    let step = st.step;
    st.trace.push(TraceStep {
        step,
        tid,
        thread: st.threads[tid].name.clone(),
        kind: op.kind,
        name: op.name,
        obj: op.obj,
        loc: format!("{}:{}", op.loc.file(), op.loc.line()),
        note,
    });
}

fn deadlock_message(st: &ExecState) -> String {
    let mut msg = String::from("deadlock: no runnable thread\n");
    let all_cond = st
        .threads
        .iter()
        .all(|t| matches!(t.status, Status::WaitingCond { .. } | Status::Finished));
    for (tid, t) in st.threads.iter().enumerate() {
        let line = match &t.status {
            Status::Pending(op) => match op.kind {
                OpKind::MutexLock => format!(
                    "blocked locking mutex obj#{} at {}:{}",
                    op.obj,
                    op.loc.file(),
                    op.loc.line()
                ),
                OpKind::Join => format!("joining t{}, which never finishes", op.target),
                _ => format!("pending {} (disabled)", op.name),
            },
            Status::WaitingCond { cv, .. } => {
                format!("waiting on condvar obj#{cv} with no notifier left — possible lost wakeup")
            }
            Status::Finished => "finished".to_owned(),
            other => format!("{other:?}"),
        };
        msg.push_str(&format!("  t{tid} ({}): {line}\n", t.name));
    }
    if all_cond {
        msg.push_str("  (every live thread is in a condvar wait: lost wakeup)\n");
    }
    msg
}

// ---------------------------------------------------------------------------
// Thread registration / spawning (used by sync::thread and run_one)
// ---------------------------------------------------------------------------

/// Reserve a tid and count its OS thread as live *before* it spawns,
/// so the controller's teardown can never miss it.
pub(crate) fn register_thread(exec: &Arc<Execution>, name: String) -> usize {
    let mut st = exec.state.lock().unwrap();
    let tid = st.threads.len();
    st.threads.push(ThreadState {
        status: Status::Starting,
        name,
    });
    st.live_os += 1;
    tid
}

/// Spawn the OS thread backing model thread `tid`. The wrapper
/// installs the thread-local context, emits the `Start` op, runs `f`
/// under `catch_unwind`, and records the outcome; a non-abandon panic
/// becomes the run's failure.
pub(crate) fn spawn_model_thread<T: Send + 'static>(
    exec: &Arc<Execution>,
    tid: usize,
    loc: &'static Location<'static>,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<T> {
    install_panic_hook();
    let exec = exec.clone();
    std::thread::Builder::new()
        .name(format!("bsched-model-t{tid}"))
        .spawn(move || {
            struct Live(Arc<Execution>);
            impl Drop for Live {
                fn drop(&mut self) {
                    let mut st = self.0.state.lock().unwrap();
                    st.live_os -= 1;
                    drop(st);
                    self.0.cv.notify_all();
                }
            }
            CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
            let live = Live(exec.clone());
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                exec.yield_op(tid, OpKind::Start, 0, 0, "start", loc, usize::MAX);
                f()
            }));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let mut st = exec.state.lock().unwrap();
            match res {
                Ok(v) => {
                    st.threads[tid].status = Status::Finished;
                    if st.turn == Turn::Thread(tid) {
                        st.turn = Turn::Controller;
                    }
                    drop(st);
                    exec.cv.notify_all();
                    drop(live);
                    v
                }
                Err(payload) => {
                    st.threads[tid].status = Status::Panicked;
                    if st.turn == Turn::Thread(tid) {
                        st.turn = Turn::Controller;
                    }
                    if payload.downcast_ref::<Abandon>().is_none() && st.failure.is_none() {
                        let name = st.threads[tid].name.clone();
                        st.failure = Some(format!(
                            "thread t{tid} ({name}) panicked: {}",
                            panic_message(payload.as_ref())
                        ));
                        st.abandoned = true;
                    }
                    drop(st);
                    exec.cv.notify_all();
                    drop(live);
                    panic::resume_unwind(payload)
                }
            }
        })
        .expect("bsched-model: failed to spawn model thread")
}

// ---------------------------------------------------------------------------
// One run
// ---------------------------------------------------------------------------

enum Choice {
    Pick(usize),
    Prune,
}

#[derive(Debug)]
enum Outcome {
    Ok,
    Failure(String),
    Pruned,
    StepLimit,
}

struct RunResult {
    outcome: Outcome,
    trace: Trace,
    schedule: Vec<usize>,
    steps: usize,
}

fn run_one<F>(
    cfg: &Config,
    model: &Arc<F>,
    chooser: &mut dyn FnMut(&[Candidate]) -> Choice,
) -> RunResult
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new());
    let tid = register_thread(&exec, "main".to_owned());
    let m = Arc::clone(model);
    // Detached deliberately: the controller's teardown waits for
    // live_os == 0, which the wrapper's drop guard decrements.
    let _root = spawn_model_thread(&exec, tid, Location::caller(), move || (m)());
    exec.run_controller(cfg, chooser)
}

// ---------------------------------------------------------------------------
// Public API: config, report, strategies
// ---------------------------------------------------------------------------

/// Exploration bounds and knobs. `Default` suits small models.
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-schedule step bound; hitting it is a failure when
    /// `fail_on_step_limit` (the default) — models are expected to
    /// terminate — or a silent prune otherwise (for models that loop
    /// until an external stop, e.g. the health prober).
    pub max_steps: usize,
    /// Total schedules bound for [`explore`]; the report's `complete`
    /// is false if the bound was hit.
    pub max_schedules: u64,
    /// CHESS-style preemption bound for [`explore`]: limits schedules
    /// to at most N involuntary context switches. `None` = unbounded.
    pub preemption_bound: Option<usize>,
    /// Sleep-set (DPOR-lite) reduction for [`explore`]; on by default,
    /// switch off only to measure how much it saves.
    pub reduction: bool,
    pub fail_on_step_limit: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_steps: 20_000,
            max_schedules: 1_000_000,
            preemption_bound: None,
            reduction: true,
            fail_on_step_limit: true,
        }
    }
}

/// One step of a recorded interleaving.
pub struct TraceStep {
    pub step: usize,
    pub tid: usize,
    pub thread: String,
    pub kind: OpKind,
    pub name: &'static str,
    pub obj: usize,
    pub loc: String,
    pub note: String,
}

/// The full interleaving of a schedule, printable step-by-step.
pub struct Trace {
    pub steps: Vec<TraceStep>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(
                f,
                "  #{:<4} t{}({}) {:<18}",
                s.step,
                s.tid,
                s.thread,
                format!("{} {:?}", s.name, s.kind)
            )?;
            if s.obj != 0 {
                write!(f, " obj#{:<3}", s.obj)?;
            } else {
                write!(f, "        ")?;
            }
            write!(f, " at {}", s.loc)?;
            if !s.note.is_empty() {
                write!(f, "  [{}]", s.note)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A bug found by exploration: what went wrong, the interleaving that
/// triggered it, and the schedule to hand to [`replay`].
pub struct Failure {
    pub message: String,
    pub trace: Trace,
    /// The chosen tid at each step — feed to [`replay`] to reproduce.
    pub schedule: Vec<usize>,
}

impl Failure {
    /// Human-readable rendering: message, replay schedule, trace.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "model check failed: {}\nreplay schedule ({} steps): {:?}\ninterleaving:\n{}",
            self.message,
            self.schedule.len(),
            self.schedule,
            self.trace
        )
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// What an exploration did and whether it found anything.
pub struct Report {
    pub schedules_run: u64,
    /// True iff the state space was exhausted within every bound
    /// (always false for PCT, which samples).
    pub complete: bool,
    pub failure: Option<Failure>,
}

// --- DFS with sleep sets ---------------------------------------------------

struct Frame {
    /// enabled \ sleep at first visit; exploration order is fixed.
    candidates: Vec<Candidate>,
    idx: usize,
    /// Sleep set on entry to this node.
    sleep: Vec<Candidate>,
}

/// Bounded exhaustive DFS over all schedules, with sleep-set
/// reduction: after exploring a transition from a node, it enters the
/// node's sleep set, and descendants drop sleeping transitions that
/// stay independent of every step taken — pruning interleavings that
/// only commute independent ops. Sound for safety properties and
/// deadlocks (every Mazurkiewicz trace is still visited once).
pub fn explore<F>(cfg: &Config, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules_run: u64 = 0;
    let mut complete = true;

    loop {
        let mut depth = 0usize;
        let mut cur_sleep: Vec<Candidate> = Vec::new();
        let mut last_tid: Option<usize> = None;
        let mut preempt_used = 0usize;
        let mut divergence: Option<String> = None;

        let result = run_one(cfg, &model, &mut |enabled| {
            if depth < stack.len() {
                // Replay the committed prefix.
                let fr = &stack[depth];
                let want = fr.candidates[fr.idx].clone();
                let Some(pos) = enabled
                    .iter()
                    .position(|c| c.tid == want.tid && same_op(&c.op, &want.op))
                else {
                    divergence = Some(format!(
                        "replay divergence at depth {depth}: expected t{} {} but it is not enabled \
                         — the model is nondeterministic beyond its sync ops",
                        want.tid, want.op.name
                    ));
                    return Choice::Prune;
                };
                let mut s = fr.sleep.clone();
                s.extend_from_slice(&fr.candidates[..fr.idx]);
                s.retain(|x| !conflicts(&x.op, &want.op));
                cur_sleep = s;
                if let Some(l) = last_tid {
                    if l != want.tid && enabled.iter().any(|c| c.tid == l) {
                        preempt_used += 1;
                    }
                }
                last_tid = Some(want.tid);
                depth += 1;
                Choice::Pick(pos)
            } else {
                // Fresh frontier node.
                let mut cands: Vec<Candidate> = if cfg.reduction {
                    enabled
                        .iter()
                        .filter(|c| {
                            !cur_sleep
                                .iter()
                                .any(|s| s.tid == c.tid && same_op(&s.op, &c.op))
                        })
                        .cloned()
                        .collect()
                } else {
                    enabled.to_vec()
                };
                if let Some(bound) = cfg.preemption_bound {
                    if preempt_used >= bound {
                        if let Some(l) = last_tid {
                            if cands.iter().any(|c| c.tid == l) {
                                cands.retain(|c| c.tid == l);
                            }
                        }
                    }
                }
                if cands.is_empty() {
                    // Everything enabled is asleep: this whole subtree
                    // is covered by an already-explored reordering.
                    return Choice::Prune;
                }
                let chosen = cands[0].clone();
                let pos = enabled
                    .iter()
                    .position(|c| c.tid == chosen.tid && same_op(&c.op, &chosen.op))
                    .expect("candidate came from enabled");
                stack.push(Frame {
                    candidates: cands,
                    idx: 0,
                    sleep: cur_sleep.clone(),
                });
                cur_sleep.retain(|x| !conflicts(&x.op, &chosen.op));
                if let Some(l) = last_tid {
                    if l != chosen.tid && enabled.iter().any(|c| c.tid == l) {
                        preempt_used += 1;
                    }
                }
                last_tid = Some(chosen.tid);
                depth += 1;
                Choice::Pick(pos)
            }
        });

        schedules_run += 1;
        if let Some(msg) = divergence {
            return Report {
                schedules_run,
                complete: false,
                failure: Some(Failure {
                    message: msg,
                    trace: result.trace,
                    schedule: result.schedule,
                }),
            };
        }
        match result.outcome {
            Outcome::Failure(message) => {
                return Report {
                    schedules_run,
                    complete: false,
                    failure: Some(Failure {
                        message,
                        trace: result.trace,
                        schedule: result.schedule,
                    }),
                };
            }
            Outcome::StepLimit => {
                if cfg.fail_on_step_limit {
                    return Report {
                        schedules_run,
                        complete: false,
                        failure: Some(Failure {
                            message: format!(
                                "schedule exceeded max_steps = {} — non-terminating model \
                                 or livelock",
                                cfg.max_steps
                            ),
                            trace: result.trace,
                            schedule: result.schedule,
                        }),
                    };
                }
                complete = false;
            }
            Outcome::Ok | Outcome::Pruned => {}
        }

        // Backtrack: advance the deepest frame with siblings left.
        while let Some(fr) = stack.last_mut() {
            fr.idx += 1;
            if fr.idx < fr.candidates.len() {
                break;
            }
            stack.pop();
        }
        if stack.is_empty() {
            return Report {
                schedules_run,
                complete,
                failure: None,
            };
        }
        if schedules_run >= cfg.max_schedules {
            return Report {
                schedules_run,
                complete: false,
                failure: None,
            };
        }
    }
}

// --- PCT -------------------------------------------------------------------

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeded PCT (probabilistic concurrency testing): each schedule draws
/// random per-thread priorities plus `depth` priority-change points;
/// the scheduler always runs the highest-priority enabled thread.
/// For a bug of depth d, each schedule finds it with probability
/// ≥ 1/(n·k^(d-1)) — so thousands of schedules give real coverage
/// where exhaustive search cannot finish. Fully deterministic per
/// `(seed, schedule index)`; a found failure carries its replayable
/// schedule like any other.
pub fn explore_pct<F>(cfg: &Config, seed: u64, schedules: u64, depth: usize, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut est_len: usize = 64;
    let mut schedules_run: u64 = 0;
    for i in 0..schedules {
        let mut rng = SplitMix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let points: Vec<usize> = (0..depth)
            .map(|_| (rng.next() as usize) % est_len.max(1) + 1)
            .collect();
        let mut prios: HashMap<usize, u64> = HashMap::new();
        let mut demotions: u64 = 0;
        let mut step = 0usize;
        let result = run_one(cfg, &model, &mut |enabled| {
            for c in enabled {
                // Lazy assignment in candidate (= tid) order keeps the
                // rng stream deterministic per schedule.
                prios.entry(c.tid).or_insert_with(|| rng.next() | (1 << 63));
            }
            step += 1;
            if points.contains(&step) {
                if let Some(hi) = enabled.iter().max_by_key(|c| prios[&c.tid]) {
                    demotions += 1;
                    prios.insert(hi.tid, demotions);
                }
            }
            let pos = enabled
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| prios[&c.tid])
                .map(|(i, _)| i)
                .expect("enabled is non-empty");
            Choice::Pick(pos)
        });
        schedules_run += 1;
        est_len = result.steps.max(1);
        match result.outcome {
            Outcome::Failure(message) => {
                return Report {
                    schedules_run,
                    complete: false,
                    failure: Some(Failure {
                        message,
                        trace: result.trace,
                        schedule: result.schedule,
                    }),
                };
            }
            Outcome::StepLimit if cfg.fail_on_step_limit => {
                return Report {
                    schedules_run,
                    complete: false,
                    failure: Some(Failure {
                        message: format!(
                            "schedule exceeded max_steps = {} — non-terminating model or livelock",
                            cfg.max_steps
                        ),
                        trace: result.trace,
                        schedule: result.schedule,
                    }),
                };
            }
            _ => {}
        }
    }
    Report {
        schedules_run,
        complete: false,
        failure: None,
    }
}

// --- Replay ----------------------------------------------------------------

/// Re-execute one recorded schedule (the `schedule` field of a
/// [`Failure`]) and report what happens — the step-by-step trace of a
/// failing run, deterministically reproduced.
pub fn replay<F>(cfg: &Config, schedule: &[usize], model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut k = 0usize;
    let mut divergence: Option<String> = None;
    let result = run_one(cfg, &model, &mut |enabled| {
        let pick = if k < schedule.len() {
            let want = schedule[k];
            match enabled.iter().position(|c| c.tid == want) {
                Some(p) => p,
                None => {
                    divergence = Some(format!(
                        "replay divergence at step {k}: t{want} is not enabled"
                    ));
                    return Choice::Prune;
                }
            }
        } else {
            0
        };
        k += 1;
        Choice::Pick(pick)
    });
    let failure = match (divergence, result.outcome) {
        (Some(msg), _) | (None, Outcome::Failure(msg)) => Some(Failure {
            message: msg,
            trace: result.trace,
            schedule: result.schedule,
        }),
        (None, Outcome::StepLimit) if cfg.fail_on_step_limit => Some(Failure {
            message: format!("schedule exceeded max_steps = {}", cfg.max_steps),
            trace: result.trace,
            schedule: result.schedule,
        }),
        _ => None,
    };
    Report {
        schedules_run: 1,
        complete: false,
        failure,
    }
}

// --- Panic-on-failure conveniences ----------------------------------------

/// [`explore`] and panic with the rendered failure if one is found.
/// The usual entry point for a model test.
pub fn check<F>(cfg: &Config, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(cfg, model);
    if let Some(f) = &report.failure {
        panic!("{}", f.render());
    }
    report
}

/// [`explore_pct`] and panic with the rendered failure if one is found.
pub fn check_pct<F>(cfg: &Config, seed: u64, schedules: u64, depth: usize, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore_pct(cfg, seed, schedules, depth, model);
    if let Some(f) = &report.failure {
        panic!("{}", f.render());
    }
    report
}
