//! Checker self-tests: tiny models with *known* verdicts prove the
//! explorer finds real bugs, accepts correct protocols, and stays
//! deterministic. These run in the ordinary tier-1 suite — the shim
//! falls through to std on non-model threads, so no cfg is needed.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use bsched_model::sync::{AtomicUsize, Condvar, Mutex, Ordering};
use bsched_model::{explore, explore_pct, replay, Config};

fn small() -> Config {
    Config {
        max_steps: 2_000,
        max_schedules: 100_000,
        ..Config::default()
    }
}

/// The classic racy counter: two threads do load-then-store. Some
/// interleaving loses an increment, and exhaustive DFS must find it.
#[test]
fn dfs_finds_lost_update() {
    let report = explore(&small(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = bsched_model::sync::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.failure.expect("the lost update must be found");
    assert!(
        failure.message.contains("lost update"),
        "failure should be the assertion, got: {}",
        failure.message
    );
    assert!(
        !failure.schedule.is_empty(),
        "failure carries a replayable schedule"
    );
    // The recorded schedule reproduces the same failure.
    let again = replay(&small(), &failure.schedule, || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = bsched_model::sync::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let refound = again.failure.expect("replay reproduces the failure");
    assert!(refound.message.contains("lost update"));
    // And the trace is printable with source locations.
    assert!(refound.render().contains("selftest.rs"));
}

/// The fixed counter: fetch_add is atomic, so every schedule passes
/// and the exploration completes (state space exhausted).
#[test]
fn dfs_passes_atomic_counter() {
    let report = explore(&small(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = bsched_model::sync::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.failure.is_none(), "no schedule loses an increment");
    assert!(report.complete, "small model is exhausted");
    assert!(report.schedules_run >= 2, "both orders were tried");
}

/// ABBA lock ordering: some schedule deadlocks, and the detector must
/// say so rather than hang.
#[test]
fn dfs_detects_abba_deadlock() {
    let report = explore(&small(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = bsched_model::sync::thread::spawn(move || {
            let ga = a2.lock().unwrap();
            let gb = b2.lock().unwrap();
            drop((ga, gb));
        });
        let gb = b.lock().unwrap();
        let ga = a.lock().unwrap();
        drop((gb, ga));
        t.join().unwrap();
    });
    let failure = report.failure.expect("ABBA deadlock must be found");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
    assert!(failure.message.contains("blocked locking mutex"));
}

/// A condvar wait whose flag check happens *outside* the mutex: the
/// notify can land between check and wait — the textbook lost wakeup.
/// The checker reports it as a deadlock naming the condvar wait.
#[test]
fn dfs_detects_lost_wakeup() {
    let report = explore(&small(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = bsched_model::sync::thread::spawn(move || {
            *s2.0.lock().unwrap() = true;
            s2.1.notify_one();
        });
        // BUG: decide-then-lock. If the notify fires between the
        // unlocked check and the wait, nobody ever wakes us.
        let ready = *state.0.lock().unwrap();
        if !ready {
            let guard = state.0.lock().unwrap();
            let _guard = state.1.wait(guard).unwrap();
        }
        t.join().unwrap();
    });
    let failure = report.failure.expect("lost wakeup must be found");
    assert!(
        failure.message.contains("lost wakeup"),
        "got: {}",
        failure.message
    );
}

/// The correct protocol — re-check the flag under the mutex in a wait
/// loop — passes every schedule.
#[test]
fn dfs_passes_correct_condvar_protocol() {
    let report = explore(&small(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = bsched_model::sync::thread::spawn(move || {
            *s2.0.lock().unwrap() = true;
            s2.1.notify_one();
        });
        let mut guard = state.0.lock().unwrap();
        while !*guard {
            guard = state.1.wait(guard).unwrap();
        }
        drop(guard);
        t.join().unwrap();
    });
    assert!(
        report.failure.is_none(),
        "correct protocol must pass: {}",
        report.failure.map_or_else(String::new, |f| f.render())
    );
    assert!(report.complete);
}

/// Sleep-set reduction prunes commuting interleavings: two threads
/// touching *disjoint* atomics explore fewer schedules with the
/// reduction than without, and both verdicts agree.
#[test]
fn sleep_sets_prune_disjoint_ops() {
    let model = || {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = bsched_model::sync::thread::spawn(move || {
            a2.fetch_add(1, Ordering::SeqCst);
            a2.fetch_add(1, Ordering::SeqCst);
        });
        b.fetch_add(1, Ordering::SeqCst);
        b.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
    };
    let with = explore(&small(), model);
    let without = explore(
        &Config {
            reduction: false,
            ..small()
        },
        model,
    );
    assert!(with.failure.is_none() && without.failure.is_none());
    assert!(with.complete && without.complete);
    assert!(
        with.schedules_run < without.schedules_run,
        "reduction must prune: {} vs {}",
        with.schedules_run,
        without.schedules_run
    );
}

/// PCT is deterministic per seed and finds the racy-counter bug within
/// a modest schedule budget.
#[test]
fn pct_is_seeded_and_finds_races() {
    let model = || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = bsched_model::sync::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let a = explore_pct(&small(), 42, 200, 3, model);
    let b = explore_pct(&small(), 42, 200, 3, model);
    let fa = a.failure.expect("PCT finds the race");
    let fb = b.failure.expect("same seed, same verdict");
    assert_eq!(fa.schedule, fb.schedule, "same seed, same schedule");
    assert_eq!(a.schedules_run, b.schedules_run);
}

/// Model threads really interleave under the token: a run's effects
/// are visible to plain std state created inside the closure, and the
/// harness tears every OS thread down between schedules.
#[test]
fn runs_are_isolated_between_schedules() {
    // `outside` is std (uninstrumented) on purpose: result accounting
    // that must not add yield points.
    let outside = Arc::new(StdAtomicUsize::new(0));
    let o2 = Arc::clone(&outside);
    let report = explore(&small(), move || {
        let local = Arc::new(AtomicUsize::new(0));
        let l2 = Arc::clone(&local);
        let t = bsched_model::sync::thread::spawn(move || {
            l2.fetch_add(1, Ordering::SeqCst);
        });
        local.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        // Per-run state always ends at exactly 2 regardless of order.
        assert_eq!(local.load(Ordering::SeqCst), 2);
        o2.fetch_add(1, StdOrdering::SeqCst);
    });
    assert!(report.failure.is_none());
    let completed = outside.load(StdOrdering::SeqCst) as u64;
    assert!(
        completed >= 2 && completed <= report.schedules_run,
        "closure completions ({completed}) bounded by schedules run ({})",
        report.schedules_run
    );
}

/// A spawned-but-never-joined child still participates and the run
/// terminates cleanly (the controller waits for all OS threads).
#[test]
fn detached_threads_are_handled() {
    let report = explore(&small(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = bsched_model::sync::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        c.fetch_add(1, Ordering::SeqCst);
        // Dropping the handle detaches; the scheduler still runs the
        // child to completion before the run ends.
        drop(t);
    });
    assert!(report.failure.is_none());
    assert!(report.complete);
}
