//! The `unsafe` audit: every `unsafe` block, fn, or impl in the
//! workspace sources must carry an adjacent `// SAFETY:` comment
//! stating the invariant that makes it sound.
//!
//! This is a source-level lint, not a semantic one: it cannot judge
//! whether a stated invariant is *true* (that is what the model
//! checker, miri, and TSan are for) — it guarantees the invariant is
//! *written down*, so every soundness argument is reviewable where the
//! code is. `bsched analyze --unsafe-audit` and
//! `scripts/unsafe_audit.sh` run it; CI fails on any violation.

use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above an `unsafe` token the justification may sit
/// (attributes and cfg lines commonly intervene).
const LOOKBACK: usize = 8;

/// One `unsafe` occurrence with no adjacent `// SAFETY:` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeViolation {
    /// Source file, relative to the audit root when possible.
    pub file: PathBuf,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for UnsafeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `unsafe` without an adjacent `// SAFETY:` comment: {}",
            self.file.display(),
            self.line,
            self.snippet
        )
    }
}

/// True when `line` contains the `unsafe` keyword as its own token
/// (not `unsafe_op_in_unsafe_fn`, not part of an identifier).
fn has_unsafe_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(at) = line[from..].find("unsafe") {
        let start = from + at;
        let end = start + "unsafe".len();
        let left_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let right_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Strips trailing `// …` comments, `"…"` string contents, and
/// three-character char literals, so `unsafe` mentioned in prose or a
/// message does not count as code. (No multi-line comment, multi-line
/// string, or raw-string tracking: the workspace style keeps those off
/// `unsafe` lines, and a false positive here fails loud in CI where it
/// gets fixed, not silently.)
fn code_of(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break,
            // A char literal such as `'"'` must not open a "string".
            b'\'' if bytes.get(i + 2) == Some(&b'\'') => i += 3,
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            c => {
                out.push(char::from(c));
                i += 1;
            }
        }
    }
    out
}

/// Audits one file's source text. `file` is only used to label
/// violations.
#[must_use]
pub fn audit_source(file: &Path, source: &str) -> Vec<UnsafeViolation> {
    let lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Doc comments, plain comments, and lint attributes like
        // `#![deny(unsafe_op_in_unsafe_fn)]` talk *about* unsafe.
        if trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            continue;
        }
        if !has_unsafe_token(&code_of(raw)) {
            continue;
        }
        // Same line (`unsafe { … } // SAFETY: …`) or any of the
        // preceding LOOKBACK lines may carry the justification.
        let above = &lines[idx.saturating_sub(LOOKBACK)..idx];
        let justified = raw.contains("SAFETY:")
            || above
                .iter()
                .any(|l| l.trim_start().starts_with("//") && l.contains("SAFETY:"));
        if !justified {
            violations.push(UnsafeViolation {
                file: file.to_path_buf(),
                line: idx + 1,
                snippet: raw.trim().to_owned(),
            });
        }
    }
    violations
}

/// Recursively audits every `.rs` file under `root`, skipping build
/// output and vendored third-party code (their soundness comments are
/// not ours to mandate).
///
/// # Errors
///
/// Propagates directory walks or file reads that fail — an unreadable
/// source tree must fail the audit, not shrink it.
pub fn audit_tree(root: &Path) -> std::io::Result<Vec<UnsafeViolation>> {
    let mut violations = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let source = std::fs::read_to_string(&path)?;
                let label = path.strip_prefix(root).unwrap_or(&path);
                violations.extend(audit_source(label, &source));
            }
        }
    }
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<usize> {
        audit_source(Path::new("x.rs"), src)
            .into_iter()
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        assert_eq!(violations("fn f() {\n    unsafe { work() };\n}\n"), vec![2]);
    }

    #[test]
    fn adjacent_safety_comment_passes() {
        let src =
            "fn f() {\n    // SAFETY: work is sound because reasons.\n    unsafe { work() };\n}\n";
        assert_eq!(violations(src), Vec::<usize>::new());
    }

    #[test]
    fn safety_comment_survives_interleaved_attributes() {
        let src = "// SAFETY: the slice is live.\n#[allow(clippy::cast_possible_truncation)]\nlet n = unsafe { call() };\n";
        assert_eq!(violations(src), Vec::<usize>::new());
    }

    #[test]
    fn unsafe_impl_needs_a_comment_too() {
        assert_eq!(violations("unsafe impl Send for T {}\n"), vec![1]);
        let ok = "// SAFETY: T owns its pointers.\nunsafe impl Send for T {}\n";
        assert_eq!(violations(ok), Vec::<usize>::new());
    }

    #[test]
    fn lint_attributes_and_comments_do_not_count_as_unsafe_code() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n#![allow(unsafe_code)]\n// unsafe is discussed here\nlet unsafe_count = 0;\n";
        assert_eq!(violations(src), Vec::<usize>::new());
    }

    #[test]
    fn unsafe_inside_strings_and_char_literals_is_prose_not_code() {
        let src = "let msg = \"unsafe without a comment\";\nlet q = '\"';\nlet r = format!(\"{} unsafe uses\", n);\n";
        assert_eq!(violations(src), Vec::<usize>::new());
    }

    #[test]
    fn too_distant_safety_comment_is_flagged() {
        let mut src = String::from("// SAFETY: too far away.\n");
        for _ in 0..LOOKBACK {
            src.push_str("let x = 1;\n");
        }
        src.push_str("unsafe { work() };\n");
        assert_eq!(violations(&src), vec![LOOKBACK + 2]);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The audit's own acceptance test: the repo this code ships in
        // must pass it. CARGO_MANIFEST_DIR = crates/analyze.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = audit_tree(&root).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "unsafe without SAFETY comments:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
