//! Static analysis over the IR, the code DAG and kernel source.
//!
//! `bsched-verify` (PR 2) checks *outputs* — schedules, allocations,
//! timelines — after the pipeline runs. This crate checks *inputs*: a
//! malformed or degenerate kernel produces meaningless paper tables long
//! before any verifier sees a schedule. Two families of passes run over
//! every block:
//!
//! * **Correctness lints** ([`lints`]) — classic dataflow on the
//!   straight-line IR: reads of uninitialized registers, dead stores and
//!   dead code, redundant loads under the active
//!   [`AliasModel`](bsched_dag::AliasModel), empty/cold blocks, and a
//!   weight-invariant pass for the paper's balanced-weight properties.
//! * **Profile analyses** ([`profile`], [`envelope`]) — load-level
//!   parallelism, load density, schedule lower bounds and MaxLive
//!   pressure per block, aggregated per benchmark and checked against
//!   the profile envelope DESIGN.md claims for each Perfect Club
//!   stand-in.
//!
//! Findings flow through the [`diag`] engine: stable lint ids,
//! allow/warn/deny configuration, kernel-source spans threaded from
//! `bsched_workload::parse`, and text/JSON renderers. Entry points are
//! the [`Analyzer`] (library), `bsched analyze` (CLI) and the
//! pipeline's optional pre-scheduling gate.
//!
//! # Example
//!
//! ```
//! use bsched_analyze::{Analyzer, Severity};
//! use bsched_ir::BlockBuilder;
//!
//! let mut b = BlockBuilder::new("bad");
//! let base = b.def_int("base");
//! let x = b.load("x", base, 8);
//! b.store(x, base, 0);
//! b.store(x, base, 0); // overwrites the first store: dead
//! let diags = Analyzer::default().analyze_block(&b.finish(), None);
//! assert_eq!(diags[0].severity, Severity::Error);
//! assert_eq!(diags[0].lint.id(), "dead-store");
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod diag;
pub mod envelope;
pub mod failure;
pub mod json;
pub mod lints;
pub mod profile;
pub mod unsafe_audit;

pub use analyzer::{Analyzer, BenchmarkReport};
pub use diag::{
    has_errors, render_json, render_text, Diagnostic, Finding, Lint, LintConfig, Severity,
};
pub use envelope::{check_envelope, envelope_for, ProfileEnvelope, ENVELOPES};
pub use failure::{failure_json, FailureKind};
pub use profile::{
    benchmark_json, max_live, pressure_profile, suite_json, BenchmarkProfile, BlockProfile,
};
pub use unsafe_audit::{audit_tree, UnsafeViolation};
