//! Correctness lints: classic dataflow over straight-line IR.
//!
//! Blocks here are straight-line (the paper's schedulers are strictly
//! block-local), which makes the dataflow problems exact rather than
//! fixed-point approximations: reaching definitions, store liveness and
//! value reuse all reduce to forward/backward scans over program order.
//! Memory questions are answered through the active
//! [`AliasModel`], so the lints are exactly as precise as the DAG builder
//! the schedulers use.

use bsched_core::{BalancedWeights, Ratio, WeightAssigner};
use bsched_dag::{build_dag, AliasModel, CodeDag};
use bsched_ir::{BasicBlock, Function, InstId, MemAccess};

use crate::diag::{Finding, Lint};

/// Flags registers read before any definition in the block (reaching
/// definitions over straight-line code: a use is uninitialized iff no
/// earlier instruction defines the register).
///
/// Blocks are self-contained in this reproduction — the lowering
/// materialises every base address and accumulator seed — so a read with
/// no reaching definition is always a bug, not a live-in.
#[must_use]
pub fn uninitialized_reads(block: &BasicBlock) -> Vec<Finding> {
    let mut defined = std::collections::HashSet::new();
    let mut reported = std::collections::HashSet::new();
    let mut findings = Vec::new();
    for (id, inst) in block.iter_ids() {
        for &u in inst.uses() {
            if !defined.contains(&u) && reported.insert(u) {
                findings.push(Finding::at(
                    Lint::UninitializedRead,
                    id,
                    format!("register {u} is read before any definition in the block"),
                ));
            }
        }
        for &d in inst.defs() {
            defined.insert(d);
        }
    }
    findings
}

/// Flags stores whose value is overwritten before any load could observe
/// it.
///
/// A store dies when a later store writes the exact same known location
/// (covering at least the same bytes) and no load in between *may* read
/// the stored bytes under `alias`. Memory is live-out of every block, so
/// a store that survives to the end of the block is never flagged; and a
/// store with an unknown offset is never proven dead.
#[must_use]
pub fn dead_stores(block: &BasicBlock, alias: AliasModel) -> Vec<Finding> {
    let accs: Vec<(InstId, MemAccess)> = block
        .iter_ids()
        .filter_map(|(id, i)| i.mem().map(|m| (id, m)))
        .collect();
    let mut findings = Vec::new();
    for (pos, &(id, acc)) in accs.iter().enumerate() {
        if !acc.is_write() || acc.loc().offset().is_none() {
            continue;
        }
        for &(later_id, later) in &accs[pos + 1..] {
            if !later.is_write() {
                if alias.conflicts(acc, later) {
                    break; // a load may observe the stored value
                }
            } else if later.loc() == acc.loc() && later.width() >= acc.width() {
                findings.push(Finding::at(
                    Lint::DeadStore,
                    id,
                    format!(
                        "value stored to {} is overwritten by {later_id} before any load can \
                         observe it",
                        acc.loc()
                    ),
                ));
                break;
            }
        }
    }
    findings
}

/// Flags non-store instructions whose results are never consumed.
///
/// An instruction is dead when every register it defines is redefined (or
/// the block ends) before any use. Register values are *not* treated as
/// live-out: the blocks analysed here are whole kernels whose outputs
/// flow through memory, so an unconsumed value really is wasted work.
/// The kernel lowering produces a known benign case — accumulator seed
/// constants that every unrolled copy overwrites — which is why this
/// lint defaults to warn, not error.
#[must_use]
pub fn dead_code(block: &BasicBlock) -> Vec<Finding> {
    let insts = block.insts();
    let mut findings = Vec::new();
    for (id, inst) in block.iter_ids() {
        if inst.is_store() || inst.defs().is_empty() {
            continue;
        }
        let used = inst.defs().iter().any(|&d| {
            for later in &insts[id.index() + 1..] {
                if later.uses().contains(&d) {
                    return true;
                }
                if later.defs().contains(&d) {
                    return false; // redefined before any use
                }
            }
            false
        });
        if !used {
            findings.push(Finding::at(
                Lint::DeadCode,
                id,
                format!("result of {} is never used", inst.opcode()),
            ));
        }
    }
    findings
}

/// Flags loads that repeat an earlier load of the same known location
/// with no possibly-conflicting store in between (under `alias`): the
/// second load is a common-subexpression-elimination opportunity the
/// front end missed.
///
/// Unknown-offset loads never participate — `a[idx[i]]` twice may well
/// read two different addresses.
#[must_use]
pub fn redundant_loads(block: &BasicBlock, alias: AliasModel) -> Vec<Finding> {
    let accs: Vec<(InstId, MemAccess)> = block
        .iter_ids()
        .filter_map(|(id, i)| i.mem().map(|m| (id, m)))
        .collect();
    let mut findings = Vec::new();
    for (pos, &(id, acc)) in accs.iter().enumerate() {
        if acc.is_write() || acc.loc().offset().is_none() {
            continue;
        }
        for &(earlier_id, earlier) in accs[..pos].iter().rev() {
            if earlier.is_write() {
                if alias.conflicts(earlier, acc) {
                    break; // the value in memory may have changed
                }
            } else if earlier.loc() == acc.loc() && earlier.width() == acc.width() {
                findings.push(Finding::at(
                    Lint::RedundantLoad,
                    id,
                    format!(
                        "load of {} repeats {earlier_id} with no intervening store",
                        acc.loc()
                    ),
                ));
                break;
            }
        }
    }
    findings
}

/// Statically checks the paper's balanced-weight invariants on `block`:
///
/// * every weight is non-negative;
/// * every load weighs at least its issue slot (≥ 1), since balanced
///   weights only *add* parallelism contributions to the base slot;
/// * every non-load weighs exactly 1 under the paper's single-cycle
///   machine model;
/// * the Fortran-alias dependence edges are a subset of the
///   C-conservative edges (Fig. 8: the C model may only *add*
///   constraints).
#[must_use]
pub fn weight_invariants(block: &BasicBlock) -> Vec<Finding> {
    let fortran = build_dag(block, AliasModel::Fortran);
    let conservative = build_dag(block, AliasModel::CConservative);
    let weights = BalancedWeights::new().assign(&fortran);
    let mut findings = Vec::new();
    for id in fortran.node_ids() {
        let w = weights.weight(id);
        if w < Ratio::ZERO {
            findings.push(Finding::at(
                Lint::WeightInvariant,
                id,
                format!("balanced weight {w} is negative"),
            ));
        } else if fortran.is_load(id) {
            if w < Ratio::ONE {
                findings.push(Finding::at(
                    Lint::WeightInvariant,
                    id,
                    format!("load weight {w} is below the issue-slot minimum of 1"),
                ));
            }
        } else if w != Ratio::ONE {
            findings.push(Finding::at(
                Lint::WeightInvariant,
                id,
                format!("non-load weight {w} differs from the single-cycle latency 1"),
            ));
        }
    }
    for edge in fortran.edges() {
        if !conservative.has_edge(edge.from, edge.to) {
            findings.push(Finding::at(
                Lint::WeightInvariant,
                edge.to,
                format!(
                    "{} dependence {} -> {} exists under Fortran aliasing but not under \
                     C-conservative aliasing",
                    edge.kind, edge.from, edge.to
                ),
            ));
        }
    }
    findings
}

/// Runs every block-local correctness lint.
#[must_use]
pub fn block_lints(block: &BasicBlock, alias: AliasModel) -> Vec<Finding> {
    if block.is_empty() {
        return vec![Finding::block_level(
            Lint::EmptyBlock,
            "block contains no instructions",
        )];
    }
    let mut findings = uninitialized_reads(block);
    findings.extend(dead_stores(block, alias));
    findings.extend(dead_code(block));
    findings.extend(redundant_loads(block, alias));
    findings.extend(weight_invariants(block));
    findings
}

/// Relative frequency below which a block counts as effectively
/// unreachable: its contribution to the frequency-weighted tables is
/// noise.
pub const COLD_FRACTION: f64 = 1e-6;

/// Function-level lints: empty blocks and blocks whose profiled frequency
/// is negligible (`< COLD_FRACTION` of the hottest block).
///
/// Returns `(block name, finding)` pairs because the findings span
/// multiple blocks.
#[must_use]
pub fn function_lints(func: &Function) -> Vec<(String, Finding)> {
    let mut findings = Vec::new();
    let hottest = func
        .blocks()
        .iter()
        .map(BasicBlock::frequency)
        .fold(0.0_f64, f64::max);
    for block in func.blocks() {
        if block.is_empty() {
            findings.push((
                block.name().to_owned(),
                Finding::block_level(Lint::EmptyBlock, "block contains no instructions"),
            ));
        }
        if block.frequency() < COLD_FRACTION * hottest {
            findings.push((
                block.name().to_owned(),
                Finding::block_level(
                    Lint::ColdBlock,
                    format!(
                        "frequency {} is below {COLD_FRACTION} of the hottest block ({hottest}); \
                         the block contributes nothing to the tables",
                        block.frequency()
                    ),
                ),
            ));
        }
    }
    findings
}

/// The DAG used by [`weight_invariants`], exposed so callers (the dot
/// overlay, tests) can reuse it without rebuilding.
#[must_use]
pub fn dag_of(block: &BasicBlock, alias: AliasModel) -> CodeDag {
    build_dag(block, alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{BlockBuilder, Inst, Opcode, RegClass, RegionId, VirtReg};

    fn lints_of(findings: &[Finding]) -> Vec<Lint> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn clean_block_has_no_findings() {
        let mut b = BlockBuilder::new("clean");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let y = b.load("y", base, 8);
        let s = b.fadd("s", x, y);
        b.store(s, base, 16);
        let block = b.finish();
        assert!(block_lints(&block, AliasModel::Fortran).is_empty());
    }

    #[test]
    fn uninitialized_read_is_flagged_once_per_register() {
        let mut b = BlockBuilder::new("t");
        let _base = b.def_int("base");
        let ghost = VirtReg::new(RegClass::Float, 999).into();
        b.push(Inst::new(
            Opcode::FAdd,
            vec![VirtReg::new(RegClass::Float, 0).into()],
            vec![ghost, ghost],
            None,
        ));
        let block = b.finish();
        let findings = uninitialized_reads(&block);
        assert_eq!(lints_of(&findings), vec![Lint::UninitializedRead]);
        assert_eq!(findings[0].inst, Some(InstId::new(1)));
        assert!(findings[0].message.contains("vf999"), "{:?}", findings[0]);
    }

    #[test]
    fn dead_store_detected_and_killed_by_intervening_load() {
        // st a[0]; st a[0] again -> first is dead.
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 8);
        b.store(x, base, 0);
        b.store(x, base, 0);
        let block = b.finish();
        let findings = dead_stores(&block, AliasModel::Fortran);
        assert_eq!(lints_of(&findings), vec![Lint::DeadStore]);
        assert_eq!(findings[0].inst, Some(InstId::new(2)));

        // st a[0]; ld a[0]; st a[0] -> the load keeps the first store live.
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 8);
        b.store(x, base, 0);
        let y = b.load("y", base, 0);
        b.store(y, base, 0);
        assert!(dead_stores(&b.finish(), AliasModel::Fortran).is_empty());
    }

    #[test]
    fn unknown_offset_store_is_never_proven_dead() {
        let region = RegionId::new(7);
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(8));
        b.store_region(region, x, base, None);
        b.store_region(region, x, base, None);
        assert!(dead_stores(&b.finish(), AliasModel::Fortran).is_empty());
    }

    #[test]
    fn alias_model_changes_dead_store_verdict() {
        // st a[0]; ld b[0]; st a[0]: under Fortran the regions are
        // disjoint so the first store is dead; under C the load may read
        // it.
        let (ra, rb) = (RegionId::new(1), RegionId::new(2));
        let mut b = BlockBuilder::new("t");
        let abase = b.def_int("abase");
        let bbase = b.def_int("bbase");
        let x = b.load_region("x", ra, abase, Some(8));
        b.store_region(ra, x, abase, Some(0));
        let _ = b.load_region("y", rb, bbase, Some(0));
        b.store_region(ra, x, abase, Some(0));
        let block = b.finish();
        assert_eq!(dead_stores(&block, AliasModel::Fortran).len(), 1);
        assert!(dead_stores(&block, AliasModel::CConservative).is_empty());
    }

    #[test]
    fn dead_code_spots_unused_results() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let _unused = b.fadd("unused", x, x);
        b.store(x, base, 8);
        let findings = dead_code(&b.finish());
        assert_eq!(lints_of(&findings), vec![Lint::DeadCode]);
        assert_eq!(findings[0].inst, Some(InstId::new(2)));
    }

    #[test]
    fn redefinition_before_use_is_dead_code() {
        // Physical-register style reuse: f0 <- ..., f0 <- ... with only
        // the second value read.
        let f0 = VirtReg::new(RegClass::Float, 0).into();
        let block = BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::FMove, vec![f0], vec![], None),
                Inst::new(Opcode::FMove, vec![f0], vec![], None),
                Inst::new(
                    Opcode::FAdd,
                    vec![VirtReg::new(RegClass::Float, 1).into()],
                    vec![f0, f0],
                    None,
                ),
            ],
        );
        let findings = dead_code(&block);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].inst, Some(InstId::new(0)));
    }

    #[test]
    fn redundant_load_requires_no_intervening_store() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let y = b.load("y", base, 0);
        b.store(x, base, 8);
        let _ = y;
        let findings = redundant_loads(&b.finish(), AliasModel::Fortran);
        assert_eq!(lints_of(&findings), vec![Lint::RedundantLoad]);
        assert_eq!(findings[0].inst, Some(InstId::new(2)));

        // A store in between (same region, overlapping) clears it.
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        b.store(x, base, 0);
        let _ = b.load("y", base, 0);
        assert!(redundant_loads(&b.finish(), AliasModel::Fortran).is_empty());
    }

    #[test]
    fn unknown_offset_loads_are_not_redundant() {
        let region = RegionId::new(7);
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let _ = b.load_region("x", region, base, None);
        let _ = b.load_region("y", region, base, None);
        assert!(redundant_loads(&b.finish(), AliasModel::Fortran).is_empty());
    }

    #[test]
    fn weight_invariants_hold_on_a_real_kernel() {
        let block =
            bsched_workload::lower_kernel(&bsched_workload::kernels::daxpy().with_unroll(4), 100.0);
        assert!(weight_invariants(&block).is_empty());
    }

    #[test]
    fn empty_block_is_flagged() {
        let block = BasicBlock::new("empty", Vec::new());
        let findings = block_lints(&block, AliasModel::Fortran);
        assert_eq!(lints_of(&findings), vec![Lint::EmptyBlock]);
    }

    #[test]
    fn cold_block_is_flagged_at_function_level() {
        let mut hot = BlockBuilder::new("hot");
        let base = hot.def_int("base");
        let x = hot.load("x", base, 0);
        hot.store(x, base, 8);
        let hot = hot.finish().with_frequency(1e9);
        let mut cold = BlockBuilder::new("cold");
        let base = cold.def_int("base");
        let x = cold.load("x", base, 0);
        cold.store(x, base, 8);
        let cold = cold.finish().with_frequency(1.0);
        let func = Function::new("f", vec![hot, cold]);
        let findings = function_lints(&func);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, "cold");
        assert_eq!(findings[0].1.lint, Lint::ColdBlock);
    }
}
