//! The shared failure vocabulary.
//!
//! Every way a table cell can degrade has exactly one stable kebab-case
//! id, used identically by the text tables (`FAILED(<kind>: …)`), the
//! structured `CellReport` in `bsched-bench`, the evaluation journal,
//! and `bsched analyze --format json` — so tooling never has to parse
//! prose to classify a failure.

use std::fmt;

use crate::diag::json_escape;

/// Classification of a degraded or failed evaluation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureKind {
    /// Kernel source failed to parse.
    Parse,
    /// Lowering to the IR failed.
    Lower,
    /// Register allocation failed (spill-pool exhaustion etc.).
    Alloc,
    /// An independent validator rejected a stage's output.
    Verify,
    /// The static-analysis gate rejected a block.
    Analysis,
    /// A simulation run blew through its per-run cycle budget.
    BudgetExceeded,
    /// A watchdog cancelled the evaluation mid-flight.
    Cancelled,
    /// The wall-clock timeout for a cell expired.
    Timeout,
    /// The cell was never attempted (or abandoned) because sibling
    /// failures quarantined it.
    Quarantined,
    /// The evaluation worker panicked.
    Panic,
    /// An injected fault fired during the attempt, so its numbers may be
    /// perturbed; the harness discards the value rather than report it.
    Tainted,
}

impl FailureKind {
    /// Every kind, in a fixed order.
    pub const ALL: [FailureKind; 11] = [
        FailureKind::Parse,
        FailureKind::Lower,
        FailureKind::Alloc,
        FailureKind::Verify,
        FailureKind::Analysis,
        FailureKind::BudgetExceeded,
        FailureKind::Cancelled,
        FailureKind::Timeout,
        FailureKind::Quarantined,
        FailureKind::Panic,
        FailureKind::Tainted,
    ];

    /// The stable kebab-case id.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            FailureKind::Parse => "parse",
            FailureKind::Lower => "lower",
            FailureKind::Alloc => "alloc",
            FailureKind::Verify => "verify",
            FailureKind::Analysis => "analysis",
            FailureKind::BudgetExceeded => "budget-exceeded",
            FailureKind::Cancelled => "cancelled",
            FailureKind::Timeout => "timeout",
            FailureKind::Quarantined => "quarantined",
            FailureKind::Panic => "panic",
            FailureKind::Tainted => "tainted",
        }
    }

    /// Looks a kind up by its [`id`](FailureKind::id).
    #[must_use]
    pub fn from_id(id: &str) -> Option<FailureKind> {
        FailureKind::ALL.into_iter().find(|k| k.id() == id)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Renders one failure as a JSON object with a stable field order:
/// `{"kind": "...", "detail": "..."}`.
#[must_use]
pub fn failure_json(kind: FailureKind, detail: &str) -> String {
    format!(
        "{{\"kind\": \"{}\", \"detail\": \"{}\"}}",
        kind,
        json_escape(detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_are_kebab() {
        for kind in FailureKind::ALL {
            assert_eq!(FailureKind::from_id(kind.id()), Some(kind));
            assert!(
                kind.id()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind}"
            );
        }
        assert_eq!(FailureKind::from_id("flaky"), None);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        assert_eq!(
            failure_json(FailureKind::Timeout, "cell \"X\" took 5s"),
            "{\"kind\": \"timeout\", \"detail\": \"cell \\\"X\\\" took 5s\"}"
        );
    }
}
