//! Profile envelopes for the Perfect Club stand-ins.
//!
//! DESIGN.md and `workload::perfect` claim a qualitative profile for each
//! stand-in — MDG is "abundant LLP, the paper's best case", TRACK is
//! "small serial blocks", ARC2D is pressure-bound, BDNA is dominated by
//! indirect accesses. Those claims drive which paper table each
//! benchmark is allowed to reproduce, so drifting outside them (say, a
//! kernel edit that halves MDG's parallelism) would silently invalidate
//! the tables. The [`ProfileEnvelope`] bounds here are deliberately
//! loose — roughly ±30% around the measured values — so they trip on
//! *qualitative* drift, not on noise.

use crate::diag::{Finding, Lint};
use crate::profile::BenchmarkProfile;

/// Bounds one aggregate of a [`BenchmarkProfile`] must respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// Aggregate field name (as in the JSON report).
    pub field: &'static str,
    /// Inclusive lower bound, if any.
    pub min: Option<f64>,
    /// Inclusive upper bound, if any.
    pub max: Option<f64>,
}

/// The claimed profile envelope of one stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEnvelope {
    /// Benchmark name.
    pub name: &'static str,
    /// One-line restatement of the DESIGN.md claim being enforced.
    pub claim: &'static str,
    /// Aggregate bounds.
    pub bounds: &'static [Bound],
}

const fn bound(field: &'static str, min: Option<f64>, max: Option<f64>) -> Bound {
    Bound { field, min, max }
}

/// Envelopes for all eight stand-ins.
///
/// Calibrated against the committed `results/profiles.json` (regenerate
/// with `scripts/profiles.sh`); kept loose enough that only qualitative
/// drift trips them.
pub const ENVELOPES: [ProfileEnvelope; 8] = [
    ProfileEnvelope {
        name: "ADM",
        claim: "medium blocks, moderate LLP",
        bounds: &[
            bound("mean_block_size", Some(12.0), Some(30.0)),
            bound("mean_llp", Some(4.5), Some(10.0)),
        ],
    },
    ProfileEnvelope {
        name: "ARC2D",
        claim: "wide stencils: dense loads, pressure-sensitive",
        bounds: &[
            bound("mean_llp", Some(8.0), None),
            bound("mean_load_density", Some(0.25), None),
            bound("peak_float_pressure", Some(5.0), None),
        ],
    },
    ProfileEnvelope {
        name: "BDNA",
        claim: "indirect accesses limit disambiguation",
        bounds: &[bound("unknown_access_fraction", Some(0.10), None)],
    },
    ProfileEnvelope {
        name: "FLO52Q",
        claim: "stencil/butterfly mix, modest wins",
        bounds: &[bound("mean_block_size", Some(15.0), Some(40.0))],
    },
    ProfileEnvelope {
        name: "MDG",
        claim: "abundant LLP: the paper's best case",
        bounds: &[
            bound("mean_llp", Some(5.0), None),
            bound("mean_parallelism", Some(2.5), None),
        ],
    },
    ProfileEnvelope {
        name: "MG3D",
        claim: "large streaming blocks: dense, parallel loads",
        bounds: &[
            bound("max_block_size", Some(25.0), None),
            bound("mean_load_density", Some(0.3), None),
        ],
    },
    ProfileEnvelope {
        name: "QCD2",
        claim: "pressure-heavy compute blocks: the highest spill rate",
        bounds: &[
            bound("peak_float_pressure", Some(6.0), None),
            bound("mean_load_density", None, Some(0.25)),
        ],
    },
    ProfileEnvelope {
        name: "TRACK",
        claim: "small serial blocks: least LLP",
        bounds: &[
            bound("mean_block_size", None, Some(15.0)),
            bound("mean_llp", None, Some(4.5)),
        ],
    },
];

/// The envelope claimed for `name`, if it is a known stand-in.
#[must_use]
pub fn envelope_for(name: &str) -> Option<&'static ProfileEnvelope> {
    ENVELOPES.iter().find(|e| e.name == name)
}

fn aggregate(profile: &BenchmarkProfile, field: &str) -> Option<f64> {
    match field {
        "total_instructions" => Some(profile.total_instructions as f64),
        "total_loads" => Some(profile.total_loads as f64),
        "mean_block_size" => Some(profile.mean_block_size),
        "max_block_size" => Some(profile.max_block_size as f64),
        "mean_parallelism" => Some(profile.mean_parallelism),
        "mean_load_density" => Some(profile.mean_load_density),
        "mean_llp" => Some(profile.mean_llp),
        "peak_float_pressure" => Some(profile.peak_float_pressure as f64),
        "unknown_access_fraction" => Some(profile.unknown_access_fraction),
        _ => None,
    }
}

/// Checks `profile` against its stand-in's envelope. Unknown benchmarks
/// (not Perfect Club stand-ins) have no envelope and produce no findings.
#[must_use]
pub fn check_envelope(profile: &BenchmarkProfile) -> Vec<Finding> {
    let Some(envelope) = envelope_for(&profile.name) else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    for b in envelope.bounds {
        let Some(value) = aggregate(profile, b.field) else {
            findings.push(Finding::block_level(
                Lint::ProfileEnvelope,
                format!("envelope references unknown aggregate {:?}", b.field),
            ));
            continue;
        };
        if let Some(min) = b.min {
            if value < min {
                findings.push(Finding::block_level(
                    Lint::ProfileEnvelope,
                    format!(
                        "{} = {value:.4} fell below {min} — violates the claim \"{}\"",
                        b.field, envelope.claim
                    ),
                ));
            }
        }
        if let Some(max) = b.max {
            if value > max {
                findings.push(Finding::block_level(
                    Lint::ProfileEnvelope,
                    format!(
                        "{} = {value:.4} rose above {max} — violates the claim \"{}\"",
                        b.field, envelope.claim
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::AliasModel;
    use bsched_workload::perfect_club;

    #[test]
    fn every_stand_in_has_an_envelope() {
        for bench in perfect_club() {
            assert!(
                envelope_for(bench.name()).is_some(),
                "no envelope for {}",
                bench.name()
            );
        }
        assert!(envelope_for("NOT-A-BENCHMARK").is_none());
    }

    #[test]
    fn shipped_stand_ins_sit_inside_their_envelopes() {
        for bench in perfect_club() {
            let profile = BenchmarkProfile::of(&bench, AliasModel::Fortran);
            let findings = check_envelope(&profile);
            assert!(
                findings.is_empty(),
                "{} drifted outside its envelope: {findings:?}",
                bench.name()
            );
        }
    }

    #[test]
    fn drift_is_detected() {
        let bench = &perfect_club()[4]; // MDG
        let mut profile = BenchmarkProfile::of(bench, AliasModel::Fortran);
        profile.mean_llp = 0.5; // pretend the parallelism collapsed
        let findings = check_envelope(&profile);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, Lint::ProfileEnvelope);
        assert!(findings[0].message.contains("mean_llp"), "{findings:?}");
    }

    #[test]
    fn unknown_benchmark_is_unchecked() {
        let bench = &perfect_club()[0];
        let mut profile = BenchmarkProfile::of(bench, AliasModel::Fortran);
        profile.name = "CUSTOM".to_owned();
        assert!(check_envelope(&profile).is_empty());
    }

    #[test]
    fn all_envelope_fields_resolve() {
        let profile = BenchmarkProfile::of(&perfect_club()[0], AliasModel::Fortran);
        for envelope in &ENVELOPES {
            for b in envelope.bounds {
                assert!(
                    aggregate(&profile, b.field).is_some(),
                    "unknown field {:?} in {} envelope",
                    b.field,
                    envelope.name
                );
            }
        }
    }
}
