//! Profile analyses: the quantities that drive the paper's tables,
//! computed per block and aggregated per benchmark.
//!
//! The paper's results hinge on a handful of static block properties —
//! load-level parallelism (§1), load density, block size and register
//! pressure (§4.2 characterises each Perfect Club program by exactly
//! these). This module measures them so the stand-ins' claimed profiles
//! can be machine-checked (see [`crate::envelope`]) and exported as a
//! machine-readable report (`results/profiles.json`).

use std::collections::HashMap;

use bsched_dag::{build_dag, AliasModel, DagProfile};
use bsched_ir::{BasicBlock, Reg, RegClass};
use bsched_workload::Benchmark;

use crate::diag::json_escape;

/// Static profile of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockProfile {
    /// Block name.
    pub name: String,
    /// Profiled execution frequency.
    pub frequency: f64,
    /// Instruction count — also the resource lower bound on a
    /// single-issue machine: the schedule cannot be shorter than one slot
    /// per instruction.
    pub instructions: usize,
    /// Load count.
    pub loads: usize,
    /// Store count.
    pub stores: usize,
    /// Collapsed dependence-edge count under the profiled alias model.
    pub edges: usize,
    /// Longest dependence chain in nodes — the critical-path lower bound
    /// under unit latencies.
    pub critical_path: u32,
    /// `max(critical_path, instructions)`: no schedule on the paper's
    /// single-issue machine can beat this length.
    pub schedule_lower_bound: u32,
    /// `instructions / critical_path` — average width available.
    pub parallelism: f64,
    /// `loads / instructions`.
    pub load_density: f64,
    /// Maximum number of loads on any single dependence path.
    pub max_serial_loads: u32,
    /// Load-level parallelism: `loads / max_serial_loads` — how many
    /// loads the block offers per load that must serialise. 0 for
    /// load-free blocks.
    pub llp: f64,
    /// MaxLive estimate for the integer file.
    pub max_live_int: usize,
    /// MaxLive estimate for the floating-point file.
    pub max_live_float: usize,
    /// Memory accesses whose offset is unknown at compile time.
    pub unknown_accesses: usize,
    /// Total memory accesses.
    pub mem_accesses: usize,
}

impl BlockProfile {
    /// Profiles `block` under `alias`.
    #[must_use]
    pub fn of(block: &BasicBlock, alias: AliasModel) -> Self {
        let dag = build_dag(block, alias);
        let p = DagProfile::of(&dag);
        let stores = block.insts().iter().filter(|i| i.is_store()).count();
        let mem_accesses = block.insts().iter().filter(|i| i.mem().is_some()).count();
        let unknown_accesses = block
            .insts()
            .iter()
            .filter(|i| i.mem().is_some_and(|m| m.loc().offset().is_none()))
            .count();
        Self {
            name: block.name().to_owned(),
            frequency: block.frequency(),
            instructions: p.instructions,
            loads: p.loads,
            stores,
            edges: p.edges,
            critical_path: p.critical_path,
            schedule_lower_bound: p
                .critical_path
                .max(u32::try_from(p.instructions).unwrap_or(u32::MAX)),
            parallelism: p.parallelism,
            load_density: if p.instructions == 0 {
                0.0
            } else {
                p.loads as f64 / p.instructions as f64
            },
            max_serial_loads: p.max_serial_loads,
            llp: if p.max_serial_loads == 0 {
                0.0
            } else {
                p.loads as f64 / f64::from(p.max_serial_loads)
            },
            max_live_int: max_live(block, RegClass::Int),
            max_live_float: max_live(block, RegClass::Float),
            unknown_accesses,
            mem_accesses,
        }
    }
}

/// MaxLive estimate for one register class: the peak number of
/// simultaneously live registers, taking each register's live range as
/// first definition (or first use, for upward-exposed reads) to last use.
///
/// For SSA-form virtual blocks — everything the lowering produces — this
/// is exact; when physical registers are reused the first-def/last-use
/// range over-approximates, which is the safe direction for a pressure
/// *estimate*. Registers defined but never used occupy no range.
#[must_use]
pub fn max_live(block: &BasicBlock, class: RegClass) -> usize {
    pressure_profile(block, class)
        .into_iter()
        .max()
        .map_or(0, |p| p as usize)
}

/// Live-register count of `class` at each instruction of `block` — the
/// curve whose peak [`max_live`] reports. Useful for visualisation (the
/// `bsched dot --overlay` heat map) and for spotting *where* a block's
/// pressure concentrates.
#[must_use]
pub fn pressure_profile(block: &BasicBlock, class: RegClass) -> Vec<u32> {
    let n = block.len();
    let mut first_def: HashMap<Reg, usize> = HashMap::new();
    let mut last_use: HashMap<Reg, usize> = HashMap::new();
    for (idx, inst) in block.insts().iter().enumerate() {
        for &u in inst.uses() {
            if u.class() == class {
                last_use.insert(u, idx);
                // Upward-exposed use: live from block entry.
                first_def.entry(u).or_insert(0);
            }
        }
        for &d in inst.defs() {
            if d.class() == class {
                first_def.entry(d).or_insert(idx);
            }
        }
    }
    // Sweep: +1 where a range opens, -1 one past its last use. A register
    // is live on [first_def, last_use].
    let mut delta = vec![0_i64; n + 1];
    for (reg, &start) in &first_def {
        if let Some(&end) = last_use.get(reg) {
            if end >= start {
                delta[start] += 1;
                delta[end + 1] -= 1;
            }
        }
    }
    let mut live = 0_i64;
    let mut out = Vec::with_capacity(n);
    for &d in delta.iter().take(n) {
        live += d;
        out.push(u32::try_from(live).unwrap_or(0));
    }
    out
}

/// Aggregated profile of one benchmark stand-in.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (`ADM` … `TRACK`).
    pub name: String,
    /// Per-block profiles, in function order.
    pub blocks: Vec<BlockProfile>,
    /// Sum of block instruction counts.
    pub total_instructions: usize,
    /// Sum of block load counts.
    pub total_loads: usize,
    /// Unweighted mean block size.
    pub mean_block_size: f64,
    /// Largest block.
    pub max_block_size: usize,
    /// Unweighted mean of per-block parallelism.
    pub mean_parallelism: f64,
    /// `total_loads / total_instructions`.
    pub mean_load_density: f64,
    /// Unweighted mean of per-block LLP.
    pub mean_llp: f64,
    /// Max over blocks of the FP MaxLive estimate.
    pub peak_float_pressure: usize,
    /// Unknown-offset accesses as a fraction of all memory accesses.
    pub unknown_access_fraction: f64,
}

impl BenchmarkProfile {
    /// Profiles every block of `bench` under `alias` and aggregates.
    #[must_use]
    pub fn of(bench: &Benchmark, alias: AliasModel) -> Self {
        let blocks: Vec<BlockProfile> = bench
            .function()
            .blocks()
            .iter()
            .map(|b| BlockProfile::of(b, alias))
            .collect();
        let nblocks = blocks.len().max(1) as f64;
        let total_instructions: usize = blocks.iter().map(|b| b.instructions).sum();
        let total_loads: usize = blocks.iter().map(|b| b.loads).sum();
        let mem: usize = blocks.iter().map(|b| b.mem_accesses).sum();
        let unknown: usize = blocks.iter().map(|b| b.unknown_accesses).sum();
        Self {
            name: bench.name().to_owned(),
            total_instructions,
            total_loads,
            mean_block_size: total_instructions as f64 / nblocks,
            max_block_size: blocks.iter().map(|b| b.instructions).max().unwrap_or(0),
            mean_parallelism: blocks.iter().map(|b| b.parallelism).sum::<f64>() / nblocks,
            mean_load_density: if total_instructions == 0 {
                0.0
            } else {
                total_loads as f64 / total_instructions as f64
            },
            mean_llp: blocks.iter().map(|b| b.llp).sum::<f64>() / nblocks,
            peak_float_pressure: blocks.iter().map(|b| b.max_live_float).max().unwrap_or(0),
            unknown_access_fraction: if mem == 0 {
                0.0
            } else {
                unknown as f64 / mem as f64
            },
            blocks,
        }
    }
}

fn fnum(v: f64) -> String {
    format!("{v:.4}")
}

fn block_json(b: &BlockProfile, indent: &str) -> String {
    format!(
        "{indent}{{\"name\": \"{}\", \"frequency\": {}, \"instructions\": {}, \"loads\": {}, \
         \"stores\": {}, \"edges\": {}, \"critical_path\": {}, \"schedule_lower_bound\": {}, \
         \"parallelism\": {}, \"load_density\": {}, \"max_serial_loads\": {}, \"llp\": {}, \
         \"max_live_int\": {}, \"max_live_float\": {}, \"unknown_accesses\": {}, \
         \"mem_accesses\": {}}}",
        json_escape(&b.name),
        fnum(b.frequency),
        b.instructions,
        b.loads,
        b.stores,
        b.edges,
        b.critical_path,
        b.schedule_lower_bound,
        fnum(b.parallelism),
        fnum(b.load_density),
        b.max_serial_loads,
        fnum(b.llp),
        b.max_live_int,
        b.max_live_float,
        b.unknown_accesses,
        b.mem_accesses,
    )
}

/// Renders one benchmark profile as a JSON object.
#[must_use]
pub fn benchmark_json(p: &BenchmarkProfile) -> String {
    let blocks: Vec<String> = p.blocks.iter().map(|b| block_json(b, "      ")).collect();
    format!(
        "  {{\n    \"name\": \"{}\",\n    \"total_instructions\": {},\n    \"total_loads\": {},\n    \
         \"mean_block_size\": {},\n    \"max_block_size\": {},\n    \"mean_parallelism\": {},\n    \
         \"mean_load_density\": {},\n    \"mean_llp\": {},\n    \"peak_float_pressure\": {},\n    \
         \"unknown_access_fraction\": {},\n    \"blocks\": [\n{}\n    ]\n  }}",
        json_escape(&p.name),
        p.total_instructions,
        p.total_loads,
        fnum(p.mean_block_size),
        p.max_block_size,
        fnum(p.mean_parallelism),
        fnum(p.mean_load_density),
        fnum(p.mean_llp),
        p.peak_float_pressure,
        fnum(p.unknown_access_fraction),
        blocks.join(",\n"),
    )
}

/// Renders the whole suite report as a JSON array, with a trailing
/// newline (the exact bytes committed to `results/profiles.json`).
#[must_use]
pub fn suite_json(profiles: &[BenchmarkProfile]) -> String {
    let body: Vec<String> = profiles.iter().map(benchmark_json).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;
    use bsched_workload::perfect_club;

    #[test]
    fn block_profile_of_simple_chain() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let y = b.load("y", base, 8);
        let s = b.fadd("s", x, y);
        b.store(s, base, 16);
        let p = BlockProfile::of(&b.finish(), AliasModel::Fortran);
        assert_eq!(p.instructions, 5);
        assert_eq!(p.loads, 2);
        assert_eq!(p.stores, 1);
        assert_eq!(p.mem_accesses, 3);
        assert_eq!(p.unknown_accesses, 0);
        // base -> load -> add -> store is the longest chain.
        assert_eq!(p.critical_path, 4);
        assert_eq!(p.schedule_lower_bound, 5, "resource bound dominates");
        assert_eq!(p.max_serial_loads, 1);
        assert!((p.llp - 2.0).abs() < 1e-12, "two parallel loads");
        assert!((p.load_density - 0.4).abs() < 1e-12);
    }

    #[test]
    fn max_live_counts_overlapping_ranges() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0); // live 1..3
        let y = b.load("y", base, 8); // live 2..3
        let s = b.fadd("s", x, y); // live 3..4
        b.store(s, base, 16);
        let block = b.finish();
        // At the fadd, x and y are still live (read there) while s is
        // born — three FP registers coexist.
        assert_eq!(max_live(&block, RegClass::Float), 3);
        assert_eq!(max_live(&block, RegClass::Int), 1, "only the base");
    }

    #[test]
    fn never_used_def_occupies_no_range() {
        let mut b = BlockBuilder::new("t");
        let _dead = b.fconst("dead", 0.0);
        let block = b.finish();
        assert_eq!(max_live(&block, RegClass::Float), 0);
    }

    #[test]
    fn benchmark_profile_aggregates() {
        let bench = &perfect_club()[0];
        let p = BenchmarkProfile::of(bench, AliasModel::Fortran);
        assert_eq!(p.name, "ADM");
        assert_eq!(p.blocks.len(), bench.function().blocks().len());
        assert_eq!(
            p.total_instructions,
            p.blocks.iter().map(|b| b.instructions).sum::<usize>()
        );
        assert!(p.mean_parallelism > 1.0);
        assert!(p.max_block_size >= p.blocks[0].instructions);
    }

    #[test]
    fn suite_json_is_valid_shape() {
        let bench = &perfect_club()[0];
        let p = BenchmarkProfile::of(bench, AliasModel::Fortran);
        let json = suite_json(&[p]);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.ends_with("]\n"), "{json}");
        assert!(json.contains("\"name\": \"ADM\""));
        assert!(json.contains("\"mean_llp\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
