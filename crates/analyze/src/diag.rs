//! The diagnostics engine: lint identities, severities, configuration and
//! renderers.
//!
//! Every analysis pass reports [`Finding`]s — a lint id plus an optional
//! instruction and message. The [`crate::Analyzer`] turns findings into
//! [`Diagnostic`]s by attaching the block name, the kernel-source span
//! (when a [`SourceMap`](bsched_workload::SourceMap) is available) and the
//! effective severity from the active [`LintConfig`]; `Allow`ed lints are
//! dropped entirely.

use std::fmt;

use bsched_ir::InstId;
use bsched_workload::Span;

/// Identity of one analyzer lint.
///
/// The kebab-case [`id`](Lint::id) is the stable name used on the command
/// line (`--deny dead-store`) and in JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lint {
    /// A register is read before any instruction in the block defines it.
    UninitializedRead,
    /// A stored value is overwritten before any load can observe it.
    DeadStore,
    /// A non-store instruction computes a value no later instruction uses.
    DeadCode,
    /// A load repeats an earlier load of the same location with no
    /// possibly-conflicting store in between (under the active alias
    /// model).
    RedundantLoad,
    /// A block contains no instructions.
    EmptyBlock,
    /// A block's profiled frequency is negligible next to the hottest
    /// block of its function — effectively unreachable in the tables.
    ColdBlock,
    /// A balanced-weight invariant from the paper is violated
    /// (negative weight, load weight below 1, or a Fortran-alias edge
    /// missing from the C-conservative DAG).
    WeightInvariant,
    /// A Perfect-Club stand-in drifted outside the qualitative profile
    /// envelope DESIGN.md claims for it.
    ProfileEnvelope,
}

impl Lint {
    /// Every lint, in a fixed order.
    pub const ALL: [Lint; 8] = [
        Lint::UninitializedRead,
        Lint::DeadStore,
        Lint::DeadCode,
        Lint::RedundantLoad,
        Lint::EmptyBlock,
        Lint::ColdBlock,
        Lint::WeightInvariant,
        Lint::ProfileEnvelope,
    ];

    /// The stable kebab-case lint name.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Lint::UninitializedRead => "uninitialized-read",
            Lint::DeadStore => "dead-store",
            Lint::DeadCode => "dead-code",
            Lint::RedundantLoad => "redundant-load",
            Lint::EmptyBlock => "empty-block",
            Lint::ColdBlock => "cold-block",
            Lint::WeightInvariant => "weight-invariant",
            Lint::ProfileEnvelope => "profile-envelope",
        }
    }

    /// Looks a lint up by its [`id`](Lint::id).
    #[must_use]
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }

    /// The severity a lint carries when the configuration says nothing.
    ///
    /// Lints that indicate outright wrong or meaningless code default to
    /// [`Severity::Error`]; code-quality findings (dead code, redundant
    /// loads, cold blocks) default to [`Severity::Warn`] because the
    /// kernel lowering legitimately produces some of them (e.g. unused
    /// accumulator seeds).
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Lint::UninitializedRead
            | Lint::DeadStore
            | Lint::EmptyBlock
            | Lint::WeightInvariant
            | Lint::ProfileEnvelope => Severity::Error,
            Lint::DeadCode | Lint::RedundantLoad | Lint::ColdBlock => Severity::Warn,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How seriously a diagnostic is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Suppressed: the finding is dropped before rendering.
    Allow,
    /// Reported, but does not fail the run.
    Warn,
    /// Reported and fails `bsched analyze` (non-zero exit) and the
    /// pipeline's deny-gated pre-scheduling hook.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Allow => "allow",
            Severity::Warn => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Per-lint severity overrides, rustc-style.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: Vec<(Lint, Severity)>,
    deny_warnings: bool,
}

impl LintConfig {
    /// The default configuration: every lint at its
    /// [`default_severity`](Lint::default_severity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the severity of one lint, replacing any earlier override.
    pub fn set(&mut self, lint: Lint, severity: Severity) {
        self.overrides.retain(|(l, _)| *l != lint);
        self.overrides.push((lint, severity));
    }

    /// Builder-style [`set`](LintConfig::set) to [`Severity::Allow`].
    #[must_use]
    pub fn allow(mut self, lint: Lint) -> Self {
        self.set(lint, Severity::Allow);
        self
    }

    /// Builder-style [`set`](LintConfig::set) to [`Severity::Warn`].
    #[must_use]
    pub fn warn(mut self, lint: Lint) -> Self {
        self.set(lint, Severity::Warn);
        self
    }

    /// Builder-style [`set`](LintConfig::set) to [`Severity::Error`].
    #[must_use]
    pub fn deny(mut self, lint: Lint) -> Self {
        self.set(lint, Severity::Error);
        self
    }

    /// Escalates every lint that would report at [`Severity::Warn`] to
    /// [`Severity::Error`] (the CLI's `--deny warnings`). Explicit
    /// `Allow` overrides still suppress their lint.
    #[must_use]
    pub fn deny_warnings(mut self) -> Self {
        self.deny_warnings = true;
        self
    }

    /// The effective severity of `lint` under this configuration.
    #[must_use]
    pub fn severity_of(&self, lint: Lint) -> Severity {
        let base = self
            .overrides
            .iter()
            .find(|(l, _)| *l == lint)
            .map_or_else(|| lint.default_severity(), |(_, s)| *s);
        if self.deny_warnings && base == Severity::Warn {
            Severity::Error
        } else {
            base
        }
    }
}

/// A raw pass result: what was found, where, and why — before the block
/// name, source span and configured severity are attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// The offending instruction, when the finding is instruction-level.
    pub inst: Option<InstId>,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Creates an instruction-level finding.
    #[must_use]
    pub fn at(lint: Lint, inst: InstId, message: impl Into<String>) -> Self {
        Self {
            lint,
            inst: Some(inst),
            message: message.into(),
        }
    }

    /// Creates a block- or benchmark-level finding.
    #[must_use]
    pub fn block_level(lint: Lint, message: impl Into<String>) -> Self {
        Self {
            lint,
            inst: None,
            message: message.into(),
        }
    }
}

/// A fully-resolved diagnostic, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Effective severity (never [`Severity::Allow`]).
    pub severity: Severity,
    /// Name of the block (or benchmark) the finding is about.
    pub block: String,
    /// The offending instruction, when instruction-level.
    pub inst: Option<InstId>,
    /// Kernel-source position of the offending statement, when known.
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.lint, self.block)?;
        if let Some(inst) = self.inst {
            write!(f, ":{inst}")?;
        }
        if let Some(span) = self.span {
            write!(f, " @ {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// `true` if any diagnostic reached [`Severity::Error`].
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics as text, one per line, with a trailing summary.
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    out.push_str(&format!(
        "{errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

pub(crate) use crate::json::escape as json_escape;

/// Renders diagnostics as a JSON array (stable field order, no trailing
/// newline inside the array).
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let inst = d
            .inst
            .map_or_else(|| "null".to_owned(), |id| id.index().to_string());
        let span = d.span.map_or_else(
            || "null".to_owned(),
            |s| format!("{{\"line\": {}, \"column\": {}}}", s.line, s.column),
        );
        out.push_str(&format!(
            "  {{\"lint\": \"{}\", \"severity\": \"{}\", \"block\": \"{}\", \"inst\": {}, \"span\": {}, \"message\": \"{}\"}}{}\n",
            d.lint,
            d.severity,
            json_escape(&d.block),
            inst,
            span,
            json_escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," },
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_roundtrip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_id(lint.id()), Some(lint), "{lint}");
        }
        assert_eq!(Lint::from_id("no-such-lint"), None);
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Allow < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warn.to_string(), "warning");
    }

    #[test]
    fn config_overrides_and_deny_warnings() {
        let cfg = LintConfig::new();
        assert_eq!(cfg.severity_of(Lint::DeadStore), Severity::Error);
        assert_eq!(cfg.severity_of(Lint::DeadCode), Severity::Warn);

        let cfg = LintConfig::new()
            .allow(Lint::DeadStore)
            .deny(Lint::DeadCode);
        assert_eq!(cfg.severity_of(Lint::DeadStore), Severity::Allow);
        assert_eq!(cfg.severity_of(Lint::DeadCode), Severity::Error);

        let cfg = LintConfig::new().deny_warnings().allow(Lint::RedundantLoad);
        assert_eq!(cfg.severity_of(Lint::DeadCode), Severity::Error);
        assert_eq!(
            cfg.severity_of(Lint::RedundantLoad),
            Severity::Allow,
            "explicit allow survives --deny warnings"
        );
    }

    #[test]
    fn set_replaces_earlier_override() {
        let mut cfg = LintConfig::new();
        cfg.set(Lint::DeadCode, Severity::Error);
        cfg.set(Lint::DeadCode, Severity::Allow);
        assert_eq!(cfg.severity_of(Lint::DeadCode), Severity::Allow);
    }

    #[test]
    fn diagnostic_renders_span_and_inst() {
        let d = Diagnostic {
            lint: Lint::DeadStore,
            severity: Severity::Error,
            block: "K.b0".to_owned(),
            inst: Some(InstId::new(4)),
            span: Some(Span::new(3, 5)),
            message: "overwritten".to_owned(),
        };
        assert_eq!(
            d.to_string(),
            "error[dead-store] K.b0:i4 @ 3:5: overwritten"
        );
        assert!(has_errors(std::slice::from_ref(&d)));

        let text = render_text(std::slice::from_ref(&d));
        assert!(text.contains("1 error, 0 warnings"), "{text}");

        let json = render_json(&[d]);
        assert!(json.contains("\"lint\": \"dead-store\""), "{json}");
        assert!(json.contains("\"line\": 3"), "{json}");
    }

    #[test]
    fn render_json_handles_missing_span() {
        let d = Diagnostic {
            lint: Lint::EmptyBlock,
            severity: Severity::Error,
            block: "f".to_owned(),
            inst: None,
            span: None,
            message: "say \"hi\"".to_owned(),
        };
        let json = render_json(&[d]);
        assert!(json.contains("\"inst\": null"), "{json}");
        assert!(json.contains("\"span\": null"), "{json}");
        assert!(json.contains("say \\\"hi\\\""), "{json}");
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\tb"), "a\\tb");
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("a\u{01}b"), "a\\u0001b");
    }
}
