//! The analyzer front-end: runs the passes, resolves findings into
//! diagnostics, and bundles benchmark reports.

use bsched_dag::AliasModel;
use bsched_ir::{BasicBlock, Function};
use bsched_workload::{Benchmark, SourceMap};

use crate::diag::{Diagnostic, Finding, LintConfig, Severity};
use crate::envelope::check_envelope;
use crate::lints::{block_lints, function_lints};
use crate::profile::BenchmarkProfile;

/// A configured analyzer: alias model plus lint severities.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Alias model the memory lints reason under (matches the model the
    /// scheduler will build its DAG with).
    pub alias: AliasModel,
    /// Per-lint severity configuration.
    pub config: LintConfig,
}

impl Analyzer {
    /// An analyzer for `alias` with default lint severities.
    #[must_use]
    pub fn new(alias: AliasModel) -> Self {
        Self {
            alias,
            config: LintConfig::new(),
        }
    }

    /// Replaces the lint configuration (builder-style).
    #[must_use]
    pub fn with_config(mut self, config: LintConfig) -> Self {
        self.config = config;
        self
    }

    fn resolve(
        &self,
        block_name: &str,
        map: Option<&SourceMap>,
        findings: Vec<Finding>,
    ) -> Vec<Diagnostic> {
        let mut diags: Vec<Diagnostic> = findings
            .into_iter()
            .filter_map(|f| {
                let severity = self.config.severity_of(f.lint);
                if severity == Severity::Allow {
                    return None;
                }
                let span = f.inst.and_then(|id| map.and_then(|m| m.get(id)));
                Some(Diagnostic {
                    lint: f.lint,
                    severity,
                    block: block_name.to_owned(),
                    inst: f.inst,
                    span,
                    message: f.message,
                })
            })
            .collect();
        diags.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.inst, d.lint));
        diags
    }

    /// Runs every block-local correctness lint on `block`, attaching
    /// kernel-source spans from `map` when provided.
    #[must_use]
    pub fn analyze_block(&self, block: &BasicBlock, map: Option<&SourceMap>) -> Vec<Diagnostic> {
        self.resolve(block.name(), map, block_lints(block, self.alias))
    }

    /// Runs block lints on every block of `func` plus the function-level
    /// lints (empty and cold blocks).
    #[must_use]
    pub fn analyze_function(&self, func: &Function) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for block in func.blocks() {
            diags.extend(self.analyze_block(block, None));
        }
        for (block_name, finding) in function_lints(func) {
            diags.extend(self.resolve(&block_name, None, vec![finding]));
        }
        diags
    }

    /// Analyzes one benchmark stand-in: correctness lints on every block,
    /// the profile report, and the profile-envelope check.
    #[must_use]
    pub fn analyze_benchmark(&self, bench: &Benchmark) -> BenchmarkReport {
        let profile = BenchmarkProfile::of(bench, self.alias);
        let mut diagnostics = self.analyze_function(bench.function());
        diagnostics.extend(self.resolve(bench.name(), None, check_envelope(&profile)));
        BenchmarkReport {
            profile,
            diagnostics,
        }
    }
}

/// Everything the analyzer knows about one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    /// The static profile (what `results/profiles.json` records).
    pub profile: BenchmarkProfile,
    /// Correctness and envelope diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Lint};
    use bsched_ir::BlockBuilder;
    use bsched_workload::perfect_club;

    fn double_store_block() -> BasicBlock {
        let mut b = BlockBuilder::new("bad");
        let base = b.def_int("base");
        let x = b.load("x", base, 8);
        b.store(x, base, 0);
        b.store(x, base, 0);
        b.finish()
    }

    #[test]
    fn analyze_block_attaches_severity_and_sorts_errors_first() {
        let analyzer = Analyzer::new(AliasModel::Fortran);
        let diags = analyzer.analyze_block(&double_store_block(), None);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].lint, Lint::DeadStore);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn allowed_lints_are_dropped() {
        let analyzer = Analyzer::new(AliasModel::Fortran)
            .with_config(LintConfig::new().allow(Lint::DeadStore));
        let diags = analyzer.analyze_block(&double_store_block(), None);
        assert!(diags.iter().all(|d| d.lint != Lint::DeadStore), "{diags:?}");
    }

    #[test]
    fn every_stand_in_is_error_free() {
        let analyzer = Analyzer::default();
        for bench in perfect_club() {
            let report = analyzer.analyze_benchmark(&bench);
            let errors: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", bench.name());
        }
    }
}
