//! A minimal, dependency-free JSON reader and string escaper.
//!
//! The repo policy is no external dependencies, and every machine-
//! readable surface (diagnostics, the evaluation journal, the serving
//! protocol) speaks a small JSON subset — objects, arrays, strings,
//! numbers, booleans — so one shared recursive-descent reader is enough.
//! Unparseable input yields `None`, never a panic: a torn journal line
//! or a malformed network request is rejected, not crashed on.
//!
//! Writers stay with their owners (each renders its own stable field
//! order); this module only centralises escaping and parsing.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source field order (duplicates kept; first wins on
    /// lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (RFC 8259),
/// without the surrounding quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a complete JSON string literal, quotes included.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
#[must_use]
pub fn parse(src: &str) -> Option<Json> {
    let bytes = src.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Option<Json> {
    skip_ws(bytes, at);
    match bytes.get(*at)? {
        b'"' => parse_string(bytes, at).map(Json::Str),
        b'{' => parse_object(bytes, at),
        b'[' => parse_array(bytes, at),
        b't' => parse_literal(bytes, at, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, at, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, at, "null", Json::Null),
        _ => parse_number(bytes, at),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &str, value: Json) -> Option<Json> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Option<Json> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Option<String> {
    if bytes.get(*at) != Some(&b'"') {
        return None;
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at)? {
            b'"' => {
                *at += 1;
                return Some(out);
            }
            b'\\' => {
                *at += 1;
                match bytes.get(*at)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let digits = bytes.get(*at + 1..*at + 5)?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(digits).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *at += 4;
                    }
                    _ => return None,
                }
                *at += 1;
            }
            _ => {
                // Advance over one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*at..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Option<Json> {
    *at += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b']' => {
                *at += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Option<Json> {
    *at += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        if bytes.get(*at) != Some(&b':') {
            return None;
        }
        *at += 1;
        let value = parse_value(bytes, at)?;
        fields.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b'}' => {
                *at += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a": [1, -2.5, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_torn_and_trailing_input() {
        assert_eq!(parse(""), None);
        assert_eq!(parse("{\"a\":"), None);
        assert_eq!(parse("{} trailing"), None);
        assert_eq!(parse("not json"), None);
        assert_eq!(parse("{\"a\" 1}"), None);
    }

    #[test]
    fn unicode_escapes_and_scalars_roundtrip() {
        let v = parse("\"caf\\u00e9 → ok\"").unwrap();
        assert_eq!(v.as_str(), Some("café → ok"));
        assert_eq!(
            parse(&string("tab\there \"q\" \\")),
            Some(Json::Str("tab\there \"q\" \\".to_owned()))
        );
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn integer_extraction_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"42\"").unwrap().as_u64(), None);
    }
}
