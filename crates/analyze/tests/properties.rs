//! Property tests: the analyzer must never panic on any generated
//! block, and must never report a *correctness* error on a block that
//! the independent `bsched-verify` validator accepts.

use bsched_analyze::{max_live, pressure_profile, Analyzer, BlockProfile, Lint};
use bsched_dag::AliasModel;
use bsched_ir::{InstId, RegClass};
use bsched_stats::Pcg32;
use bsched_verify::verify_schedule;
use bsched_workload::{random_block, GeneratorConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (5usize..60, 0.05f64..0.6, 0.0f64..0.5, 0.0f64..0.3).prop_map(
        |(size, load_fraction, chain_fraction, store_fraction)| GeneratorConfig {
            size,
            load_fraction,
            chain_fraction,
            store_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analyzer completes on every generated block under both alias
    /// models — no pass panics, whatever the block shape.
    #[test]
    fn analyzer_never_panics(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        for alias in [AliasModel::Fortran, AliasModel::CConservative] {
            let diags = Analyzer::new(alias).analyze_block(&block, None);
            // Diagnostics must point inside the block.
            for d in &diags {
                if let Some(id) = d.inst {
                    prop_assert!(id.index() < block.len(), "{d}");
                }
            }
            let _ = BlockProfile::of(&block, alias);
        }
    }

    /// No false positives: a block that the independent validator
    /// accepts (program order is a legal schedule of a well-formed
    /// block) must carry none of the lints that claim the block itself
    /// is malformed. Dead stores and redundant loads are excluded —
    /// random blocks legitimately contain those.
    #[test]
    fn verified_blocks_have_no_malformation_lints(cfg in arb_config(), seed in 500u64..1000) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let order: Vec<InstId> = (0..block.len()).map(InstId::from_usize).collect();
        prop_assert!(verify_schedule(&block, &order, AliasModel::Fortran).is_ok());
        let diags = Analyzer::new(AliasModel::Fortran).analyze_block(&block, None);
        for d in &diags {
            prop_assert!(
                !matches!(
                    d.lint,
                    Lint::UninitializedRead | Lint::WeightInvariant | Lint::EmptyBlock
                ),
                "false positive on a verified block: {d}"
            );
        }
    }

    /// The pressure curve is consistent with its own peak, and the peak
    /// is bounded by the number of instructions plus live-ins.
    #[test]
    fn pressure_profile_matches_max_live(cfg in arb_config(), seed in 0u64..300) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        for class in [RegClass::Int, RegClass::Float] {
            let curve = pressure_profile(&block, class);
            prop_assert_eq!(curve.len(), block.len());
            let peak = curve.iter().copied().max().unwrap_or(0) as usize;
            prop_assert_eq!(peak, max_live(&block, class));
        }
    }
}
