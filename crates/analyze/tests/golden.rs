//! Golden diagnostics: deliberately broken kernels must produce exactly
//! the intended lint, at the intended severity, pointing at the intended
//! kernel-source line — and nothing else at error level.

use bsched_analyze::{has_errors, Analyzer, Lint, Severity};
use bsched_dag::AliasModel;
use bsched_ir::{BlockBuilder, Inst, InstId, Opcode, RegClass, VirtReg};
use bsched_workload::{parse_program, try_lower_parsed, Span};

fn analyze_source(src: &str, alias: AliasModel) -> Vec<bsched_analyze::Diagnostic> {
    let kernels = parse_program(src).expect("golden kernel parses");
    let analyzer = Analyzer::new(alias);
    let mut diags = Vec::new();
    for parsed in &kernels {
        let (block, map) = try_lower_parsed(parsed).expect("golden kernel lowers");
        diags.extend(analyzer.analyze_block(&block, Some(&map)));
    }
    diags
}

#[test]
fn dead_store_kernel_reports_the_overwritten_store_with_its_span() {
    // Mirrors kernels/bad/dead_store.bsk (which CI injects); kept inline
    // so the expected span survives edits to the fixture file.
    let src = "\
kernel bad_dead_store {
    arrays x, a;
    unroll 1;
    frequency 100;
    x[0] = a[0] + 1.0;
    x[0] = a[1] + 2.0;
}
";
    let diags = analyze_source(src, AliasModel::Fortran);
    let dead: Vec<_> = diags.iter().filter(|d| d.lint == Lint::DeadStore).collect();
    assert_eq!(dead.len(), 1, "{diags:?}");
    assert_eq!(dead[0].severity, Severity::Error);
    // The dead store is the first statement: line 5, indented 4 columns.
    assert_eq!(dead[0].span, Some(Span::new(5, 5)), "{diags:?}");
    assert!(dead[0].message.contains("overwritten"), "{diags:?}");
    // Nothing else reaches error level in this kernel.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn committed_bad_kernel_fixture_matches_the_inline_golden() {
    // CI's analyze job injects this file and expects a non-zero exit;
    // make sure the fixture actually trips an error-level dead-store.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../kernels/bad/dead_store.bsk"
    ))
    .expect("kernels/bad/dead_store.bsk exists");
    let diags = analyze_source(&src, AliasModel::Fortran);
    assert!(has_errors(&diags), "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.lint == Lint::DeadStore && d.severity == Severity::Error),
        "{diags:?}"
    );
}

#[test]
fn redundant_load_kernel_reports_the_repeat_with_its_span() {
    let src = "\
kernel rload {
    arrays x, y, z;
    unroll 1;
    frequency 100;
    y[0] = x[0] + 1.0;
    z[0] = x[0] + 2.0;
}
";
    let diags = analyze_source(src, AliasModel::Fortran);
    let redundant: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == Lint::RedundantLoad)
        .collect();
    assert_eq!(redundant.len(), 1, "{diags:?}");
    assert_eq!(redundant[0].severity, Severity::Warn);
    // The repeated x[0] load belongs to the second statement (line 6).
    assert_eq!(redundant[0].span, Some(Span::new(6, 5)), "{diags:?}");
    assert!(!has_errors(&diags), "{diags:?}");
}

#[test]
fn alias_model_changes_the_verdict() {
    // Under Fortran rules x and y cannot alias, so the second x[0] load
    // is redundant. Under C-conservative rules the intervening y[0]
    // store may alias x, so the load must be kept (Fig. 8 of the paper).
    let src = "\
kernel aliasprobe {
    arrays x, y;
    unroll 1;
    frequency 100;
    y[0] = x[0] + 1.0;
    y[1] = x[0] + 2.0;
}
";
    let fortran = analyze_source(src, AliasModel::Fortran);
    assert!(
        fortran.iter().any(|d| d.lint == Lint::RedundantLoad),
        "{fortran:?}"
    );
    let c = analyze_source(src, AliasModel::CConservative);
    assert!(c.iter().all(|d| d.lint != Lint::RedundantLoad), "{c:?}");
}

#[test]
fn uninitialized_read_is_an_error_without_a_span() {
    // Not expressible in kernel source (the parser rejects undeclared
    // names), so build the broken block directly in the IR.
    let mut b = BlockBuilder::new("ghost");
    let _base = b.def_int("base");
    let ghost = VirtReg::new(RegClass::Float, 999).into();
    b.push(Inst::new(
        Opcode::FAdd,
        vec![VirtReg::new(RegClass::Float, 0).into()],
        vec![ghost, ghost],
        None,
    ));
    let block = b.finish();
    let diags = Analyzer::new(AliasModel::Fortran).analyze_block(&block, None);
    let uninit: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == Lint::UninitializedRead)
        .collect();
    assert_eq!(uninit.len(), 1, "{diags:?}");
    assert_eq!(uninit[0].severity, Severity::Error);
    assert_eq!(uninit[0].inst, Some(InstId::new(1)));
    assert_eq!(uninit[0].span, None);
}

#[test]
fn shipped_kernel_files_are_error_free() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../kernels");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("kernels/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "bsk") {
            continue; // skips kernels/bad/, which is a directory
        }
        let src = std::fs::read_to_string(&path).expect("kernel reads");
        let diags = analyze_source(&src, AliasModel::Fortran);
        assert!(!has_errors(&diags), "{}: {diags:?}", path.display());
        checked += 1;
    }
    assert!(checked >= 4, "expected the shipped kernels, saw {checked}");
}
