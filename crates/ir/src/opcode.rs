//! Opcodes of the MIPS-like target.
//!
//! The set is intentionally small — the schedulers only care about three
//! properties of an instruction: whether it is a **load** (uncertain
//! latency), whether it is a **store** (memory ordering), and its nominal
//! **latency** / issue-slot requirement. Everything else (actual ALU
//! semantics) is irrelevant to scheduling and simulation of cycle counts,
//! so opcodes here carry no value semantics.

use std::fmt;

use crate::reg::RegClass;

/// Instruction opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Load an integer word from memory.
    Lw,
    /// Load a floating-point double from memory.
    Ldc1,
    /// Store an integer word to memory.
    Sw,
    /// Store a floating-point double to memory.
    Sdc1,
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Shift left logical (used for index scaling).
    Sll,
    /// Load immediate into an integer register.
    Li,
    /// Integer register move.
    Move,
    /// Floating-point add.
    FAdd,
    /// Floating-point subtract.
    FSub,
    /// Floating-point multiply.
    FMul,
    /// Floating-point divide.
    FDiv,
    /// Floating-point negate.
    FNeg,
    /// Floating-point register move.
    FMove,
    /// Floating-point absolute value.
    FAbs,
    /// Reload of a spilled value (inserted by the register allocator).
    ///
    /// Semantically a load; kept distinct so spill statistics (paper
    /// Table 4) can be computed by opcode inspection.
    SpillLoad,
    /// Spill of a live value to the stack (inserted by the allocator).
    SpillStore,
    /// A virtual no-op inserted by the list scheduler when the ready list
    /// starves (§4.1). Removed before code generation; the simulator never
    /// sees one.
    VNop,
}

impl Opcode {
    /// All opcodes, for exhaustive iteration in tests.
    pub const ALL: [Opcode; 19] = [
        Opcode::Lw,
        Opcode::Ldc1,
        Opcode::Sw,
        Opcode::Sdc1,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Sll,
        Opcode::Li,
        Opcode::Move,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FNeg,
        Opcode::FMove,
        Opcode::FAbs,
        Opcode::SpillLoad,
        Opcode::SpillStore,
    ];

    /// `true` for instructions that read memory (including spill reloads).
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Lw | Opcode::Ldc1 | Opcode::SpillLoad)
    }

    /// `true` for instructions that write memory (including spill stores).
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Sw | Opcode::Sdc1 | Opcode::SpillStore)
    }

    /// `true` for instructions inserted by the register allocator —
    /// the paper's definition of spill code (§5: "a spill instruction is
    /// any instruction that is inserted by the register allocator").
    #[must_use]
    pub fn is_spill(self) -> bool {
        matches!(self, Opcode::SpillLoad | Opcode::SpillStore)
    }

    /// `true` for the scheduler-internal virtual no-op.
    #[must_use]
    pub fn is_vnop(self) -> bool {
        matches!(self, Opcode::VNop)
    }

    /// Register class of the value this opcode produces or transports.
    ///
    /// Loads/stores of FP data and FP arithmetic are [`RegClass::Float`];
    /// everything else is [`RegClass::Int`]. Spill opcodes are class-neutral
    /// and report `Int` here; their instruction operands carry the real
    /// class.
    #[must_use]
    pub fn value_class(self) -> RegClass {
        match self {
            Opcode::Ldc1
            | Opcode::Sdc1
            | Opcode::FAdd
            | Opcode::FSub
            | Opcode::FMul
            | Opcode::FDiv
            | Opcode::FNeg
            | Opcode::FMove
            | Opcode::FAbs => RegClass::Float,
            _ => RegClass::Int,
        }
    }

    /// Nominal (certain) latency in cycles of a non-load instruction.
    ///
    /// §4.3: "All of our instructions execute in a single cycle", so the
    /// default machine description returns 1 for everything. Loads return 1
    /// too — a load's *actual* latency is sampled by the memory model at
    /// simulation time, and its *scheduling weight* is exactly what the
    /// balanced/traditional weight assigners compute.
    #[must_use]
    pub fn nominal_latency(self) -> u32 {
        1
    }

    /// Issue slots this instruction occupies (`IssueSlots(i)` in Fig. 6).
    ///
    /// 1 for every opcode on the paper's single-issue machine.
    #[must_use]
    pub fn issue_slots(self) -> u32 {
        1
    }

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Lw => "lw",
            Opcode::Ldc1 => "ldc1",
            Opcode::Sw => "sw",
            Opcode::Sdc1 => "sdc1",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Sll => "sll",
            Opcode::Li => "li",
            Opcode::Move => "move",
            Opcode::FAdd => "add.d",
            Opcode::FSub => "sub.d",
            Opcode::FMul => "mul.d",
            Opcode::FDiv => "div.d",
            Opcode::FNeg => "neg.d",
            Opcode::FMove => "mov.d",
            Opcode::FAbs => "abs.d",
            Opcode::SpillLoad => "reload",
            Opcode::SpillStore => "spill",
            Opcode::VNop => "vnop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Fixed (certain) result latencies per opcode.
///
/// The paper's machines execute every non-load in one cycle (§4.3), which
/// is [`OpLatencies::unit`] — the default everywhere. The §6 extension
/// ("other multi-cycle instructions, e.g. floating point operations
/// coupled with asynchronous floating point units") is exercised with
/// [`OpLatencies::mips_fpu`]-style tables: schedulers then pad dependent
/// FP chains and the simulator delays FP results accordingly. Loads are
/// *not* covered by this table — their latency is the uncertain quantity
/// sampled by the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpLatencies {
    fadd: u32,
    fmul: u32,
    fdiv: u32,
}

impl OpLatencies {
    /// Every instruction takes one cycle (the paper's model).
    #[must_use]
    pub fn unit() -> Self {
        Self {
            fadd: 1,
            fmul: 1,
            fdiv: 1,
        }
    }

    /// An R3000-flavoured FP unit: add/sub 2 cycles, multiply 4,
    /// divide 12.
    #[must_use]
    pub fn mips_fpu() -> Self {
        Self {
            fadd: 2,
            fmul: 4,
            fdiv: 12,
        }
    }

    /// A custom table.
    ///
    /// # Panics
    ///
    /// Panics if any latency is zero.
    #[must_use]
    pub fn new(fadd: u32, fmul: u32, fdiv: u32) -> Self {
        assert!(
            fadd >= 1 && fmul >= 1 && fdiv >= 1,
            "latencies must be at least 1"
        );
        Self { fadd, fmul, fdiv }
    }

    /// The fixed result latency of `op` (1 for loads — see type docs —
    /// and all integer operations).
    #[must_use]
    pub fn latency(&self, op: Opcode) -> u32 {
        match op {
            Opcode::FAdd | Opcode::FSub | Opcode::FNeg => self.fadd,
            Opcode::FMul => self.fmul,
            Opcode::FDiv => self.fdiv,
            _ => 1,
        }
    }
}

impl Default for OpLatencies {
    fn default() -> Self {
        Self::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_classification() {
        assert!(Opcode::Lw.is_load());
        assert!(Opcode::Ldc1.is_load());
        assert!(Opcode::SpillLoad.is_load());
        assert!(!Opcode::Sw.is_load());
        assert!(Opcode::Sw.is_store());
        assert!(Opcode::Sdc1.is_store());
        assert!(Opcode::SpillStore.is_store());
        assert!(!Opcode::FAdd.is_load());
        assert!(!Opcode::FAdd.is_store());
    }

    #[test]
    fn no_opcode_is_both_load_and_store() {
        for op in Opcode::ALL {
            assert!(!(op.is_load() && op.is_store()), "{op} is both");
        }
    }

    #[test]
    fn spill_classification() {
        assert!(Opcode::SpillLoad.is_spill());
        assert!(Opcode::SpillStore.is_spill());
        assert!(!Opcode::Lw.is_spill());
        assert!(!Opcode::Sw.is_spill());
    }

    #[test]
    fn single_cycle_single_issue() {
        for op in Opcode::ALL {
            assert_eq!(op.nominal_latency(), 1, "{op}");
            assert_eq!(op.issue_slots(), 1, "{op}");
        }
    }

    #[test]
    fn value_classes() {
        assert_eq!(Opcode::Ldc1.value_class(), RegClass::Float);
        assert_eq!(Opcode::FMul.value_class(), RegClass::Float);
        assert_eq!(Opcode::Lw.value_class(), RegClass::Int);
        assert_eq!(Opcode::Add.value_class(), RegClass::Int);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn op_latencies_tables() {
        let unit = OpLatencies::unit();
        for op in Opcode::ALL {
            assert_eq!(unit.latency(op), 1, "{op}");
        }
        let fpu = OpLatencies::mips_fpu();
        assert_eq!(fpu.latency(Opcode::FAdd), 2);
        assert_eq!(fpu.latency(Opcode::FSub), 2);
        assert_eq!(fpu.latency(Opcode::FMul), 4);
        assert_eq!(fpu.latency(Opcode::FDiv), 12);
        assert_eq!(fpu.latency(Opcode::Add), 1);
        assert_eq!(fpu.latency(Opcode::Ldc1), 1, "loads stay uncertain");
        assert_eq!(OpLatencies::default(), unit);
    }

    #[test]
    #[should_panic(expected = "latencies must be at least 1")]
    fn zero_op_latency_panics() {
        let _ = OpLatencies::new(0, 1, 1);
    }

    #[test]
    fn vnop_is_special() {
        assert!(Opcode::VNop.is_vnop());
        assert!(!Opcode::VNop.is_load());
        assert!(!Opcode::VNop.is_store());
        assert!(
            Opcode::ALL.iter().all(|o| !o.is_vnop()),
            "ALL excludes VNop"
        );
    }
}
