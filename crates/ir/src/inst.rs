//! Instructions.

use std::fmt;

use crate::mem::MemAccess;
use crate::opcode::Opcode;
use crate::reg::Reg;

/// Position of an instruction within its basic block.
///
/// Instruction ids are dense indices (`0..block.len()`); the code DAG and
/// the schedulers use them as node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(u32);

impl InstId {
    /// Creates an id from a raw index.
    #[must_use]
    pub fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Creates an id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not fit in `u32`.
    #[must_use]
    pub fn from_usize(idx: usize) -> Self {
        Self(u32::try_from(idx).expect("instruction index exceeds u32"))
    }

    /// The raw index.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The index as `usize`, for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One RISC instruction: opcode, defined and used registers, optional
/// memory access, and an optional human-readable name used in examples and
/// DOT dumps (the paper labels nodes `L0`, `X1`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    opcode: Opcode,
    defs: Vec<Reg>,
    uses: Vec<Reg>,
    mem: Option<MemAccess>,
    name: Option<String>,
}

impl Inst {
    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if a load/store opcode is given no memory access, or a
    /// non-memory opcode is given one; these invariants keep the DAG
    /// builder honest.
    #[must_use]
    pub fn new(opcode: Opcode, defs: Vec<Reg>, uses: Vec<Reg>, mem: Option<MemAccess>) -> Self {
        let is_mem_op = opcode.is_load() || opcode.is_store();
        assert_eq!(
            is_mem_op,
            mem.is_some(),
            "memory access must be present exactly on loads/stores ({opcode})"
        );
        if let Some(m) = mem {
            assert_eq!(
                m.is_write(),
                opcode.is_store(),
                "access kind must match opcode {opcode}"
            );
        }
        Self {
            opcode,
            defs,
            uses,
            mem,
            name: None,
        }
    }

    /// Attaches a display name (builder-style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The opcode.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Registers written by this instruction.
    #[must_use]
    pub fn defs(&self) -> &[Reg] {
        &self.defs
    }

    /// Registers read by this instruction.
    #[must_use]
    pub fn uses(&self) -> &[Reg] {
        &self.uses
    }

    /// The memory access, for loads and stores.
    #[must_use]
    pub fn mem(&self) -> Option<MemAccess> {
        self.mem
    }

    /// Optional display name.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Shorthand for `self.opcode().is_load()`.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.opcode.is_load()
    }

    /// Shorthand for `self.opcode().is_store()`.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.opcode.is_store()
    }

    /// Shorthand for `self.opcode().is_spill()`.
    #[must_use]
    pub fn is_spill(&self) -> bool {
        self.opcode.is_spill()
    }

    /// Net register-pressure contribution when this instruction issues:
    /// `uses - defs`, counting distinct registers.
    ///
    /// The paper's first tie-break heuristic (§4.1) selects the ready
    /// instruction with the *largest difference between consumed and
    /// defined registers*, which (bottom-up) favours instructions that
    /// shrink the set of live values.
    #[must_use]
    pub fn pressure_delta(&self) -> i64 {
        let mut uses = self.uses.clone();
        uses.sort_unstable();
        uses.dedup();
        let mut defs = self.defs.clone();
        defs.sort_unstable();
        defs.dedup();
        uses.len() as i64 - defs.len() as i64
    }

    /// Rewrites every register operand through `f` (used by the register
    /// allocator to substitute physical for virtual registers).
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        for d in &mut self.defs {
            *d = f(*d);
        }
        for u in &mut self.uses {
            *u = f(*u);
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}: ")?;
        }
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        for d in &self.defs {
            write!(f, "{} {}", if first { "" } else { "," }, d)?;
            first = false;
        }
        for u in &self.uses {
            write!(f, "{} {}", if first { "" } else { "," }, u)?;
            first = false;
        }
        if let Some(m) = self.mem {
            write!(f, "{} {}", if first { "" } else { "," }, m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemAccess, MemLoc, RegionId};
    use crate::reg::{Reg, RegClass, VirtReg};

    fn vr(i: u32) -> Reg {
        VirtReg::new(RegClass::Int, i).into()
    }

    fn vf(i: u32) -> Reg {
        VirtReg::new(RegClass::Float, i).into()
    }

    fn read_acc() -> MemAccess {
        MemAccess::read(MemLoc::known(RegionId::new(0), 0))
    }

    fn write_acc() -> MemAccess {
        MemAccess::write(MemLoc::known(RegionId::new(0), 0))
    }

    #[test]
    fn load_requires_mem() {
        let i = Inst::new(Opcode::Ldc1, vec![vf(0)], vec![vr(1)], Some(read_acc()));
        assert!(i.is_load());
        assert!(i.mem().is_some());
    }

    #[test]
    #[should_panic(expected = "memory access must be present")]
    fn load_without_mem_panics() {
        let _ = Inst::new(Opcode::Lw, vec![vr(0)], vec![vr(1)], None);
    }

    #[test]
    #[should_panic(expected = "memory access must be present")]
    fn alu_with_mem_panics() {
        let _ = Inst::new(Opcode::Add, vec![vr(0)], vec![vr(1)], Some(read_acc()));
    }

    #[test]
    #[should_panic(expected = "access kind must match")]
    fn store_with_read_access_panics() {
        let _ = Inst::new(Opcode::Sdc1, vec![], vec![vf(0), vr(1)], Some(read_acc()));
    }

    #[test]
    fn pressure_delta_counts_distinct() {
        let i = Inst::new(Opcode::FAdd, vec![vf(0)], vec![vf(1), vf(1)], None);
        // one distinct use minus one def
        assert_eq!(i.pressure_delta(), 0);
        let j = Inst::new(Opcode::FAdd, vec![vf(0)], vec![vf(1), vf(2)], None);
        assert_eq!(j.pressure_delta(), 1);
        let store = Inst::new(Opcode::Sdc1, vec![], vec![vf(0), vr(1)], Some(write_acc()));
        assert_eq!(store.pressure_delta(), 2);
    }

    #[test]
    fn map_regs_rewrites_all_operands() {
        let mut i = Inst::new(Opcode::FAdd, vec![vf(0)], vec![vf(1), vf(2)], None);
        i.map_regs(|r| match r {
            Reg::Virt(v) => VirtReg::new(v.class(), v.index() + 10).into(),
            other => other,
        });
        assert_eq!(i.defs(), &[vf(10)]);
        assert_eq!(i.uses(), &[vf(11), vf(12)]);
    }

    #[test]
    fn display_includes_name_and_operands() {
        let i = Inst::new(Opcode::Ldc1, vec![vf(0)], vec![vr(1)], Some(read_acc())).with_name("L0");
        let s = i.to_string();
        assert!(s.starts_with("L0: ldc1"), "{s}");
        assert!(s.contains("vf0"), "{s}");
        assert!(s.contains("@0[0]"), "{s}");
    }

    #[test]
    fn inst_id_roundtrip() {
        let id = InstId::from_usize(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "i42");
        assert!(InstId::new(1) < InstId::new(2));
    }
}
