//! Symbolic memory locations and accesses.
//!
//! Memory dependence precision is central to the paper: Fig. 8 shows how
//! the Fortran-to-C translation destroys the Fortran guarantee that
//! distinct dummy arrays never alias, and describes the transformation
//! that restores it. We model the same distinction symbolically: every
//! load/store names a **region** (an array, a stack slot, a spill slot)
//! and, when known, a constant byte **offset** within it. The DAG builder
//! then applies an alias model (Fortran vs conservative C) to decide which
//! pairs of accesses must be ordered.

use std::fmt;

/// Identifier of a memory region: one Fortran array, stack frame area or
/// spill slot class.
///
/// Regions are allocated by the front end / workload generator; equality is
/// identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a raw number.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw number.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A symbolic memory location: region plus optionally-known offset.
///
/// * `offset = Some(k)` — the access touches exactly byte `k` of the
///   region (e.g. `a[3]` after constant folding, or unrolled-loop
///   references `a[i]`, `a[i+1]` with distinct known offsets from a
///   symbolic base).
/// * `offset = None` — the offset is unknown at compile time (e.g. an
///   indirection `a[idx[i]]`); such an access may overlap any access to
///   the same region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLoc {
    region: RegionId,
    offset: Option<i64>,
}

impl MemLoc {
    /// Location with a compile-time-known offset.
    #[must_use]
    pub fn known(region: RegionId, offset: i64) -> Self {
        Self {
            region,
            offset: Some(offset),
        }
    }

    /// Location with an unknown offset within the region.
    #[must_use]
    pub fn unknown(region: RegionId) -> Self {
        Self {
            region,
            offset: None,
        }
    }

    /// The region accessed.
    #[must_use]
    pub fn region(self) -> RegionId {
        self.region
    }

    /// The byte offset, when known.
    #[must_use]
    pub fn offset(self) -> Option<i64> {
        self.offset
    }

    /// Whether two locations **within the same region** may overlap,
    /// assuming each access covers `width` bytes.
    ///
    /// Cross-region aliasing is a policy decision (Fortran vs C) and is
    /// made by the DAG builder, not here; calling this on different
    /// regions returns `false`.
    #[must_use]
    pub fn overlaps_within_region(self, other: MemLoc, width: i64) -> bool {
        if self.region != other.region {
            return false;
        }
        match (self.offset, other.offset) {
            (Some(a), Some(b)) => (a - b).abs() < width,
            // Any unknown offset may touch anything in the region.
            _ => true,
        }
    }
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(k) => write!(f, "{}[{}]", self.region, k),
            None => write!(f, "{}[?]", self.region),
        }
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The access reads memory.
    Read,
    /// The access writes memory.
    Write,
}

/// A memory access attached to a load or store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    loc: MemLoc,
    kind: AccessKind,
    width: u32,
}

impl MemAccess {
    /// Default access width in bytes (double-precision word).
    pub const DEFAULT_WIDTH: u32 = 8;

    /// Creates an access of `kind` to `loc`, `width` bytes wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(loc: MemLoc, kind: AccessKind, width: u32) -> Self {
        assert!(width > 0, "access width must be positive");
        Self { loc, kind, width }
    }

    /// A `width`-default read of `loc`.
    #[must_use]
    pub fn read(loc: MemLoc) -> Self {
        Self::new(loc, AccessKind::Read, Self::DEFAULT_WIDTH)
    }

    /// A `width`-default write of `loc`.
    #[must_use]
    pub fn write(loc: MemLoc) -> Self {
        Self::new(loc, AccessKind::Write, Self::DEFAULT_WIDTH)
    }

    /// The location accessed.
    #[must_use]
    pub fn loc(self) -> MemLoc {
        self.loc
    }

    /// Read or write.
    #[must_use]
    pub fn kind(self) -> AccessKind {
        self.kind
    }

    /// Access width in bytes.
    #[must_use]
    pub fn width(self) -> u32 {
        self.width
    }

    /// `true` if this access writes.
    #[must_use]
    pub fn is_write(self) -> bool {
        self.kind == AccessKind::Write
    }

    /// Whether this access and `other` conflict **assuming their regions
    /// may overlap** — i.e. at least one writes and their byte ranges may
    /// intersect within a shared region.
    ///
    /// Two reads never conflict. Accesses to different regions do not
    /// conflict *at this level*; whether distinct regions can overlap at
    /// all is the DAG builder's alias-model decision.
    #[must_use]
    pub fn conflicts_same_region(self, other: MemAccess) -> bool {
        if !self.is_write() && !other.is_write() {
            return false;
        }
        let width = i64::from(self.width.max(other.width));
        self.loc.overlaps_within_region(other.loc, width)
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.kind {
            AccessKind::Read => "r",
            AccessKind::Write => "w",
        };
        write!(f, "{}:{}", arrow, self.loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(n: u32) -> RegionId {
        RegionId::new(n)
    }

    #[test]
    fn known_offsets_disambiguate() {
        let a0 = MemLoc::known(region(1), 0);
        let a8 = MemLoc::known(region(1), 8);
        assert!(!a0.overlaps_within_region(a8, 8), "disjoint doubles");
        assert!(a0.overlaps_within_region(a8, 16), "wider accesses overlap");
        assert!(a0.overlaps_within_region(a0, 8), "same location overlaps");
    }

    #[test]
    fn unknown_offset_overlaps_everything_in_region() {
        let unk = MemLoc::unknown(region(1));
        let k = MemLoc::known(region(1), 1000);
        assert!(unk.overlaps_within_region(k, 8));
        assert!(k.overlaps_within_region(unk, 8));
        assert!(unk.overlaps_within_region(unk, 8));
    }

    #[test]
    fn different_regions_never_overlap_here() {
        let a = MemLoc::known(region(1), 0);
        let b = MemLoc::known(region(2), 0);
        assert!(!a.overlaps_within_region(b, 8));
        let u = MemLoc::unknown(region(2));
        assert!(!a.overlaps_within_region(u, 8));
    }

    #[test]
    fn read_read_never_conflicts() {
        let a = MemAccess::read(MemLoc::known(region(1), 0));
        let b = MemAccess::read(MemLoc::known(region(1), 0));
        assert!(!a.conflicts_same_region(b));
    }

    #[test]
    fn write_conflicts_when_ranges_touch() {
        let w = MemAccess::write(MemLoc::known(region(1), 0));
        let r = MemAccess::read(MemLoc::known(region(1), 4));
        assert!(
            w.conflicts_same_region(r),
            "4-byte-apart 8-byte accesses overlap"
        );
        let r_far = MemAccess::read(MemLoc::known(region(1), 8));
        assert!(!w.conflicts_same_region(r_far));
        let w2 = MemAccess::write(MemLoc::known(region(1), 0));
        assert!(w.conflicts_same_region(w2), "write-write same loc");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = MemAccess::new(MemLoc::known(region(1), 0), AccessKind::Read, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MemLoc::known(region(3), 16).to_string(), "@3[16]");
        assert_eq!(MemLoc::unknown(region(3)).to_string(), "@3[?]");
        assert_eq!(
            MemAccess::write(MemLoc::known(region(3), 0)).to_string(),
            "w:@3[0]"
        );
    }
}
