//! Registers: classes, virtual registers and physical registers.

use std::fmt;

/// Register class: the MIPS has separate integer and floating-point files.
///
/// Classes matter to the register allocator (each class has its own
/// physical file and its own spill pool) and to the workload generator
/// (numeric kernels keep addresses in integer registers and data in FP
/// registers, which is what shapes register pressure in the paper's
/// Fortran programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer register (addresses, indices, integer data).
    Int,
    /// Floating-point register.
    Float,
}

impl RegClass {
    /// All register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// Single-letter prefix used in textual IR (`r` / `f`).
    #[must_use]
    pub fn prefix(self) -> char {
        match self {
            RegClass::Int => 'r',
            RegClass::Float => 'f',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}

/// A virtual register: unbounded supply, produced by the front end.
///
/// The first scheduling pass runs entirely on virtual registers so that no
/// false (anti/output) dependences restrict code motion — mirroring GCC's
/// pre-register-allocation scheduling pass (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtReg {
    class: RegClass,
    index: u32,
}

impl VirtReg {
    /// Creates a virtual register of `class` with arbitrary `index`.
    #[must_use]
    pub fn new(class: RegClass, index: u32) -> Self {
        Self { class, index }
    }

    /// The register's class.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}{}", self.class.prefix(), self.index)
    }
}

/// A physical register: one of a finite machine file.
///
/// Produced by register allocation; the second scheduling pass must honour
/// the anti- and output dependences physical registers introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg {
    class: RegClass,
    index: u32,
}

impl PhysReg {
    /// Creates a physical register of `class` with hardware number `index`.
    #[must_use]
    pub fn new(class: RegClass, index: u32) -> Self {
        Self { class, index }
    }

    /// The register's class.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's hardware number within its class.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

/// Either a virtual or a physical register.
///
/// Instructions store `Reg` operands so the same IR type flows through both
/// scheduling passes; a block is either entirely virtual (pre-allocation)
/// or entirely physical (post-allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// A virtual register.
    Virt(VirtReg),
    /// A physical register.
    Phys(PhysReg),
}

impl Reg {
    /// The register's class.
    #[must_use]
    pub fn class(self) -> RegClass {
        match self {
            Reg::Virt(v) => v.class(),
            Reg::Phys(p) => p.class(),
        }
    }

    /// Returns the contained virtual register, if any.
    #[must_use]
    pub fn as_virt(self) -> Option<VirtReg> {
        match self {
            Reg::Virt(v) => Some(v),
            Reg::Phys(_) => None,
        }
    }

    /// Returns the contained physical register, if any.
    #[must_use]
    pub fn as_phys(self) -> Option<PhysReg> {
        match self {
            Reg::Phys(p) => Some(p),
            Reg::Virt(_) => None,
        }
    }

    /// `true` for virtual registers.
    #[must_use]
    pub fn is_virt(self) -> bool {
        matches!(self, Reg::Virt(_))
    }
}

impl From<VirtReg> for Reg {
    fn from(v: VirtReg) -> Self {
        Reg::Virt(v)
    }
}

impl From<PhysReg> for Reg {
    fn from(p: PhysReg) -> Self {
        Reg::Phys(p)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Virt(v) => v.fmt(f),
            Reg::Phys(p) => p.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VirtReg::new(RegClass::Int, 3).to_string(), "vr3");
        assert_eq!(VirtReg::new(RegClass::Float, 0).to_string(), "vf0");
        assert_eq!(PhysReg::new(RegClass::Int, 31).to_string(), "r31");
        assert_eq!(
            Reg::from(PhysReg::new(RegClass::Float, 7)).to_string(),
            "f7"
        );
    }

    #[test]
    fn class_is_preserved() {
        let v = VirtReg::new(RegClass::Float, 1);
        let r: Reg = v.into();
        assert_eq!(r.class(), RegClass::Float);
        assert_eq!(r.as_virt(), Some(v));
        assert_eq!(r.as_phys(), None);
        assert!(r.is_virt());
    }

    #[test]
    fn phys_conversions() {
        let p = PhysReg::new(RegClass::Int, 4);
        let r: Reg = p.into();
        assert_eq!(r.as_phys(), Some(p));
        assert!(!r.is_virt());
    }

    #[test]
    fn ordering_groups_by_class_then_index() {
        let a = VirtReg::new(RegClass::Int, 5);
        let b = VirtReg::new(RegClass::Float, 0);
        assert!(a < b, "Int sorts before Float");
        let c = VirtReg::new(RegClass::Int, 6);
        assert!(a < c);
    }

    #[test]
    fn regclass_all_is_exhaustive() {
        assert_eq!(RegClass::ALL.len(), 2);
        assert_eq!(RegClass::Int.prefix(), 'r');
        assert_eq!(RegClass::Float.prefix(), 'f');
    }
}
