//! A MIPS-like RISC intermediate representation.
//!
//! The paper (§4.1) extracts GCC's RTL after optimisation, lowers it to a
//! RISC-like form, and schedules it for the MIPS R3000. This crate plays
//! that role: a small, explicit, register-based IR that the rest of the
//! repository builds dependence DAGs over, schedules, register-allocates and
//! simulates.
//!
//! Design points that matter for reproducing the paper:
//!
//! * **Virtual vs physical registers** ([`Reg`]): the first scheduling pass
//!   runs on virtual registers (unbounded, no false dependences); register
//!   allocation then maps them onto a finite physical file, inserting spill
//!   code; the second pass schedules the result. See [`reg`].
//! * **Memory references** ([`MemAccess`]): loads and stores carry a
//!   symbolic location ([`MemLoc`]) — a region (array/stack slot) plus an
//!   optionally-known constant offset — which is what the DAG builder uses
//!   to decide whether two references may alias under the Fortran or
//!   conservative C model (paper Fig. 8).
//! * **Single-cycle non-loads** (§4.3): every opcode reports a nominal
//!   latency of 1 except loads, whose latency is precisely the uncertain
//!   quantity the paper studies. FP opcodes can be given multi-cycle
//!   latencies to exercise the §6 extension.
//!
//! # Example
//!
//! ```
//! use bsched_ir::{BlockBuilder, RegClass};
//!
//! let mut b = BlockBuilder::new("body");
//! let addr_a = b.def_int("addr_a");
//! let x = b.load("x", addr_a, 0);       // x := mem[addr_a + 0]
//! let y = b.load("y", addr_a, 8);
//! let sum = b.fadd("sum", x, y);
//! b.store(sum, addr_a, 16);
//! let block = b.finish();
//! assert_eq!(block.len(), 5);
//! assert_eq!(block.insts()[1].mem().unwrap().loc().offset(), Some(0));
//! assert_eq!(x.class(), RegClass::Float);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod func;
pub mod inst;
pub mod mem;
pub mod opcode;
pub mod reg;

pub use block::BasicBlock;
pub use builder::BlockBuilder;
pub use func::Function;
pub use inst::{Inst, InstId};
pub use mem::{AccessKind, MemAccess, MemLoc, RegionId};
pub use opcode::{OpLatencies, Opcode};
pub use reg::{PhysReg, Reg, RegClass, VirtReg};
