//! Basic blocks.

use std::fmt;

use crate::inst::{Inst, InstId};

/// A basic block: a straight-line instruction sequence plus the profiled
/// execution frequency used to weight its simulated runtime (§4.3: block
/// sample means "are scaled by the profiled execution frequency").
///
/// Both schedulers in the paper operate strictly block-by-block, so the
/// block is the unit handed to the DAG builder, the schedulers, the
/// register allocator and the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    name: String,
    insts: Vec<Inst>,
    frequency: f64,
}

impl BasicBlock {
    /// Creates a block with execution frequency 1.
    #[must_use]
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Self {
            name: name.into(),
            insts,
            frequency: 1.0,
        }
    }

    /// Sets the profiled execution frequency (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is not finite and positive.
    #[must_use]
    pub fn with_frequency(mut self, frequency: f64) -> Self {
        assert!(
            frequency.is_finite() && frequency > 0.0,
            "frequency must be finite and positive"
        );
        self.frequency = frequency;
        self
    }

    /// The block's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions in program order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the block has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Profiled execution frequency.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Iterates `(InstId, &Inst)` pairs in program order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (InstId, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId::from_usize(i), inst))
    }

    /// Ids of all load instructions.
    #[must_use]
    pub fn load_ids(&self) -> Vec<InstId> {
        self.iter_ids()
            .filter(|(_, i)| i.is_load())
            .map(|(id, _)| id)
            .collect()
    }

    /// Count of instructions inserted by the register allocator.
    #[must_use]
    pub fn spill_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_spill()).count()
    }

    /// Returns a copy with the instructions permuted into `order`.
    ///
    /// Used to materialise a schedule back into a block. `order` must be a
    /// permutation of `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the block's instruction ids.
    #[must_use]
    pub fn reordered(&self, order: &[InstId]) -> BasicBlock {
        assert_eq!(
            order.len(),
            self.insts.len(),
            "order must cover every instruction"
        );
        let mut seen = vec![false; self.insts.len()];
        let insts = order
            .iter()
            .map(|id| {
                assert!(
                    !std::mem::replace(&mut seen[id.index()], true),
                    "duplicate id {id}"
                );
                self.insts[id.index()].clone()
            })
            .collect();
        BasicBlock {
            name: self.name.clone(),
            insts,
            frequency: self.frequency,
        }
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (freq {}):", self.name, self.frequency)?;
        for (id, inst) in self.iter_ids() {
            writeln!(f, "  {id:>4}  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemAccess, MemLoc, RegionId};
    use crate::opcode::Opcode;
    use crate::reg::{Reg, RegClass, VirtReg};

    fn vf(i: u32) -> Reg {
        VirtReg::new(RegClass::Float, i).into()
    }

    fn vr(i: u32) -> Reg {
        VirtReg::new(RegClass::Int, i).into()
    }

    fn sample_block() -> BasicBlock {
        let acc = MemAccess::read(MemLoc::known(RegionId::new(0), 0));
        BasicBlock::new(
            "b",
            vec![
                Inst::new(Opcode::Ldc1, vec![vf(0)], vec![vr(9)], Some(acc)),
                Inst::new(Opcode::FAdd, vec![vf(1)], vec![vf(0), vf(0)], None),
                Inst::new(Opcode::Ldc1, vec![vf(2)], vec![vr(9)], Some(acc)),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let b = sample_block();
        assert_eq!(b.name(), "b");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.frequency(), 1.0);
        assert_eq!(b.load_ids(), vec![InstId::new(0), InstId::new(2)]);
        assert_eq!(b.spill_count(), 0);
        assert_eq!(b.inst(InstId::new(1)).opcode(), Opcode::FAdd);
    }

    #[test]
    fn with_frequency_sets() {
        let b = sample_block().with_frequency(123.5);
        assert_eq!(b.frequency(), 123.5);
    }

    #[test]
    #[should_panic(expected = "frequency must be finite and positive")]
    fn zero_frequency_panics() {
        let _ = sample_block().with_frequency(0.0);
    }

    #[test]
    fn reorder_permutes() {
        let b = sample_block();
        let r = b.reordered(&[InstId::new(2), InstId::new(0), InstId::new(1)]);
        assert_eq!(r.insts()[0], b.insts()[2]);
        assert_eq!(r.insts()[1], b.insts()[0]);
        assert_eq!(r.insts()[2], b.insts()[1]);
        assert_eq!(r.frequency(), b.frequency());
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn reorder_rejects_duplicates() {
        let b = sample_block();
        let _ = b.reordered(&[InstId::new(0), InstId::new(0), InstId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn reorder_rejects_short_order() {
        let b = sample_block();
        let _ = b.reordered(&[InstId::new(0)]);
    }

    #[test]
    fn display_contains_instructions() {
        let text = sample_block().to_string();
        assert!(text.contains("ldc1"));
        assert!(text.contains("add.d"));
    }
}
