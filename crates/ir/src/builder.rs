//! Ergonomic construction of basic blocks.

use crate::block::BasicBlock;
use crate::inst::Inst;
use crate::mem::{MemAccess, MemLoc, RegionId};
use crate::opcode::Opcode;
use crate::reg::{Reg, RegClass, VirtReg};

/// Builder for a [`BasicBlock`] over fresh virtual registers.
///
/// Handles virtual-register numbering, memory-region allocation and the
/// load/store plumbing so that tests, examples and the workload
/// mini-compiler can write kernels compactly.
///
/// # Example
///
/// Build the paper's Figure 1 shape (two dependent loads feeding a chain,
/// four independent single-cycle instructions):
///
/// ```
/// use bsched_ir::BlockBuilder;
///
/// let mut b = BlockBuilder::new("fig1");
/// let base = b.def_int("base");
/// let l0 = b.load("L0", base, 0);
/// let p = b.int_to_addr("addr", l0);
/// let l1 = b.load("L1", p, 0);
/// let x4 = b.fadd("X4", l1, l1);
/// for n in 0..4 {
///     let c = b.fconst(&format!("X{n}"), 1.0);
///     let _ = c;
/// }
/// let block = b.finish();
/// assert_eq!(block.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    name: String,
    insts: Vec<Inst>,
    next_reg: [u32; 2],
    next_region: u32,
    frequency: f64,
}

impl BlockBuilder {
    /// Creates a builder for a block called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            insts: Vec::new(),
            next_reg: [0, 0],
            next_region: 0,
            frequency: 1.0,
        }
    }

    /// Sets the profiled execution frequency of the block being built.
    pub fn set_frequency(&mut self, frequency: f64) -> &mut Self {
        self.frequency = frequency;
        self
    }

    /// Allocates a fresh virtual register of `class` without defining it.
    #[must_use]
    pub fn fresh_reg(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::Int => 0,
            RegClass::Float => 1,
        };
        let idx = self.next_reg[slot];
        self.next_reg[slot] += 1;
        VirtReg::new(class, idx).into()
    }

    /// Allocates a fresh memory region (array / stack area).
    #[must_use]
    pub fn fresh_region(&mut self) -> RegionId {
        let r = RegionId::new(self.next_region);
        self.next_region += 1;
        r
    }

    /// Emits an arbitrary instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Emits `li` defining a fresh integer register (e.g. an array base).
    pub fn def_int(&mut self, name: &str) -> Reg {
        let d = self.fresh_reg(RegClass::Int);
        self.insts
            .push(Inst::new(Opcode::Li, vec![d], vec![], None).with_name(name));
        d
    }

    /// Emits `li`-like FP constant materialisation defining a fresh FP
    /// register. (Modelled as an FP move with no inputs.)
    pub fn fconst(&mut self, name: &str, _value: f64) -> Reg {
        let d = self.fresh_reg(RegClass::Float);
        self.insts
            .push(Inst::new(Opcode::FMove, vec![d], vec![], None).with_name(name));
        d
    }

    /// Emits an integer op producing a fresh address register from an FP
    /// value (models a computed index feeding an address).
    pub fn int_to_addr(&mut self, name: &str, src: Reg) -> Reg {
        let d = self.fresh_reg(RegClass::Int);
        self.insts
            .push(Inst::new(Opcode::Add, vec![d], vec![src], None).with_name(name));
        d
    }

    /// Emits an FP load of `region`-less memory at `base + offset` into a
    /// fresh FP register. The access is attributed to a per-base anonymous
    /// region keyed by the base register's identity; use
    /// [`BlockBuilder::load_region`] when the region matters for aliasing.
    pub fn load(&mut self, name: &str, base: Reg, offset: i64) -> Reg {
        // A conservative default: each distinct base integer register gets
        // its own region numbered after the register index. The workload
        // generator always uses load_region for precise aliasing.
        let region = RegionId::new(1_000_000 + base.as_virt().map_or(0, VirtReg::index));
        self.load_region(name, region, base, Some(offset))
    }

    /// Emits an FP load from `region` at known or unknown `offset`.
    pub fn load_region(
        &mut self,
        name: &str,
        region: RegionId,
        base: Reg,
        offset: Option<i64>,
    ) -> Reg {
        let d = self.fresh_reg(RegClass::Float);
        let loc = match offset {
            Some(k) => MemLoc::known(region, k),
            None => MemLoc::unknown(region),
        };
        self.insts.push(
            Inst::new(
                Opcode::Ldc1,
                vec![d],
                vec![base],
                Some(MemAccess::read(loc)),
            )
            .with_name(name),
        );
        d
    }

    /// Emits an integer load from `region` at known `offset`.
    pub fn load_int_region(
        &mut self,
        name: &str,
        region: RegionId,
        base: Reg,
        offset: Option<i64>,
    ) -> Reg {
        let d = self.fresh_reg(RegClass::Int);
        let loc = match offset {
            Some(k) => MemLoc::known(region, k),
            None => MemLoc::unknown(region),
        };
        self.insts.push(
            Inst::new(Opcode::Lw, vec![d], vec![base], Some(MemAccess::read(loc))).with_name(name),
        );
        d
    }

    /// Emits an FP store of `value` to `base + offset` (anonymous region;
    /// see [`BlockBuilder::load`]).
    pub fn store(&mut self, value: Reg, base: Reg, offset: i64) -> &mut Self {
        let region = RegionId::new(1_000_000 + base.as_virt().map_or(0, VirtReg::index));
        self.store_region(region, value, base, Some(offset))
    }

    /// Emits an FP store of `value` to `region` at known or unknown `offset`.
    pub fn store_region(
        &mut self,
        region: RegionId,
        value: Reg,
        base: Reg,
        offset: Option<i64>,
    ) -> &mut Self {
        let loc = match offset {
            Some(k) => MemLoc::known(region, k),
            None => MemLoc::unknown(region),
        };
        self.insts.push(Inst::new(
            Opcode::Sdc1,
            vec![],
            vec![value, base],
            Some(MemAccess::write(loc)),
        ));
        self
    }

    fn binop(&mut self, op: Opcode, name: &str, a: Reg, b: Reg) -> Reg {
        let d = self.fresh_reg(op.value_class());
        self.insts
            .push(Inst::new(op, vec![d], vec![a, b], None).with_name(name));
        d
    }

    /// Emits `add.d` producing a fresh FP register.
    pub fn fadd(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::FAdd, name, a, b)
    }

    /// Emits `sub.d` producing a fresh FP register.
    pub fn fsub(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::FSub, name, a, b)
    }

    /// Emits `mul.d` producing a fresh FP register.
    pub fn fmul(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::FMul, name, a, b)
    }

    /// Emits `div.d` producing a fresh FP register.
    pub fn fdiv(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::FDiv, name, a, b)
    }

    /// Emits integer `add` producing a fresh integer register.
    pub fn add(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::Add, name, a, b)
    }

    /// Emits integer `mul` producing a fresh integer register.
    pub fn mul(&mut self, name: &str, a: Reg, b: Reg) -> Reg {
        self.binop(Opcode::Mul, name, a, b)
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes the block.
    #[must_use]
    pub fn finish(self) -> BasicBlock {
        BasicBlock::new(self.name, self.insts).with_frequency(self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstId;

    #[test]
    fn fresh_regs_are_distinct_per_class() {
        let mut b = BlockBuilder::new("t");
        let r0 = b.fresh_reg(RegClass::Int);
        let r1 = b.fresh_reg(RegClass::Int);
        let f0 = b.fresh_reg(RegClass::Float);
        assert_ne!(r0, r1);
        assert_ne!(r0, f0);
        assert_eq!(f0.class(), RegClass::Float);
    }

    #[test]
    fn fresh_regions_are_distinct() {
        let mut b = BlockBuilder::new("t");
        assert_ne!(b.fresh_region(), b.fresh_region());
    }

    #[test]
    fn load_store_roundtrip_structure() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        b.store_region(region, x, base, Some(8));
        let blk = b.finish();
        assert_eq!(blk.len(), 3);
        assert!(blk.inst(InstId::new(1)).is_load());
        assert!(blk.inst(InstId::new(2)).is_store());
        assert_eq!(
            blk.inst(InstId::new(2)).mem().unwrap().loc().offset(),
            Some(8)
        );
    }

    #[test]
    fn unknown_offsets_supported() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let _ = b.load_region("x", region, base, None);
        let blk = b.finish();
        assert_eq!(blk.inst(InstId::new(1)).mem().unwrap().loc().offset(), None);
    }

    #[test]
    fn arith_ops_use_value_class() {
        let mut b = BlockBuilder::new("t");
        let a = b.fconst("a", 1.0);
        let c = b.fmul("c", a, a);
        assert_eq!(c.class(), RegClass::Float);
        let i = b.def_int("i");
        let j = b.add("j", i, i);
        assert_eq!(j.class(), RegClass::Int);
    }

    #[test]
    fn frequency_flows_through() {
        let mut b = BlockBuilder::new("t");
        b.set_frequency(42.0);
        let _ = b.def_int("x");
        assert_eq!(b.finish().frequency(), 42.0);
    }

    #[test]
    fn len_tracks_emission() {
        let mut b = BlockBuilder::new("t");
        assert!(b.is_empty());
        let _ = b.def_int("x");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
