//! Functions: named collections of basic blocks.

use std::fmt;

use crate::block::BasicBlock;

/// A function is a list of basic blocks with profiled frequencies.
///
/// Control flow between blocks is irrelevant to the paper's experiments —
/// both schedulers are strictly intra-block, and program runtime is the
/// frequency-weighted sum of block runtimes (§4.3) — so no CFG edges are
/// stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    blocks: Vec<BasicBlock>,
}

impl Function {
    /// Creates a function from blocks.
    #[must_use]
    pub fn new(name: impl Into<String>, blocks: Vec<BasicBlock>) -> Self {
        Self {
            name: name.into(),
            blocks,
        }
    }

    /// The function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic blocks.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Mutable access to the blocks (used when replacing blocks with their
    /// scheduled versions).
    pub fn blocks_mut(&mut self) -> &mut Vec<BasicBlock> {
        &mut self.blocks
    }

    /// Total static instruction count.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Frequency-weighted dynamic instruction count.
    #[must_use]
    pub fn dynamic_inst_count(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.len() as f64 * b.frequency())
            .sum()
    }

    /// Frequency-weighted dynamic count of spill instructions.
    #[must_use]
    pub fn dynamic_spill_count(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.spill_count() as f64 * b.frequency())
            .sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {}:", self.name)?;
        for b in &self.blocks {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;

    fn block(name: &str, loads: usize, freq: f64) -> BasicBlock {
        let mut b = BlockBuilder::new(name);
        b.set_frequency(freq);
        let base = b.def_int("base");
        let region = b.fresh_region();
        for k in 0..loads {
            let _ = b.load_region(&format!("l{k}"), region, base, Some(8 * k as i64));
        }
        b.finish()
    }

    #[test]
    fn counts() {
        let f = Function::new("f", vec![block("a", 2, 10.0), block("b", 3, 1.0)]);
        assert_eq!(f.inst_count(), 3 + 4);
        assert!((f.dynamic_inst_count() - (3.0 * 10.0 + 4.0)).abs() < 1e-12);
        assert_eq!(f.dynamic_spill_count(), 0.0);
        assert_eq!(f.blocks().len(), 2);
        assert_eq!(f.name(), "f");
    }

    #[test]
    fn blocks_mut_allows_replacement() {
        let mut f = Function::new("f", vec![block("a", 1, 1.0)]);
        f.blocks_mut()[0] = block("a2", 2, 1.0);
        assert_eq!(f.blocks()[0].name(), "a2");
    }

    #[test]
    fn display_lists_blocks() {
        let f = Function::new("f", vec![block("a", 1, 1.0)]);
        let s = f.to_string();
        assert!(s.contains("func f:"));
        assert!(s.contains("a (freq 1):"));
    }
}
