//! How much validation the pipeline runs.

/// How much independent validation the pipeline performs per block.
///
/// Ordered: each level includes everything below it, so call sites can
/// gate on `level >= ValidationLevel::Schedule`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValidationLevel {
    /// No validation. Output is byte-identical to a build without the
    /// validators.
    Off,
    /// Check that both scheduling passes emit topological orders of the
    /// code DAG ([`verify_schedule`](crate::verify_schedule)).
    Schedule,
    /// `Schedule` plus value-flow allocation checking
    /// ([`verify_allocation`](crate::verify_allocation)) and simulator
    /// timeline checking ([`verify_timeline`](crate::verify_timeline)).
    Full,
}

impl ValidationLevel {
    /// The level selected by the `BSCHED_VALIDATE` environment variable:
    /// `off` (also `0`/`none`), `schedule`, or `full`. Unset or
    /// unrecognised values fall back to the build default — `schedule`
    /// when `debug_assertions` are on, `off` otherwise — so a typo can
    /// never silently disable checking that a debug build would do.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("BSCHED_VALIDATE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "off" | "0" | "none" => ValidationLevel::Off,
                "schedule" => ValidationLevel::Schedule,
                "full" => ValidationLevel::Full,
                _ => Self::build_default(),
            },
            Err(_) => Self::build_default(),
        }
    }

    /// The default when `BSCHED_VALIDATE` is unset: `Schedule` in debug
    /// builds, `Off` in release builds (validation never perturbs
    /// measured table output).
    #[must_use]
    pub fn build_default() -> Self {
        if cfg!(debug_assertions) {
            ValidationLevel::Schedule
        } else {
            ValidationLevel::Off
        }
    }
}

impl Default for ValidationLevel {
    fn default() -> Self {
        Self::build_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate `BSCHED_VALIDATE`.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn levels_are_ordered() {
        assert!(ValidationLevel::Off < ValidationLevel::Schedule);
        assert!(ValidationLevel::Schedule < ValidationLevel::Full);
    }

    #[test]
    fn env_var_selects_level() {
        let _guard = ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (text, level) in [
            ("off", ValidationLevel::Off),
            ("0", ValidationLevel::Off),
            ("none", ValidationLevel::Off),
            ("schedule", ValidationLevel::Schedule),
            ("SCHEDULE", ValidationLevel::Schedule),
            ("full", ValidationLevel::Full),
            (" Full ", ValidationLevel::Full),
        ] {
            std::env::set_var("BSCHED_VALIDATE", text);
            assert_eq!(
                ValidationLevel::from_env(),
                level,
                "BSCHED_VALIDATE={text:?}"
            );
        }
        for fallback in ["", "garbage", "2"] {
            std::env::set_var("BSCHED_VALIDATE", fallback);
            assert_eq!(
                ValidationLevel::from_env(),
                ValidationLevel::build_default()
            );
        }
        std::env::remove_var("BSCHED_VALIDATE");
        assert_eq!(
            ValidationLevel::from_env(),
            ValidationLevel::build_default()
        );
        assert_eq!(ValidationLevel::default(), ValidationLevel::build_default());
    }
}
