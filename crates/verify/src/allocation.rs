//! Allocation legality: value-flow simulation over physical registers.

use std::collections::HashMap;

use bsched_ir::{BasicBlock, Inst, PhysReg, Reg};
use bsched_regalloc::{AllocatorConfig, SPILL_REGION};

use crate::error::VerifyError;

/// Checks that `allocated` is a faithful register allocation of
/// `original` (a spill-free block over virtual registers, in the same
/// instruction order).
///
/// The check runs an abstract interpretation of `allocated`: every
/// physical register and every spill slot tracks *which original value
/// it currently holds*. Walking the block in order,
///
/// * a **spill store** copies its register's value into its stack slot,
/// * a **spill reload** copies a previously stored slot back into a
///   register ([`VerifyError::UnmatchedReload`] if the slot was never
///   written),
/// * every **real instruction** is paired, in order, with the next
///   instruction of `original` — same opcode, operand counts and memory
///   access — and each register it reads must currently hold exactly the
///   value the original instruction reads. Reads are checked before
///   writes update the state, so an allocator may legally reuse a
///   register whose final use is in the same instruction.
///
/// This subsumes the classic post-regalloc checklist: no use before def,
/// no clobbered live range (the rename map stays a bijection per live
/// range), spill loads/stores pair up through real slots, and no
/// register index escapes the file described by `config`. Spill code
/// must live in the allocator's private [`SPILL_REGION`]; real memory
/// accesses must not.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_allocation(
    original: &BasicBlock,
    allocated: &BasicBlock,
    config: &AllocatorConfig,
) -> Result<(), VerifyError> {
    if allocated.frequency() != original.frequency() {
        return Err(VerifyError::ShapeMismatch {
            at: 0,
            detail: format!(
                "frequency changed from {} to {}",
                original.frequency(),
                allocated.frequency()
            ),
        });
    }

    // What each physical register / spill slot currently holds, as a
    // register of the *original* program.
    let mut reg_value: HashMap<PhysReg, Reg> = HashMap::new();
    let mut slot_value: HashMap<i64, Reg> = HashMap::new();
    let mut originals = original.insts().iter();

    for (at, inst) in allocated.insts().iter().enumerate() {
        check_registers_physical_and_in_range(at, inst, config)?;
        if inst.opcode().is_spill() {
            let slot = spill_slot(at, inst)?;
            if inst.opcode().is_store() {
                let (&[], &[reg]) = (inst.defs(), inst.uses()) else {
                    return Err(shape(at, "spill store must read exactly one register"));
                };
                let phys = as_phys(reg);
                let value = *reg_value
                    .get(&phys)
                    .ok_or(VerifyError::UseBeforeDef { at, reg: phys })?;
                slot_value.insert(slot, value);
            } else {
                let (&[reg], &[]) = (inst.defs(), inst.uses()) else {
                    return Err(shape(at, "spill reload must write exactly one register"));
                };
                let value = *slot_value
                    .get(&slot)
                    .ok_or(VerifyError::UnmatchedReload { at, slot })?;
                reg_value.insert(as_phys(reg), value);
            }
            continue;
        }

        let Some(orig) = originals.next() else {
            return Err(shape(at, "extra instruction not present before allocation"));
        };
        check_shape(at, orig, inst)?;
        // Reads first: the instruction sees the pre-write register state.
        for (&want, &got) in orig.uses().iter().zip(inst.uses()) {
            let phys = as_phys(got);
            match reg_value.get(&phys) {
                Some(&held) if held == want => {}
                Some(_) => {
                    return Err(VerifyError::StaleValue {
                        at,
                        reg: phys,
                        expected: want,
                    });
                }
                // A physical register the original program itself reads
                // (a live-in) holds "itself" on entry.
                None if want == got => {
                    reg_value.insert(phys, want);
                }
                None => return Err(VerifyError::UseBeforeDef { at, reg: phys }),
            }
        }
        for (&value, &target) in orig.defs().iter().zip(inst.defs()) {
            reg_value.insert(as_phys(target), value);
        }
    }

    if originals.next().is_some() {
        return Err(shape(
            allocated.len(),
            "instructions missing from the allocated block",
        ));
    }
    Ok(())
}

fn shape(at: usize, detail: impl Into<String>) -> VerifyError {
    VerifyError::ShapeMismatch {
        at,
        detail: detail.into(),
    }
}

/// Every register was pre-checked physical before the value-flow walk.
fn as_phys(reg: Reg) -> PhysReg {
    match reg {
        Reg::Phys(p) => p,
        Reg::Virt(_) => unreachable!("registers are pre-checked physical"),
    }
}

/// Every operand must be a physical register inside the configured file.
fn check_registers_physical_and_in_range(
    at: usize,
    inst: &Inst,
    config: &AllocatorConfig,
) -> Result<(), VerifyError> {
    for &reg in inst.defs().iter().chain(inst.uses()) {
        let Reg::Phys(phys) = reg else {
            return Err(shape(
                at,
                format!("virtual register {reg} survived allocation"),
            ));
        };
        let file_size = config.regs_of(phys.class());
        if phys.index() >= file_size {
            return Err(VerifyError::RegisterOutOfRange {
                at,
                reg: phys,
                file_size,
            });
        }
    }
    Ok(())
}

/// A spill instruction's slot: a known offset in the spill region.
fn spill_slot(at: usize, inst: &Inst) -> Result<i64, VerifyError> {
    let Some(mem) = inst.mem() else {
        return Err(shape(at, "spill instruction without a memory access"));
    };
    if mem.loc().region() != SPILL_REGION {
        return Err(shape(at, "spill instruction outside the spill region"));
    }
    mem.loc()
        .offset()
        .ok_or_else(|| shape(at, "spill slot must have a known offset"))
}

/// A real instruction must match its pre-allocation counterpart in
/// everything except register names.
fn check_shape(at: usize, orig: &Inst, inst: &Inst) -> Result<(), VerifyError> {
    if inst.opcode() != orig.opcode() {
        return Err(shape(
            at,
            format!(
                "opcode {} was {}",
                inst.opcode().mnemonic(),
                orig.opcode().mnemonic()
            ),
        ));
    }
    if inst.defs().len() != orig.defs().len() || inst.uses().len() != orig.uses().len() {
        return Err(shape(at, "operand counts changed"));
    }
    match (orig.mem(), inst.mem()) {
        (None, None) => {}
        (Some(want), Some(got)) => {
            if got.loc().region() == SPILL_REGION {
                return Err(shape(at, "real instruction accesses the spill region"));
            }
            if got.loc().region() != want.loc().region()
                || got.loc().offset() != want.loc().offset()
                || got.is_write() != want.is_write()
                || got.width() != want.width()
            {
                return Err(shape(at, "memory access changed"));
            }
        }
        _ => return Err(shape(at, "memory access added or removed")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{AccessKind, MemAccess, MemLoc, Opcode, RegClass, RegionId, VirtReg};

    const DATA: RegionId = RegionId::new(7);

    fn vi(i: u32) -> Reg {
        VirtReg::new(RegClass::Int, i).into()
    }
    fn vf(i: u32) -> Reg {
        VirtReg::new(RegClass::Float, i).into()
    }
    fn pi(i: u32) -> Reg {
        PhysReg::new(RegClass::Int, i).into()
    }
    fn pf(i: u32) -> Reg {
        PhysReg::new(RegClass::Float, i).into()
    }
    fn read(region: RegionId, offset: i64) -> Option<MemAccess> {
        Some(MemAccess::new(
            MemLoc::known(region, offset),
            AccessKind::Read,
            8,
        ))
    }
    fn write(region: RegionId, offset: i64) -> Option<MemAccess> {
        Some(MemAccess::new(
            MemLoc::known(region, offset),
            AccessKind::Write,
            8,
        ))
    }

    /// base = li; f0 = load [base+0]; f1 = f0 + f0; store f1, [base+8].
    fn original() -> BasicBlock {
        BasicBlock::new(
            "o",
            vec![
                Inst::new(Opcode::Li, vec![vi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![vf(0)], vec![vi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![vf(1)], vec![vf(0), vf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![vf(1), vi(0)], write(DATA, 8)),
            ],
        )
    }

    fn config() -> AllocatorConfig {
        AllocatorConfig::mips_default()
    }

    #[test]
    fn direct_renaming_verifies() {
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(0)], write(DATA, 8)),
            ],
        );
        assert!(verify_allocation(&original(), &allocated, &config()).is_ok());
    }

    #[test]
    fn spill_round_trip_verifies() {
        // The base register is spilled after definition and reloaded into
        // a *different* register for the final store.
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(
                    Opcode::SpillStore,
                    vec![],
                    vec![pi(0)],
                    write(SPILL_REGION, 0),
                ),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(
                    Opcode::SpillLoad,
                    vec![pi(5)],
                    vec![],
                    read(SPILL_REGION, 0),
                ),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(5)], write(DATA, 8)),
            ],
        );
        assert!(verify_allocation(&original(), &allocated, &config()).is_ok());
    }

    #[test]
    fn same_instruction_register_reuse_is_legal() {
        // f0 is read and overwritten by the same add: reads precede
        // writes, so this is a legal (if tight) assignment.
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(0)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(0), pi(0)], write(DATA, 8)),
            ],
        );
        assert!(verify_allocation(&original(), &allocated, &config()).is_ok());
    }

    #[test]
    fn stale_value_is_detected() {
        // The store reads pf(0), which still holds the load's value, not
        // the add's result.
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(0), pi(0)], write(DATA, 8)),
            ],
        );
        let err = verify_allocation(&original(), &allocated, &config()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::StaleValue {
                at: 3,
                reg: PhysReg::new(RegClass::Float, 0),
                expected: vf(1),
            }
        );
    }

    #[test]
    fn use_before_def_is_detected() {
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(3)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(0)], write(DATA, 8)),
            ],
        );
        let err = verify_allocation(&original(), &allocated, &config()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::UseBeforeDef {
                at: 1,
                reg: PhysReg::new(RegClass::Int, 3)
            }
        );
    }

    #[test]
    fn unwritten_slot_reload_is_detected() {
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(
                    Opcode::SpillLoad,
                    vec![pi(5)],
                    vec![],
                    read(SPILL_REGION, 16),
                ),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(5)], write(DATA, 8)),
            ],
        );
        let err = verify_allocation(&original(), &allocated, &config()).unwrap_err();
        assert_eq!(err, VerifyError::UnmatchedReload { at: 3, slot: 16 });
    }

    #[test]
    fn out_of_range_register_is_detected() {
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Li, vec![pi(40)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(40)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(40)], write(DATA, 8)),
            ],
        );
        let err = verify_allocation(&original(), &allocated, &config()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::RegisterOutOfRange {
                at: 0,
                reg: PhysReg::new(RegClass::Int, 40),
                file_size: 12,
            }
        );
    }

    #[test]
    fn shape_changes_are_detected() {
        // Surviving virtual register.
        let allocated =
            BasicBlock::new("a", vec![Inst::new(Opcode::Li, vec![vi(0)], vec![], None)]);
        assert!(matches!(
            verify_allocation(&original(), &allocated, &config()),
            Err(VerifyError::ShapeMismatch { at: 0, .. })
        ));
        // Dropped instructions.
        let allocated =
            BasicBlock::new("a", vec![Inst::new(Opcode::Li, vec![pi(0)], vec![], None)]);
        assert!(matches!(
            verify_allocation(&original(), &allocated, &config()),
            Err(VerifyError::ShapeMismatch { at: 1, .. })
        ));
        // Changed opcode.
        let allocated = BasicBlock::new(
            "a",
            vec![
                Inst::new(Opcode::Move, vec![pi(0)], vec![], None),
                Inst::new(Opcode::Ldc1, vec![pf(0)], vec![pi(0)], read(DATA, 0)),
                Inst::new(Opcode::FAdd, vec![pf(1)], vec![pf(0), pf(0)], None),
                Inst::new(Opcode::Sdc1, vec![], vec![pf(1), pi(0)], write(DATA, 8)),
            ],
        );
        assert!(matches!(
            verify_allocation(&original(), &allocated, &config()),
            Err(VerifyError::ShapeMismatch { at: 0, .. })
        ));
    }
}
