//! Independent validators for the compile–simulate pipeline.
//!
//! Every number the paper's tables report rests on three invariants that
//! nothing else in the pipeline checks end-to-end:
//!
//! 1. a scheduled block is a **topological order** of its code DAG
//!    ([`verify_schedule`]);
//! 2. register allocation preserves **value flow** — every physical
//!    register read holds the virtual value the original program read,
//!    spill stores and reloads pair up through real stack slots, and no
//!    register index escapes the configured file ([`verify_allocation`]);
//! 3. the simulator's issue **timeline** is sane — monotone issue cycles,
//!    every sampled load latency inside the memory model's declared
//!    support, and total time no smaller than the min-latency critical
//!    path ([`verify_timeline`]).
//!
//! The validators recompute everything from first principles (they build
//! their own DAG, run their own dataflow) so a bug in the scheduler,
//! allocator or simulator cannot hide itself. They are wired into
//! `bsched-pipeline` behind a [`ValidationLevel`], selected by the
//! `BSCHED_VALIDATE` environment variable: `off`, `schedule`, or `full`
//! (default: `schedule` in debug builds, `off` in release builds).
//!
//! # Example
//!
//! ```
//! use bsched_dag::AliasModel;
//! use bsched_ir::{BlockBuilder, InstId};
//! use bsched_verify::verify_schedule;
//!
//! let mut b = BlockBuilder::new("ex");
//! let base = b.def_int("base");
//! let x = b.load("x", base, 0);
//! let _y = b.fadd("y", x, x);
//! let block = b.finish();
//!
//! // Program order is always a legal schedule…
//! let order: Vec<InstId> = (0..3).map(InstId::from_usize).collect();
//! assert!(verify_schedule(&block, &order, AliasModel::Fortran).is_ok());
//! // …issuing the add before its load is not.
//! let bad = [2, 0, 1].map(InstId::from_usize);
//! assert!(verify_schedule(&block, &bad, AliasModel::Fortran).is_err());
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod error;
pub mod level;
pub mod schedule;
pub mod timeline;

pub use allocation::verify_allocation;
pub use error::VerifyError;
pub use level::ValidationLevel;
pub use schedule::verify_schedule;
pub use timeline::{min_latency_elapsed, verify_timeline};
