//! The validator error taxonomy.

use bsched_dag::DepKind;
use bsched_ir::{InstId, PhysReg, Reg};

/// A validator finding: why a schedule, allocation or timeline is wrong.
///
/// Every variant names the first violation found, with enough context to
/// locate it; validators stop at the first finding.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The scheduled order has a different length than the block.
    LengthMismatch {
        /// Instructions in the block.
        expected: usize,
        /// Entries in the scheduled order.
        got: usize,
    },
    /// The scheduled order repeats or invents an instruction id.
    NotAPermutation {
        /// The offending id.
        id: InstId,
    },
    /// A dependence edge of the code DAG points backward in the
    /// scheduled order.
    DependenceViolated {
        /// The predecessor instruction.
        from: InstId,
        /// The successor instruction, scheduled before its predecessor.
        to: InstId,
        /// Why the successor must follow the predecessor.
        kind: DepKind,
    },
    /// The allocated block's real instructions do not line up with the
    /// pre-allocation block (opcode, operand counts, memory access or
    /// frequency differ, or instructions were added/dropped).
    ShapeMismatch {
        /// Position in the allocated block (or its length, when
        /// instructions are missing at the end).
        at: usize,
        /// What failed to match.
        detail: String,
    },
    /// An instruction reads a physical register before anything was
    /// written to it.
    UseBeforeDef {
        /// Position in the allocated block.
        at: usize,
        /// The register read.
        reg: PhysReg,
    },
    /// A physical register holds a different virtual value than the one
    /// the original program reads here — a live range was clobbered.
    StaleValue {
        /// Position in the allocated block.
        at: usize,
        /// The register read.
        reg: PhysReg,
        /// The value the original program expects.
        expected: Reg,
    },
    /// A register index is outside the configured register file.
    RegisterOutOfRange {
        /// Position in the allocated block.
        at: usize,
        /// The offending register.
        reg: PhysReg,
        /// Registers of that class in the file.
        file_size: u32,
    },
    /// A spill reload reads a stack slot no spill store has written.
    UnmatchedReload {
        /// Position in the allocated block.
        at: usize,
        /// The slot's byte offset in the spill region.
        slot: i64,
    },
    /// The simulator's issue trace is inconsistent (non-monotone issue
    /// cycles, a load latency outside the memory model's declared
    /// support, or elapsed time below the min-latency critical path).
    Timeline {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "schedule covers {got} instructions, block has {expected}"
                )
            }
            VerifyError::NotAPermutation { id } => {
                write!(f, "schedule repeats or invents instruction {id}")
            }
            VerifyError::DependenceViolated { from, to, kind } => {
                write!(
                    f,
                    "{kind} dependence {from} -> {to} points backward in the schedule"
                )
            }
            VerifyError::ShapeMismatch { at, detail } => {
                write!(f, "allocated instruction {at}: {detail}")
            }
            VerifyError::UseBeforeDef { at, reg } => {
                write!(f, "allocated instruction {at} reads {reg} before any write")
            }
            VerifyError::StaleValue { at, reg, expected } => {
                write!(
                    f,
                    "allocated instruction {at} reads {reg}, which no longer holds {expected}"
                )
            }
            VerifyError::RegisterOutOfRange { at, reg, file_size } => {
                write!(
                    f,
                    "allocated instruction {at} names {reg}, outside the {file_size}-register file"
                )
            }
            VerifyError::UnmatchedReload { at, slot } => {
                write!(
                    f,
                    "reload at {at} reads spill slot {slot}, which was never stored"
                )
            }
            VerifyError::Timeline { detail } => write!(f, "simulator timeline: {detail}"),
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = VerifyError::LengthMismatch {
            expected: 4,
            got: 3,
        };
        assert_eq!(e.to_string(), "schedule covers 3 instructions, block has 4");
        let e = VerifyError::Timeline {
            detail: "x".to_owned(),
        };
        assert_eq!(e.to_string(), "simulator timeline: x");
        let e = VerifyError::UnmatchedReload { at: 7, slot: 16 };
        assert!(e.to_string().contains("slot 16"));
    }
}
