//! Timeline sanity: the simulator's issue trace against first principles.

use std::collections::HashMap;

use bsched_cpusim::IssueEvent;
use bsched_ir::{BasicBlock, Reg};

use crate::error::VerifyError;

/// The elapsed cycle count of `block` on an idealised single-issue
/// machine where every load completes in exactly `min_load_latency`
/// cycles (clamped to at least 1, the simulator's floor) and every other
/// instruction in one.
///
/// This re-runs the dataflow from scratch — one instruction per cycle,
/// an instruction waits until its operands are ready — with no processor
/// model and the most optimistic latency the memory system can produce.
/// Real simulations only ever *add* stalls on top of this (longer
/// latency draws, MAX/LEN processor constraints), so the result is a
/// hard lower bound on any legitimate elapsed time for the same block.
#[must_use]
pub fn min_latency_elapsed(block: &BasicBlock, min_load_latency: u64) -> u64 {
    let load_latency = min_load_latency.max(1);
    let mut ready: HashMap<Reg, u64> = HashMap::new();
    let mut cycle: u64 = 0;
    for inst in block.insts() {
        if inst.opcode().is_vnop() {
            continue;
        }
        let operand_ready = inst
            .uses()
            .iter()
            .map(|u| ready.get(u).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let issue = cycle.max(operand_ready);
        let complete = issue + if inst.is_load() { load_latency } else { 1 };
        for &d in inst.defs() {
            ready.insert(d, complete);
        }
        cycle = issue + 1;
    }
    cycle
}

/// Checks a single-issue simulation trace of `block` for internal
/// consistency:
///
/// * the trace covers exactly the block's non-vnop instructions, in
///   order;
/// * issue cycles are strictly increasing (one instruction per cycle);
/// * every load's latency lies within the memory model's declared
///   support `[min_load_latency.max(1), max_load_latency]`, and every
///   other instruction completes the cycle after it issues;
/// * `elapsed` is the cycle after the last issue, and is at least
///   [`min_latency_elapsed`] — the simulator cannot report a runtime
///   faster than the min-latency critical path.
///
/// `max_load_latency` is `None` for unbounded models (e.g. a normal
/// distribution's upper tail).
///
/// # Errors
///
/// Returns [`VerifyError::Timeline`] describing the first inconsistency.
pub fn verify_timeline(
    block: &BasicBlock,
    events: &[IssueEvent],
    elapsed: u64,
    min_load_latency: u64,
    max_load_latency: Option<u64>,
) -> Result<(), VerifyError> {
    let timeline = |detail: String| VerifyError::Timeline { detail };
    let min_load_latency = min_load_latency.max(1);

    let mut events_iter = events.iter();
    let mut last_issue = None;
    for (id, inst) in block.iter_ids() {
        if inst.opcode().is_vnop() {
            continue;
        }
        let Some(event) = events_iter.next() else {
            return Err(timeline(format!("trace ends before instruction {id}")));
        };
        if event.id != id {
            return Err(timeline(format!(
                "trace lists {} where the block has {id}",
                event.id
            )));
        }
        if let Some(prev) = last_issue {
            if event.issue_cycle <= prev {
                return Err(timeline(format!(
                    "{id} issues at cycle {}, not after the previous issue at {prev}",
                    event.issue_cycle
                )));
            }
        }
        last_issue = Some(event.issue_cycle);

        let latency = event.complete_cycle.saturating_sub(event.issue_cycle);
        if inst.is_load() {
            if latency < min_load_latency {
                return Err(timeline(format!(
                    "load {id} took {latency} cycles, below the model minimum {min_load_latency}"
                )));
            }
            if let Some(max) = max_load_latency {
                if latency > max {
                    return Err(timeline(format!(
                        "load {id} took {latency} cycles, above the model maximum {max}"
                    )));
                }
            }
        } else if latency != 1 {
            return Err(timeline(format!(
                "non-load {id} took {latency} cycles instead of 1"
            )));
        }
    }
    if let Some(extra) = events_iter.next() {
        return Err(timeline(format!(
            "trace has an extra event for {}",
            extra.id
        )));
    }

    let expected_elapsed = last_issue.map_or(0, |issue| issue + 1);
    if elapsed != expected_elapsed {
        return Err(timeline(format!(
            "elapsed {elapsed} cycles, but the last issue implies {expected_elapsed}"
        )));
    }
    let floor = min_latency_elapsed(block, min_load_latency);
    if elapsed < floor {
        return Err(timeline(format!(
            "elapsed {elapsed} cycles, below the min-latency critical path of {floor}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_cpusim::{simulate_block_traced, ProcessorModel};
    use bsched_ir::{BlockBuilder, InstId};
    use bsched_memsim::FixedLatency;
    use bsched_stats::Pcg32;

    /// base; x = load; y = load; s = x + y.
    fn demo_block() -> BasicBlock {
        let mut b = BlockBuilder::new("demo");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        let y = b.load_region("y", region, base, Some(8));
        let _ = b.fadd("s", x, y);
        b.finish()
    }

    fn trace(latency: u64) -> (BasicBlock, Vec<IssueEvent>, u64) {
        let block = demo_block();
        let mut rng = Pcg32::seed_from_u64(0);
        let (result, events) = simulate_block_traced(
            &block,
            &FixedLatency::new(latency),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        (block, events, result.cycles())
    }

    #[test]
    fn real_traces_verify() {
        for latency in [1, 4, 20] {
            let (block, events, elapsed) = trace(latency);
            verify_timeline(&block, &events, elapsed, latency, Some(latency)).unwrap();
            // Looser declared bounds also pass.
            verify_timeline(&block, &events, elapsed, 1, None).unwrap();
        }
    }

    #[test]
    fn critical_path_matches_hand_count() {
        // base@0; loads @1,@2; add waits for y: issue 2+λ, elapsed 3+λ.
        let block = demo_block();
        for latency in [1u64, 4, 20] {
            assert_eq!(min_latency_elapsed(&block, latency), 3 + latency.max(1));
        }
        assert_eq!(min_latency_elapsed(&BasicBlock::new("e", vec![]), 5), 0);
    }

    #[test]
    fn latency_outside_declared_support_is_rejected() {
        let (block, events, elapsed) = trace(4);
        let err = verify_timeline(&block, &events, elapsed, 5, None).unwrap_err();
        assert!(err.to_string().contains("below the model minimum"), "{err}");
        let err = verify_timeline(&block, &events, elapsed, 1, Some(3)).unwrap_err();
        assert!(err.to_string().contains("above the model maximum"), "{err}");
    }

    #[test]
    fn tampered_traces_are_rejected() {
        let (block, events, elapsed) = trace(4);

        // Non-monotone issue.
        let mut bad = events.clone();
        bad[2].issue_cycle = bad[1].issue_cycle;
        let err = verify_timeline(&block, &bad, elapsed, 1, None).unwrap_err();
        assert!(err.to_string().contains("not after"), "{err}");

        // Wrong instruction order.
        let mut bad = events.clone();
        bad.swap(1, 2);
        assert!(verify_timeline(&block, &bad, elapsed, 1, None).is_err());

        // Missing / extra events.
        assert!(verify_timeline(&block, &events[..3], elapsed, 1, None).is_err());
        let mut bad = events.clone();
        bad.push(IssueEvent {
            id: InstId::from_usize(9),
            issue_cycle: elapsed + 1,
            complete_cycle: elapsed + 2,
            stall_cycles: 0,
        });
        assert!(verify_timeline(&block, &bad, elapsed, 1, None).is_err());

        // A non-load pretending to be multi-cycle.
        let mut bad = events.clone();
        bad[0].complete_cycle = bad[0].issue_cycle + 3;
        let err = verify_timeline(&block, &bad, elapsed, 1, None).unwrap_err();
        assert!(err.to_string().contains("instead of 1"), "{err}");

        // Elapsed time inconsistent with the last issue.
        let err = verify_timeline(&block, &events, elapsed + 1, 1, None).unwrap_err();
        assert!(err.to_string().contains("last issue implies"), "{err}");
    }

    #[test]
    fn impossibly_fast_elapsed_is_rejected() {
        // Claim every load finished instantly and issues were packed:
        // the min-latency critical path (λ = 4 declared) forbids it.
        let (block, events, elapsed) = trace(1);
        // With declared min 4, the λ=1 trace violates the per-load bound
        // first; squeeze the check down to the critical-path comparison
        // by handing it a consistent-looking fast trace.
        let err = verify_timeline(&block, &events, elapsed, 4, None).unwrap_err();
        assert!(err.to_string().contains("below the model minimum"), "{err}");
        // And a trace whose per-event data is fine but whose elapsed
        // claim undercuts the critical path is caught by the floor.
        let floor = min_latency_elapsed(&block, 1);
        assert!(elapsed >= floor);
    }

    #[test]
    fn empty_block_trace_verifies() {
        let block = BasicBlock::new("e", vec![]);
        verify_timeline(&block, &[], 0, 3, Some(3)).unwrap();
        assert!(verify_timeline(&block, &[], 1, 3, Some(3)).is_err());
    }
}
