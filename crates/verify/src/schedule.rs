//! Schedule legality: topological order of an independently built DAG.

use bsched_dag::{build_dag, AliasModel};
use bsched_ir::{BasicBlock, InstId};

use crate::error::VerifyError;

/// Checks that `order` is a legal schedule of `block`: a permutation of
/// its instruction ids in which every dependence edge points forward.
///
/// The code DAG is rebuilt here from `block` under `alias`, so this is
/// an independent check — it does not trust the DAG the scheduler used,
/// only the block and the aliasing discipline.
///
/// # Errors
///
/// Returns the first violation found: a length mismatch, a repeated or
/// invented id, or a backward dependence edge.
pub fn verify_schedule(
    block: &BasicBlock,
    order: &[InstId],
    alias: AliasModel,
) -> Result<(), VerifyError> {
    let n = block.len();
    if order.len() != n {
        return Err(VerifyError::LengthMismatch {
            expected: n,
            got: order.len(),
        });
    }
    // Each instruction issued exactly once.
    let mut pos = vec![usize::MAX; n];
    for (p, &id) in order.iter().enumerate() {
        if id.index() >= n || pos[id.index()] != usize::MAX {
            return Err(VerifyError::NotAPermutation { id });
        }
        pos[id.index()] = p;
    }
    // Every dependence edge respected.
    let dag = build_dag(block, alias);
    for from in dag.node_ids() {
        for &(to, kind) in dag.succs(from) {
            if pos[from.index()] >= pos[to.index()] {
                return Err(VerifyError::DependenceViolated { from, to, kind });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::DepKind;
    use bsched_ir::BlockBuilder;

    /// base; x = load(base); y = load(base); s = x + y; store s.
    fn demo_block() -> BasicBlock {
        let mut b = BlockBuilder::new("demo");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        let y = b.load_region("y", region, base, Some(8));
        let s = b.fadd("s", x, y);
        b.store_region(region, s, base, Some(16));
        b.finish()
    }

    fn ids(raw: &[usize]) -> Vec<InstId> {
        raw.iter().copied().map(InstId::from_usize).collect()
    }

    #[test]
    fn program_order_is_legal() {
        let block = demo_block();
        let order = ids(&[0, 1, 2, 3, 4]);
        assert!(verify_schedule(&block, &order, AliasModel::Fortran).is_ok());
    }

    #[test]
    fn independent_loads_may_swap() {
        let block = demo_block();
        let order = ids(&[0, 2, 1, 3, 4]);
        assert!(verify_schedule(&block, &order, AliasModel::Fortran).is_ok());
    }

    #[test]
    fn use_before_def_is_rejected() {
        let block = demo_block();
        // The add scheduled before the load of its operand.
        let order = ids(&[0, 1, 3, 2, 4]);
        let err = verify_schedule(&block, &order, AliasModel::Fortran).unwrap_err();
        assert_eq!(
            err,
            VerifyError::DependenceViolated {
                from: InstId::from_usize(2),
                to: InstId::from_usize(3),
                kind: DepKind::True,
            }
        );
    }

    #[test]
    fn duplicates_and_length_are_rejected() {
        let block = demo_block();
        let err = verify_schedule(&block, &ids(&[0, 1, 2, 3]), AliasModel::Fortran).unwrap_err();
        assert_eq!(
            err,
            VerifyError::LengthMismatch {
                expected: 5,
                got: 4
            }
        );
        let err = verify_schedule(&block, &ids(&[0, 1, 2, 3, 3]), AliasModel::Fortran).unwrap_err();
        assert_eq!(
            err,
            VerifyError::NotAPermutation {
                id: InstId::from_usize(3)
            }
        );
        let err = verify_schedule(&block, &ids(&[0, 1, 2, 3, 9]), AliasModel::Fortran).unwrap_err();
        assert_eq!(
            err,
            VerifyError::NotAPermutation {
                id: InstId::from_usize(9)
            }
        );
    }

    #[test]
    fn empty_block_verifies() {
        let block = BasicBlock::new("empty", Vec::new());
        assert!(verify_schedule(&block, &[], AliasModel::Fortran).is_ok());
    }
}
