//! The cacheless interconnection-network model `N(μ,σ)`.

use bsched_stats::Pcg32;

use crate::normal::DiscretizedNormal;
use crate::LatencyModel;

/// A multipath memory interconnect with hashed address distribution and no
/// cache (§4.5, second system model): every load's latency is a draw from
/// a zero-based discretised normal `N(μ,σ)`.
///
/// σ = 2 models "a machine in a relatively stable state"; σ = 5 one with
/// "unpredictable memory latencies". Means of 2, 3 and 5 model different
/// base load levels (in a Tera-style multithreaded machine, more active
/// threads ⇒ lower mean access time). `N(30,5)` is the deliberately
/// unbalanced configuration of Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    dist: DiscretizedNormal,
}

impl NetworkModel {
    /// Creates `N(mean, std_dev)`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `std_dev ≥ 0`.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        Self {
            dist: DiscretizedNormal::new(mean, std_dev),
        }
    }

    /// All seven network configurations of the paper, in Table 2 order.
    #[must_use]
    pub fn paper_configs() -> Vec<NetworkModel> {
        [
            (2.0, 2.0),
            (3.0, 2.0),
            (5.0, 2.0),
            (2.0, 5.0),
            (3.0, 5.0),
            (5.0, 5.0),
            (30.0, 5.0),
        ]
        .into_iter()
        .map(|(m, s)| NetworkModel::new(m, s))
        .collect()
    }

    /// The underlying discretised distribution.
    #[must_use]
    pub fn distribution(&self) -> DiscretizedNormal {
        self.dist
    }
}

impl LatencyModel for NetworkModel {
    fn name(&self) -> String {
        format!("N({},{})", self.dist.mean(), self.dist.std_dev())
    }

    fn sample(&self, rng: &mut Pcg32) -> u64 {
        self.dist.sample(rng)
    }

    fn optimistic_latency(&self) -> f64 {
        self.dist.mean()
    }

    fn effective_latency(&self) -> f64 {
        self.dist.discrete_mean()
    }

    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(NetworkModel::new(2.0, 2.0).name(), "N(2,2)");
        assert_eq!(NetworkModel::new(30.0, 5.0).name(), "N(30,5)");
    }

    #[test]
    fn paper_configs_are_seven() {
        let configs = NetworkModel::paper_configs();
        assert_eq!(configs.len(), 7);
        assert_eq!(configs[0].name(), "N(2,2)");
        assert_eq!(configs[6].name(), "N(30,5)");
    }

    #[test]
    fn optimistic_is_mean() {
        assert_eq!(NetworkModel::new(5.0, 2.0).optimistic_latency(), 5.0);
    }

    #[test]
    fn high_sigma_spreads_samples() {
        let tight = NetworkModel::new(5.0, 2.0);
        let wide = NetworkModel::new(5.0, 5.0);
        let mut rng = Pcg32::seed_from_u64(9);
        let spread = |m: &NetworkModel, rng: &mut Pcg32| {
            let xs: Vec<f64> = (0..20_000).map(|_| m.sample(rng) as f64).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s_tight = spread(&tight, &mut rng);
        let s_wide = spread(&wide, &mut rng);
        assert!(s_wide > s_tight + 0.5, "{s_wide} vs {s_tight}");
    }

    #[test]
    fn samples_never_below_one() {
        let m = NetworkModel::new(2.0, 5.0);
        let mut rng = Pcg32::seed_from_u64(4);
        assert!((0..50_000).all(|_| m.sample(&mut rng) >= 1));
    }
}
