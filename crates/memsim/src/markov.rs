//! A time-correlated congestion model.
//!
//! The paper motivates latency uncertainty with "congestion in a
//! multipath interconnect" whose load *changes over time* (§1, §2: "the
//! worst scheduling situation exists when the actual latencies change
//! over time, for example, as congestion in the interconnect varies").
//! The `N(μ,σ)` model draws latencies i.i.d., which cannot express
//! bursts. This extension models congestion as a two-state Markov chain:
//! each load's latency is drawn from a *calm* or a *congested*
//! distribution, and the state persists between consecutive loads with
//! the configured probability — producing the bursty behaviour the
//! paper describes.
//!
//! Like [`LineCache`](crate::LineCache), the state is per-run and reset
//! by [`LatencyModel::begin_run`].

use std::cell::Cell;

use bsched_stats::Pcg32;

use crate::normal::DiscretizedNormal;
use crate::LatencyModel;

/// A two-state Markov-modulated network: calm ↔ congested.
#[derive(Debug)]
pub struct MarkovNetworkModel {
    calm: DiscretizedNormal,
    congested: DiscretizedNormal,
    /// Probability of staying in the current state at each load.
    persistence: f64,
    /// Long-run fraction of time spent congested (stationary probability
    /// of the symmetric chain = 1/2 unless biased; we keep it symmetric).
    in_congested: Cell<bool>,
}

impl MarkovNetworkModel {
    /// Creates a model alternating between `N(calm_mean, σ)` and
    /// `N(congested_mean, σ)` with the given state persistence.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ persistence ≤ 1`, means are positive and the
    /// congested mean is at least the calm mean.
    #[must_use]
    pub fn new(calm_mean: f64, congested_mean: f64, std_dev: f64, persistence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&persistence),
            "persistence must be a probability"
        );
        assert!(
            congested_mean >= calm_mean,
            "congested mean must be at least the calm mean"
        );
        Self {
            calm: DiscretizedNormal::new(calm_mean, std_dev),
            congested: DiscretizedNormal::new(congested_mean, std_dev),
            persistence,
            in_congested: Cell::new(false),
        }
    }

    /// A bursty configuration comparable to `N(2,2)`/`N(5,2)` in its two
    /// phases: calm mean 2, congested mean 5, σ = 2, 95% persistence.
    #[must_use]
    pub fn bursty() -> Self {
        Self::new(2.0, 5.0, 2.0, 0.95)
    }

    /// `true` while the chain is in the congested state.
    #[must_use]
    pub fn is_congested(&self) -> bool {
        self.in_congested.get()
    }
}

impl LatencyModel for MarkovNetworkModel {
    fn name(&self) -> String {
        format!(
            "M({},{},{};p={})",
            self.calm.mean(),
            self.congested.mean(),
            self.calm.std_dev(),
            self.persistence
        )
    }

    fn sample(&self, rng: &mut Pcg32) -> u64 {
        // State transition first, then draw from the current phase.
        if !rng.bernoulli(self.persistence) {
            self.in_congested.set(!self.in_congested.get());
        }
        if self.in_congested.get() {
            self.congested.sample(rng)
        } else {
            self.calm.sample(rng)
        }
    }

    fn begin_run(&self) {
        self.in_congested.set(false);
    }

    fn optimistic_latency(&self) -> f64 {
        self.calm.mean()
    }

    /// Stationary expectation: the symmetric chain spends half its time
    /// in each phase.
    fn effective_latency(&self) -> f64 {
        (self.calm.discrete_mean() + self.congested.discrete_mean()) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_and_latencies() {
        let m = MarkovNetworkModel::bursty();
        assert_eq!(m.name(), "M(2,5,2;p=0.95)");
        assert_eq!(m.optimistic_latency(), 2.0);
        let eff = m.effective_latency();
        assert!(eff > 2.0 && eff < 6.0, "{eff}");
    }

    #[test]
    fn begins_calm_and_resets() {
        let m = MarkovNetworkModel::bursty();
        assert!(!m.is_congested());
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..200 {
            let _ = m.sample(&mut rng);
        }
        m.begin_run();
        assert!(!m.is_congested());
    }

    #[test]
    fn samples_are_bursty_not_iid() {
        // With 95% persistence, consecutive samples share their phase far
        // more often than an i.i.d. mixture would: measure the lag-1
        // agreement of "high" (≥ 4) indicators.
        let m = MarkovNetworkModel::new(2.0, 12.0, 1.0, 0.95);
        let mut rng = Pcg32::seed_from_u64(7);
        let samples: Vec<bool> = (0..20_000).map(|_| m.sample(&mut rng) >= 7).collect();
        let agree =
            samples.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (samples.len() - 1) as f64;
        assert!(
            agree > 0.85,
            "lag-1 agreement {agree} should reflect persistence"
        );
        // And both phases actually occur.
        let high = samples.iter().filter(|&&h| h).count();
        assert!(high > 1000 && high < 19_000, "both phases visited: {high}");
    }

    #[test]
    fn persistence_one_never_leaves_calm() {
        let m = MarkovNetworkModel::new(2.0, 30.0, 0.0, 1.0);
        let mut rng = Pcg32::seed_from_u64(3);
        assert!((0..100).all(|_| m.sample(&mut rng) == 2));
    }

    #[test]
    fn long_run_mean_matches_effective() {
        let m = MarkovNetworkModel::bursty();
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 200_000;
        let mean = (0..n).map(|_| m.sample(&mut rng) as f64).sum::<f64>() / f64::from(n);
        assert!(
            (mean - m.effective_latency()).abs() < 0.1,
            "{mean} vs {}",
            m.effective_latency()
        );
    }

    #[test]
    #[should_panic(expected = "congested mean must be at least")]
    fn inverted_means_panic() {
        let _ = MarkovNetworkModel::new(5.0, 2.0, 1.0, 0.9);
    }
}
