//! The mixed cache-plus-network model `Lhr-N(μ,σ)`.

use bsched_stats::Pcg32;

use crate::normal::DiscretizedNormal;
use crate::LatencyModel;

/// A data cache backed by a Tera-style interconnection network (§4.5,
/// third system model — "representative of Alewife-like systems, where a
/// commodity processor might be incorporated into a shared memory
/// machine").
///
/// A hit (probability `hit_rate`) costs `hit_latency` cycles; a miss
/// samples the network distribution. The paper's configuration
/// `L80-N(30,5)` has a mean latency of 7.6 cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedModel {
    hit_rate: f64,
    hit_latency: u64,
    miss: DiscretizedNormal,
}

impl MixedModel {
    /// Creates `Lhr-N(mean,std_dev)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ hit_rate ≤ 1`, `hit_latency ≥ 1`, and the
    /// network parameters are valid.
    #[must_use]
    pub fn new(hit_rate: f64, hit_latency: u64, mean: f64, std_dev: f64) -> Self {
        assert!((0.0..=1.0).contains(&hit_rate), "hit rate must be in [0,1]");
        assert!(hit_latency >= 1, "hit latency must be at least 1");
        Self {
            hit_rate,
            hit_latency,
            miss: DiscretizedNormal::new(mean, std_dev),
        }
    }

    /// The paper's configuration `L80-N(30,5)`.
    #[must_use]
    pub fn l80_n30_5() -> Self {
        Self::new(0.80, 2, 30.0, 5.0)
    }

    /// The hit probability.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.hit_rate
    }
}

impl LatencyModel for MixedModel {
    fn name(&self) -> String {
        format!(
            "L{}-N({},{})",
            (self.hit_rate * 100.0).round() as u64,
            self.miss.mean(),
            self.miss.std_dev()
        )
    }

    fn sample(&self, rng: &mut Pcg32) -> u64 {
        if rng.bernoulli(self.hit_rate) {
            self.hit_latency
        } else {
            self.miss.sample(rng)
        }
    }

    fn optimistic_latency(&self) -> f64 {
        self.hit_latency as f64
    }

    fn effective_latency(&self) -> f64 {
        self.hit_rate * self.hit_latency as f64 + (1.0 - self.hit_rate) * self.miss.discrete_mean()
    }

    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches_paper() {
        assert_eq!(MixedModel::l80_n30_5().name(), "L80-N(30,5)");
    }

    #[test]
    fn paper_mean_is_7_6() {
        // §4.5: "This configuration is referred to as L80-N(30,5) and has
        // a mean latency of 7.6."
        let eff = MixedModel::l80_n30_5().effective_latency();
        assert!((eff - 7.6).abs() < 0.02, "effective {eff}");
    }

    #[test]
    fn optimistic_is_hit_time() {
        assert_eq!(MixedModel::l80_n30_5().optimistic_latency(), 2.0);
    }

    #[test]
    fn sample_mix() {
        let m = MixedModel::l80_n30_5();
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 50_000;
        let mut hits = 0u32;
        let mut miss_sum = 0.0;
        let mut misses = 0u32;
        for _ in 0..n {
            let lat = m.sample(&mut rng);
            if lat == 2 {
                hits += 1;
            } else {
                misses += 1;
                miss_sum += lat as f64;
            }
        }
        let hit_rate = f64::from(hits) / f64::from(n);
        // A miss can also draw latency 2 from N(30,5) with vanishing
        // probability, so the empirical rate is ≈ 0.8.
        assert!((hit_rate - 0.8).abs() < 0.01, "hit rate {hit_rate}");
        let miss_mean = miss_sum / f64::from(misses);
        assert!((miss_mean - 30.0).abs() < 0.2, "miss mean {miss_mean}");
    }
}
