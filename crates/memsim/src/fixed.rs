//! Deterministic latency.

use bsched_stats::Pcg32;

use crate::LatencyModel;

/// A fixed, certain load latency.
///
/// Used by the Figure 3 reproduction (interlocks as a function of actual
/// latency 1–6) and wherever tests need deterministic memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedLatency(u64);

impl FixedLatency {
    /// A model that always returns `cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    #[must_use]
    pub fn new(cycles: u64) -> Self {
        assert!(cycles >= 1, "latency must be at least 1");
        Self(cycles)
    }

    /// The constant latency.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.0
    }
}

impl LatencyModel for FixedLatency {
    fn name(&self) -> String {
        format!("Fixed({})", self.0)
    }

    fn sample(&self, _rng: &mut Pcg32) -> u64 {
        self.0
    }

    fn optimistic_latency(&self) -> f64 {
        self.0 as f64
    }

    fn effective_latency(&self) -> f64 {
        self.0 as f64
    }

    fn min_latency(&self) -> u64 {
        self.0
    }

    fn max_latency(&self) -> Option<u64> {
        Some(self.0)
    }

    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples() {
        let m = FixedLatency::new(4);
        let mut rng = Pcg32::seed_from_u64(0);
        assert!((0..100).all(|_| m.sample(&mut rng) == 4));
        assert_eq!(m.name(), "Fixed(4)");
        assert_eq!(m.optimistic_latency(), 4.0);
        assert_eq!(m.effective_latency(), 4.0);
        assert_eq!(m.cycles(), 4);
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_panics() {
        let _ = FixedLatency::new(0);
    }
}
