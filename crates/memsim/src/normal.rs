//! Discretised, floor-clamped normal distributions.
//!
//! The network models (§4.5) draw latencies from "zero-based probability
//! mass functions, depicting normal distributions". We realise that as:
//! draw a continuous normal `N(μ,σ)`, round to the nearest integer, and
//! clamp below at 1 cycle (a load cannot complete before the cycle it
//! issues). The corresponding pmf and its exact mean are computed through
//! the normal CDF so experiments can report effective latencies without
//! Monte Carlo.

use bsched_stats::Pcg32;

/// Error function via the Abramowitz & Stegun 7.1.26 approximation
/// (|error| ≤ 1.5·10⁻⁷ — far below the experiment noise floor).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// A normal distribution discretised to integer cycles ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscretizedNormal {
    mean: f64,
    std_dev: f64,
}

impl DiscretizedNormal {
    /// Creates `N(mean, std_dev)`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `std_dev >= 0`.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(std_dev >= 0.0, "standard deviation must be nonnegative");
        Self { mean, std_dev }
    }

    /// The continuous mean μ.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The continuous standard deviation σ.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one discretised sample: `max(1, round(N(μ,σ)))`.
    #[must_use]
    pub fn sample(&self, rng: &mut Pcg32) -> u64 {
        let x = self.mean + self.std_dev * rng.next_standard_normal();
        let rounded = x.round();
        if rounded < 1.0 {
            1
        } else {
            rounded as u64
        }
    }

    /// Probability that a sample equals `k` (for `k ≥ 1`).
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        if self.std_dev == 0.0 {
            let point = (self.mean.round().max(1.0)) as u64;
            return if k == point { 1.0 } else { 0.0 };
        }
        let z = |x: f64| (x - self.mean) / self.std_dev;
        match k {
            0 => 0.0,
            1 => normal_cdf(z(1.5)),
            _ => normal_cdf(z(k as f64 + 0.5)) - normal_cdf(z(k as f64 - 0.5)),
        }
    }

    /// Exact mean of the discretised distribution.
    ///
    /// Because of clamping at 1 and rounding, this differs slightly from
    /// μ for distributions with substantial mass below 1 (e.g. `N(2,5)`).
    #[must_use]
    pub fn discrete_mean(&self) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean.round().max(1.0);
        }
        // Sum until the upper tail is negligible.
        let hi = (self.mean + 10.0 * self.std_dev).ceil() as u64 + 2;
        (1..=hi).map(|k| k as f64 * self.pmf(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1.5e-7, "approximation error bound");
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for x in [0.3, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for (mu, sd) in [(2.0, 2.0), (3.0, 5.0), (30.0, 5.0), (5.0, 2.0)] {
            let d = DiscretizedNormal::new(mu, sd);
            let total: f64 = (1..=((mu + 12.0 * sd) as u64)).map(|k| d.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-6, "N({mu},{sd}) sums to {total}");
        }
    }

    #[test]
    fn samples_match_pmf_mean() {
        let d = DiscretizedNormal::new(5.0, 2.0);
        let mut rng = Pcg32::seed_from_u64(7);
        let n = 200_000;
        let empirical: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / f64::from(n);
        assert!(
            (empirical - d.discrete_mean()).abs() < 0.02,
            "{empirical} vs {}",
            d.discrete_mean()
        );
    }

    #[test]
    fn samples_are_at_least_one() {
        // N(2,5) has huge mass below 1; clamping must hold.
        let d = DiscretizedNormal::new(2.0, 5.0);
        let mut rng = Pcg32::seed_from_u64(3);
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 1));
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let d = DiscretizedNormal::new(4.0, 0.0);
        let mut rng = Pcg32::seed_from_u64(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 4));
        assert_eq!(d.pmf(4), 1.0);
        assert_eq!(d.pmf(5), 0.0);
        assert_eq!(d.discrete_mean(), 4.0);
    }

    #[test]
    fn clamping_raises_small_means() {
        // For N(2,5) the discretised mean exceeds 2 because negative draws
        // clamp to 1.
        let d = DiscretizedNormal::new(2.0, 5.0);
        assert!(d.discrete_mean() > 2.0);
        // For a tight distribution the discretised mean is close to μ.
        let tight = DiscretizedNormal::new(30.0, 5.0);
        assert!((tight.discrete_mean() - 30.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn nonpositive_mean_panics() {
        let _ = DiscretizedNormal::new(0.0, 1.0);
    }
}
