//! A closed enumeration over the paper's memory systems.

use bsched_stats::Pcg32;

use crate::{CacheModel, FixedLatency, LatencyModel, MixedModel, NetworkModel};

/// Any of the paper's memory-system models, as one cloneable value type.
///
/// The experiment harness iterates over heterogeneous system
/// configurations; this enum avoids boxing while still implementing
/// [`LatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemorySystem {
    /// Deterministic latency.
    Fixed(FixedLatency),
    /// Lockup-free cache `Lhr(hl,ml)`.
    Cache(CacheModel),
    /// Interconnection network `N(μ,σ)`.
    Network(NetworkModel),
    /// Cache + network `Lhr-N(μ,σ)`.
    Mixed(MixedModel),
}

impl MemorySystem {
    /// The 12 stochastic system configurations of Table 2, in table order:
    /// four caches, seven networks, one mixed.
    #[must_use]
    pub fn paper_systems() -> Vec<MemorySystem> {
        let mut v = vec![
            MemorySystem::Cache(CacheModel::l80_5()),
            MemorySystem::Cache(CacheModel::l80_10()),
            MemorySystem::Cache(CacheModel::l95_5()),
            MemorySystem::Cache(CacheModel::l95_10()),
        ];
        v.extend(
            NetworkModel::paper_configs()
                .into_iter()
                .map(MemorySystem::Network),
        );
        v.push(MemorySystem::Mixed(MixedModel::l80_n30_5()));
        v
    }
}

impl LatencyModel for MemorySystem {
    fn name(&self) -> String {
        match self {
            MemorySystem::Fixed(m) => m.name(),
            MemorySystem::Cache(m) => m.name(),
            MemorySystem::Network(m) => m.name(),
            MemorySystem::Mixed(m) => m.name(),
        }
    }

    fn sample(&self, rng: &mut Pcg32) -> u64 {
        match self {
            MemorySystem::Fixed(m) => m.sample(rng),
            MemorySystem::Cache(m) => m.sample(rng),
            MemorySystem::Network(m) => m.sample(rng),
            MemorySystem::Mixed(m) => m.sample(rng),
        }
    }

    fn optimistic_latency(&self) -> f64 {
        match self {
            MemorySystem::Fixed(m) => m.optimistic_latency(),
            MemorySystem::Cache(m) => m.optimistic_latency(),
            MemorySystem::Network(m) => m.optimistic_latency(),
            MemorySystem::Mixed(m) => m.optimistic_latency(),
        }
    }

    fn effective_latency(&self) -> f64 {
        match self {
            MemorySystem::Fixed(m) => m.effective_latency(),
            MemorySystem::Cache(m) => m.effective_latency(),
            MemorySystem::Network(m) => m.effective_latency(),
            MemorySystem::Mixed(m) => m.effective_latency(),
        }
    }

    fn min_latency(&self) -> u64 {
        // Explicit delegation: the trait default (1) would erase the
        // tighter bounds the fixed and cache variants declare.
        match self {
            MemorySystem::Fixed(m) => m.min_latency(),
            MemorySystem::Cache(m) => m.min_latency(),
            MemorySystem::Network(m) => m.min_latency(),
            MemorySystem::Mixed(m) => m.min_latency(),
        }
    }

    fn max_latency(&self) -> Option<u64> {
        match self {
            MemorySystem::Fixed(m) => m.max_latency(),
            MemorySystem::Cache(m) => m.max_latency(),
            MemorySystem::Network(m) => m.max_latency(),
            MemorySystem::Mixed(m) => m.max_latency(),
        }
    }

    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        // Every variant is a plain-data model; the enum itself is Sync.
        Some(self)
    }
}

impl From<FixedLatency> for MemorySystem {
    fn from(m: FixedLatency) -> Self {
        MemorySystem::Fixed(m)
    }
}

impl From<CacheModel> for MemorySystem {
    fn from(m: CacheModel) -> Self {
        MemorySystem::Cache(m)
    }
}

impl From<NetworkModel> for MemorySystem {
    fn from(m: NetworkModel) -> Self {
        MemorySystem::Network(m)
    }
}

impl From<MixedModel> for MemorySystem {
    fn from(m: MixedModel) -> Self {
        MemorySystem::Mixed(m)
    }
}

/// Error parsing a [`MemorySystem`] from its paper-style name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSystemError {
    input: String,
}

impl std::fmt::Display for ParseSystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid memory system {:?} (expected e.g. L80(2,5), N(3,5), L80-N(30,5), fixed(4))",
            self.input
        )
    }
}

impl std::error::Error for ParseSystemError {}

/// Splits `"f(a,b)"`-shaped text into `(f, [a, b])`.
fn split_call(s: &str) -> Option<(&str, Vec<&str>)> {
    let open = s.find('(')?;
    let close = s.strip_suffix(')')?;
    let name = &s[..open];
    let args = close.get(open + 1..)?;
    Some((name, args.split(',').map(str::trim).collect()))
}

impl std::str::FromStr for MemorySystem {
    type Err = ParseSystemError;

    /// Parses the paper's configuration names, case-insensitively on the
    /// letters: `L<hr>(<hit>,<miss>)`, `N(<mean>,<sigma>)`,
    /// `L<hr>-N(<mean>,<sigma>)`, and `fixed(<cycles>)`.
    fn from_str(s: &str) -> Result<MemorySystem, ParseSystemError> {
        let err = || ParseSystemError {
            input: s.to_owned(),
        };
        let s = s.trim();
        let (name, args) = split_call(s).ok_or_else(err)?;
        let name = name.trim();
        let floats: Option<Vec<f64>> = args.iter().map(|a| a.parse().ok()).collect();
        let floats = floats.ok_or_else(err)?;

        if name.eq_ignore_ascii_case("fixed") && floats.len() == 1 && floats[0] >= 1.0 {
            return Ok(FixedLatency::new(floats[0] as u64).into());
        }
        if name.eq_ignore_ascii_case("n") && floats.len() == 2 {
            if floats[0] <= 0.0 || floats[1] < 0.0 {
                return Err(err());
            }
            return Ok(NetworkModel::new(floats[0], floats[1]).into());
        }
        // "L80" or "L80-N".
        if let Some(rest) = name.strip_prefix(['L', 'l']) {
            if let Some(hr_text) = rest.strip_suffix("-N").or_else(|| rest.strip_suffix("-n")) {
                let hr: f64 = hr_text.parse().map_err(|_| err())?;
                if !(0.0..=100.0).contains(&hr) || floats.len() != 2 || floats[0] <= 0.0 {
                    return Err(err());
                }
                return Ok(MixedModel::new(hr / 100.0, 2, floats[0], floats[1]).into());
            }
            let hr: f64 = rest.parse().map_err(|_| err())?;
            if !(0.0..=100.0).contains(&hr) || floats.len() != 2 {
                return Err(err());
            }
            let (hit, miss) = (floats[0], floats[1]);
            if hit < 1.0 || miss < hit {
                return Err(err());
            }
            return Ok(CacheModel::new(hr / 100.0, hit as u64, miss as u64).into());
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_systems_match_table2_rows() {
        let systems = MemorySystem::paper_systems();
        let names: Vec<String> = systems.iter().map(LatencyModel::name).collect();
        assert_eq!(
            names,
            vec![
                "L80(2,5)",
                "L80(2,10)",
                "L95(2,5)",
                "L95(2,10)",
                "N(2,2)",
                "N(3,2)",
                "N(5,2)",
                "N(2,5)",
                "N(3,5)",
                "N(5,5)",
                "N(30,5)",
                "L80-N(30,5)",
            ]
        );
    }

    #[test]
    fn delegation_is_consistent() {
        let sys: MemorySystem = CacheModel::l80_5().into();
        assert_eq!(sys.name(), "L80(2,5)");
        assert_eq!(sys.optimistic_latency(), 2.0);
        assert!((sys.effective_latency() - 2.6).abs() < 1e-12);
        let mut rng = Pcg32::seed_from_u64(1);
        let v = sys.sample(&mut rng);
        assert!(v == 2 || v == 5);
    }

    #[test]
    fn from_impls() {
        let _: MemorySystem = FixedLatency::new(3).into();
        let _: MemorySystem = NetworkModel::new(2.0, 2.0).into();
        let _: MemorySystem = MixedModel::l80_n30_5().into();
    }

    #[test]
    fn parse_every_paper_system_roundtrip() {
        for system in MemorySystem::paper_systems() {
            let parsed: MemorySystem = system.name().parse().unwrap();
            assert_eq!(parsed, system, "{}", system.name());
        }
    }

    #[test]
    fn parse_fixed_and_case_insensitive() {
        let f: MemorySystem = "fixed(4)".parse().unwrap();
        assert_eq!(f, FixedLatency::new(4).into());
        let n: MemorySystem = "n(3,5)".parse().unwrap();
        assert_eq!(n, NetworkModel::new(3.0, 5.0).into());
        let c: MemorySystem = "l95(2,10)".parse().unwrap();
        assert_eq!(c, CacheModel::l95_10().into());
    }

    #[test]
    fn samples_stay_inside_declared_support() {
        let mut systems = MemorySystem::paper_systems();
        systems.push(FixedLatency::new(4).into());
        let mut rng = Pcg32::seed_from_u64(9);
        for system in systems {
            let lo = system.min_latency().max(1);
            let hi = system.max_latency();
            assert!(lo >= 1, "{}", system.name());
            for _ in 0..2000 {
                let v = system.sample(&mut rng);
                assert!(v >= lo, "{}: {v} < {lo}", system.name());
                if let Some(hi) = hi {
                    assert!(v <= hi, "{}: {v} > {hi}", system.name());
                }
            }
        }
    }

    #[test]
    fn declared_bounds_match_the_models() {
        let fixed: MemorySystem = FixedLatency::new(4).into();
        assert_eq!((fixed.min_latency(), fixed.max_latency()), (4, Some(4)));
        let cache: MemorySystem = CacheModel::l80_10().into();
        assert_eq!((cache.min_latency(), cache.max_latency()), (2, Some(10)));
        // Degenerate hit rates collapse the support to one point.
        let always = MemorySystem::Cache(CacheModel::new(1.0, 2, 5));
        assert_eq!((always.min_latency(), always.max_latency()), (2, Some(2)));
        let never = MemorySystem::Cache(CacheModel::new(0.0, 2, 5));
        assert_eq!((never.min_latency(), never.max_latency()), (5, Some(5)));
        // Normal-tail models are unbounded above, floored at 1 below.
        let net: MemorySystem = NetworkModel::new(3.0, 5.0).into();
        assert_eq!((net.min_latency(), net.max_latency()), (1, None));
        let mixed: MemorySystem = MixedModel::l80_n30_5().into();
        assert_eq!((mixed.min_latency(), mixed.max_latency()), (1, None));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "L80",
            "L80()",
            "L80(2)",
            "L80(5,2)", // miss < hit
            "N(0,5)",
            "N(2,-1)",
            "fixed(0)",
            "Q(1,2)",
            "L200(2,5)",
            "L80(2,5",
            "N(a,b)",
        ] {
            assert!(bad.parse::<MemorySystem>().is_err(), "{bad:?} should fail");
        }
    }
}
