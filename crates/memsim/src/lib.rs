//! Memory-system latency models (paper §4.5).
//!
//! The paper evaluates scheduling under three stochastic memory systems,
//! all reproduced here behind the [`LatencyModel`] trait:
//!
//! * [`CacheModel`] — `Lhr(hl,ml)`: a lockup-free data cache that hits
//!   with probability `hr` (latency `hl`) and misses otherwise (latency
//!   `ml`). Paper configurations: `L80(2,5)`, `L80(2,10)`, `L95(2,5)`,
//!   `L95(2,10)`, modelling 4K and 32K first-level caches.
//! * [`NetworkModel`] — `N(μ,σ)`: a multipath interconnect with no cache;
//!   latency follows a zero-based discretised normal distribution.
//!   Paper configurations: `N(2,2)`, `N(3,2)`, `N(5,2)`, `N(2,5)`,
//!   `N(3,5)`, `N(5,5)` and the deliberately unbalanced `N(30,5)`.
//! * [`MixedModel`] — `L80-N(30,5)`: a cache in front of a Tera-style
//!   network (Alewife-like); hits cost 2 cycles, misses sample `N(30,5)`.
//! * [`FixedLatency`] — deterministic latency, used for the Figure 3
//!   interlock study and for testing.
//!
//! Each model also reports the latencies a *traditional* scheduler would
//! assume for it: the optimistic latency (cache-hit time or network mean)
//! and the effective (expected) access time — the two "Optimistic
//! Latency" rows per system in Table 2.
//!
//! # Example
//!
//! ```
//! use bsched_memsim::{CacheModel, LatencyModel};
//! use bsched_stats::Pcg32;
//!
//! let l80 = CacheModel::new(0.80, 2, 5);
//! assert_eq!(l80.name(), "L80(2,5)");
//! assert!((l80.effective_latency() - 2.6).abs() < 1e-12);
//! let mut rng = Pcg32::seed_from_u64(1);
//! let lat = l80.sample(&mut rng);
//! assert!(lat == 2 || lat == 5);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fixed;
pub mod linecache;
pub mod markov;
pub mod mixed;
pub mod network;
pub mod normal;
pub mod system;

pub use cache::CacheModel;
pub use fixed::FixedLatency;
pub use linecache::LineCache;
pub use markov::MarkovNetworkModel;
pub use mixed::MixedModel;
pub use network::NetworkModel;
pub use system::{MemorySystem, ParseSystemError};

use bsched_stats::Pcg32;

/// A stochastic model of load-instruction latency.
///
/// Implementations must be deterministic given the RNG state: the
/// experiment harness replays seeds to make every table reproducible.
///
/// The paper's models (§4.5) are address-blind — every load draws from
/// the same distribution — so the core method is [`sample`](Self::sample).
/// Address-aware models (the [`LineCache`] extension) override
/// [`sample_at`](Self::sample_at) and [`begin_run`](Self::begin_run)
/// to track cache state per simulated address.
pub trait LatencyModel {
    /// The paper's name for the configuration (e.g. `L80(2,10)`).
    fn name(&self) -> String;

    /// Draws one load latency in cycles. Always at least 1.
    fn sample(&self, rng: &mut Pcg32) -> u64;

    /// Draws a latency for a load of `addr` (`None` when the address is
    /// not statically known). Address-blind models ignore the address.
    fn sample_at(&self, addr: Option<u64>, rng: &mut Pcg32) -> u64 {
        let _ = addr;
        self.sample(rng)
    }

    /// Resets any per-run state (cache tags). Called by the simulator at
    /// the start of each independent run; stateless models ignore it.
    fn begin_run(&self) {}

    /// The most optimistic single latency a traditional scheduler would
    /// assume: cache-hit time for cache systems, the mean for networks.
    fn optimistic_latency(&self) -> f64;

    /// The expected access time (the second "Optimistic Latency" row the
    /// paper evaluates traditional scheduling at, e.g. 2.6 for L80(2,5)).
    fn effective_latency(&self) -> f64;

    /// The smallest latency [`sample`](Self::sample) can return.
    ///
    /// Validators use this as the support's lower bound: every sampled
    /// latency must be at least `min_latency().max(1)`. The default of 1
    /// (the simulator's floor) is correct for any model; bounded models
    /// override it with their true minimum (e.g. the cache-hit time).
    fn min_latency(&self) -> u64 {
        1
    }

    /// The largest latency [`sample`](Self::sample) can return, or
    /// `None` when the support is unbounded above (normal-tail models).
    ///
    /// Bounded models (fixed, two-point caches) override this so
    /// validators can reject impossible draws.
    fn max_latency(&self) -> Option<u64> {
        None
    }

    /// Returns `self` as a thread-safe model when the implementation has
    /// no interior mutability, enabling parallel evaluation.
    ///
    /// The default is `None`, which keeps stateful models correct: the
    /// harness falls back to serial evaluation for anything that does
    /// not opt in. Stateless models override this with `Some(self)`.
    /// [`LineCache`] (`RefCell` tag store) and [`MarkovNetworkModel`]
    /// (`Cell` congestion state) must keep the default.
    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        None
    }
}
