//! An address-tracking set-associative cache.
//!
//! The paper's `Lhr(hl,ml)` model flips a Bernoulli coin per load. This
//! extension models the cache the coin abstracts: lines, sets, LRU ways,
//! and real addresses — so *spatial locality exists*: the second access
//! to a cache line is a guaranteed hit, which is precisely the
//! known-latency situation §6 proposes exempting from balanced
//! scheduling ("disabling balanced scheduling when the latency is known
//! (e.g., for the second access to a cache line)").
//!
//! State lives behind a `RefCell` and is cleared by
//! [`LatencyModel::begin_run`], keeping the experiment protocol's
//! independent-runs assumption intact.

use std::cell::RefCell;

use bsched_stats::Pcg32;

use crate::LatencyModel;

/// A set-associative, LRU, line-granular data cache with fixed hit and
/// miss latencies.
#[derive(Debug)]
pub struct LineCache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    hit_latency: u64,
    miss_latency: u64,
    /// `tags[set]` holds up to `ways` line tags, most recently used last.
    tags: RefCell<Vec<Vec<u64>>>,
}

impl LineCache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two ≥ 8, `sets` and
    /// `ways` are ≥ 1, and `miss_latency ≥ hit_latency ≥ 1`.
    #[must_use]
    pub fn new(
        line_bytes: u64,
        sets: usize,
        ways: usize,
        hit_latency: u64,
        miss_latency: u64,
    ) -> Self {
        assert!(
            line_bytes >= 8 && line_bytes.is_power_of_two(),
            "line size must be a power of two ≥ 8"
        );
        assert!(
            sets >= 1 && ways >= 1,
            "cache must have at least one set and way"
        );
        assert!(hit_latency >= 1, "hit latency must be at least 1");
        assert!(
            miss_latency >= hit_latency,
            "miss must not be faster than hit"
        );
        Self {
            line_bytes,
            sets,
            ways,
            hit_latency,
            miss_latency,
            tags: RefCell::new(vec![Vec::new(); sets]),
        }
    }

    /// A small 4K direct-ish cache: 32-byte lines, 64 sets, 2 ways,
    /// latencies 2/10 — the shape behind the paper's `L80(2,10)`
    /// abstraction for small first-level caches.
    #[must_use]
    pub fn small_l1() -> Self {
        Self::new(32, 64, 2, 2, 10)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.line_bytes * self.sets as u64 * self.ways as u64
    }

    /// Bytes per line.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Looks up `addr`, updating LRU state; returns `true` on a hit.
    pub fn access(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let mut tags = self.tags.borrow_mut();
        let ways = &mut tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Refresh LRU: move to the back (most recent).
            let t = ways.remove(pos);
            ways.push(t);
            true
        } else {
            if ways.len() == self.ways {
                ways.remove(0);
            }
            ways.push(tag);
            false
        }
    }
}

impl LatencyModel for LineCache {
    fn name(&self) -> String {
        format!(
            "Cache{}B/{}x{}w({},{})",
            self.capacity(),
            self.sets,
            self.ways,
            self.hit_latency,
            self.miss_latency
        )
    }

    /// Address-blind fallback: a random address, so repeated blind
    /// samples behave like a cold stream.
    fn sample(&self, rng: &mut Pcg32) -> u64 {
        let addr = rng.next_u64() >> 16;
        self.sample_at(Some(addr), rng)
    }

    fn sample_at(&self, addr: Option<u64>, rng: &mut Pcg32) -> u64 {
        let addr = addr.unwrap_or_else(|| rng.next_u64() >> 16);
        if self.access(addr) {
            self.hit_latency
        } else {
            self.miss_latency
        }
    }

    fn begin_run(&self) {
        for set in self.tags.borrow_mut().iter_mut() {
            set.clear();
        }
    }

    fn optimistic_latency(&self) -> f64 {
        self.hit_latency as f64
    }

    /// Expected latency is workload-dependent for a real cache; report
    /// the midpoint as a neutral summary (used only for display).
    fn effective_latency(&self) -> f64 {
        (self.hit_latency + self.miss_latency) as f64 / 2.0
    }

    fn min_latency(&self) -> u64 {
        self.hit_latency
    }

    fn max_latency(&self) -> Option<u64> {
        Some(self.miss_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_to_line_hits() {
        let cache = LineCache::new(32, 4, 1, 2, 10);
        let mut rng = Pcg32::seed_from_u64(0);
        assert_eq!(cache.sample_at(Some(0), &mut rng), 10, "cold miss");
        assert_eq!(cache.sample_at(Some(8), &mut rng), 2, "same line");
        assert_eq!(cache.sample_at(Some(31), &mut rng), 2, "still same line");
        assert_eq!(cache.sample_at(Some(32), &mut rng), 10, "next line misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways, lines of 32: lines 0, 4, 8 all map to set 0
        // (4 sets? no — 1 set).
        let cache = LineCache::new(32, 1, 2, 2, 10);
        assert!(!cache.access(0)); // line 0 miss
        assert!(!cache.access(32)); // line 1 miss
        assert!(cache.access(0)); // hit, refresh 0
        assert!(!cache.access(64)); // line 2 miss, evicts line 1 (LRU)
        assert!(cache.access(0), "line 0 kept by LRU refresh");
        assert!(!cache.access(32), "line 1 was evicted");
    }

    #[test]
    fn sets_isolate_conflicts() {
        let cache = LineCache::new(32, 2, 1, 2, 10);
        // Lines 0 and 1 map to different sets.
        assert!(!cache.access(0));
        assert!(!cache.access(32));
        assert!(cache.access(0));
        assert!(cache.access(32));
    }

    #[test]
    fn begin_run_clears_state() {
        let cache = LineCache::new(32, 4, 1, 2, 10);
        let mut rng = Pcg32::seed_from_u64(0);
        assert_eq!(cache.sample_at(Some(0), &mut rng), 10);
        assert_eq!(cache.sample_at(Some(0), &mut rng), 2);
        cache.begin_run();
        assert_eq!(
            cache.sample_at(Some(0), &mut rng),
            10,
            "cold again after reset"
        );
    }

    #[test]
    fn unknown_addresses_mostly_miss_a_small_cache() {
        let cache = LineCache::small_l1();
        let mut rng = Pcg32::seed_from_u64(3);
        let misses = (0..1000)
            .filter(|_| cache.sample_at(None, &mut rng) == 10)
            .count();
        assert!(
            misses > 950,
            "random addresses should almost always miss: {misses}"
        );
    }

    #[test]
    fn streaming_workload_hits_per_line() {
        // Sequential 8-byte loads over 32-byte lines: 1 miss + 3 hits per
        // line.
        let cache = LineCache::new(32, 64, 2, 2, 10);
        let mut rng = Pcg32::seed_from_u64(0);
        let mut hits = 0;
        for k in 0..400u64 {
            if cache.sample_at(Some(8 * k), &mut rng) == 2 {
                hits += 1;
            }
        }
        assert_eq!(hits, 300, "exactly 3 of every 4 accesses hit");
    }

    #[test]
    fn name_and_latencies() {
        let cache = LineCache::small_l1();
        assert_eq!(cache.capacity(), 4096);
        assert_eq!(cache.line_bytes(), 32);
        assert_eq!(cache.optimistic_latency(), 2.0);
        assert!(cache.name().contains("4096B"));
        assert_eq!(cache.min_latency(), 2);
        assert_eq!(cache.max_latency(), Some(10));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = LineCache::new(24, 4, 1, 2, 10);
    }
}
