//! The lockup-free cache model `Lhr(hl,ml)`.

use bsched_stats::Pcg32;

use crate::LatencyModel;

/// A data cache with Bernoulli hits: latency `hit_latency` with
/// probability `hit_rate`, else `miss_latency` (§4.5, first system model —
/// "a typical workstation-class RISC processor that implements
/// non-blocking load instructions, such as the Motorola 88000").
///
/// The paper simulates hit rates of 80% and 95% (4K and 32K first-level
/// caches per Hill's thesis) with miss penalties of 5 and 10 cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheModel {
    hit_rate: f64,
    hit_latency: u64,
    miss_latency: u64,
}

impl CacheModel {
    /// Creates `Lhr(hl,ml)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ hit_rate ≤ 1`, latencies are ≥ 1 and the miss
    /// latency is no smaller than the hit latency.
    #[must_use]
    pub fn new(hit_rate: f64, hit_latency: u64, miss_latency: u64) -> Self {
        assert!((0.0..=1.0).contains(&hit_rate), "hit rate must be in [0,1]");
        assert!(hit_latency >= 1, "hit latency must be at least 1");
        assert!(
            miss_latency >= hit_latency,
            "miss must not be faster than hit"
        );
        Self {
            hit_rate,
            hit_latency,
            miss_latency,
        }
    }

    /// Paper configuration `L80(2,5)`.
    #[must_use]
    pub fn l80_5() -> Self {
        Self::new(0.80, 2, 5)
    }

    /// Paper configuration `L80(2,10)`.
    #[must_use]
    pub fn l80_10() -> Self {
        Self::new(0.80, 2, 10)
    }

    /// Paper configuration `L95(2,5)`.
    #[must_use]
    pub fn l95_5() -> Self {
        Self::new(0.95, 2, 5)
    }

    /// Paper configuration `L95(2,10)`.
    #[must_use]
    pub fn l95_10() -> Self {
        Self::new(0.95, 2, 10)
    }

    /// The hit probability.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.hit_rate
    }

    /// Cycles on a hit.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// Cycles on a miss.
    #[must_use]
    pub fn miss_latency(&self) -> u64 {
        self.miss_latency
    }
}

impl LatencyModel for CacheModel {
    fn name(&self) -> String {
        format!(
            "L{}({},{})",
            (self.hit_rate * 100.0).round() as u64,
            self.hit_latency,
            self.miss_latency
        )
    }

    fn sample(&self, rng: &mut Pcg32) -> u64 {
        if rng.bernoulli(self.hit_rate) {
            self.hit_latency
        } else {
            self.miss_latency
        }
    }

    fn optimistic_latency(&self) -> f64 {
        self.hit_latency as f64
    }

    fn effective_latency(&self) -> f64 {
        self.hit_rate * self.hit_latency as f64 + (1.0 - self.hit_rate) * self.miss_latency as f64
    }

    fn min_latency(&self) -> u64 {
        // Degenerate rates shrink the support to a single point.
        if self.hit_rate == 0.0 {
            self.miss_latency
        } else {
            self.hit_latency
        }
    }

    fn max_latency(&self) -> Option<u64> {
        Some(if self.hit_rate == 1.0 {
            self.hit_latency
        } else {
            self.miss_latency
        })
    }

    fn as_sync(&self) -> Option<&(dyn LatencyModel + Sync)> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_effective_latencies() {
        // These are exactly the second "Optimistic Latency" values of
        // Table 2: 2.6, 3.6, 2.15, 2.4.
        assert!((CacheModel::l80_5().effective_latency() - 2.6).abs() < 1e-12);
        assert!((CacheModel::l80_10().effective_latency() - 3.6).abs() < 1e-12);
        assert!((CacheModel::l95_5().effective_latency() - 2.15).abs() < 1e-12);
        assert!((CacheModel::l95_10().effective_latency() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(CacheModel::l80_5().name(), "L80(2,5)");
        assert_eq!(CacheModel::l95_10().name(), "L95(2,10)");
    }

    #[test]
    fn samples_are_hit_or_miss() {
        let m = CacheModel::l80_5();
        let mut rng = Pcg32::seed_from_u64(2);
        let mut hits = 0u32;
        let n = 100_000;
        for _ in 0..n {
            match m.sample(&mut rng) {
                2 => hits += 1,
                5 => {}
                other => panic!("unexpected latency {other}"),
            }
        }
        let rate = f64::from(hits) / f64::from(n);
        assert!((rate - 0.8).abs() < 0.01, "hit rate {rate}");
    }

    #[test]
    fn optimistic_is_hit_time() {
        assert_eq!(CacheModel::l80_10().optimistic_latency(), 2.0);
    }

    #[test]
    fn degenerate_rates() {
        let always = CacheModel::new(1.0, 2, 5);
        let mut rng = Pcg32::seed_from_u64(1);
        assert!((0..100).all(|_| always.sample(&mut rng) == 2));
        let never = CacheModel::new(0.0, 2, 5);
        assert!((0..100).all(|_| never.sample(&mut rng) == 5));
    }

    #[test]
    #[should_panic(expected = "miss must not be faster than hit")]
    fn inverted_latencies_panic() {
        let _ = CacheModel::new(0.5, 5, 2);
    }

    #[test]
    #[should_panic(expected = "hit rate must be in")]
    fn bad_rate_panics() {
        let _ = CacheModel::new(1.5, 2, 5);
    }
}
