//! Crash-safe evaluation journal.
//!
//! [`run_cells_reported`](crate::run_cells_reported) records every
//! terminal cell outcome to a JSONL file (one object per line) named by
//! `BSCHED_JOURNAL`. Each write rewrites the whole file to a sibling
//! temp file and renames it over the original, so the journal on disk is
//! always a complete, parseable prefix of the run — killing the process
//! at any instant loses at most the in-flight cell. A re-run with the
//! same configuration loads the journal and *resumes*: recorded cells
//! are returned verbatim instead of re-evaluated.
//!
//! The first line is a header carrying a fingerprint of everything that
//! determines cell values (master seed, runs, fault plan, and the shape
//! of the job list). A journal whose fingerprint does not match the
//! current run is discarded, never merged — resuming must be
//! bit-identical to not having crashed.
//!
//! Floats are serialised as 16-hex-digit [`f64::to_bits`] strings, not
//! decimal, so a resumed cell is bit-for-bit the cell that was measured.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bsched_analyze::FailureKind;
use bsched_pipeline::ProgramEval;
use bsched_stats::{ConfidenceInterval, Improvement};

use crate::Cell;

/// Magic first-field value identifying a journal file and its version.
const MAGIC: &str = "bsched-journal-v1";

/// One recorded terminal outcome.
#[derive(Debug, Clone)]
pub enum JournalEntry {
    /// The cell evaluated cleanly (possibly after retries).
    Ok(Cell),
    /// The cell degraded to a typed failure.
    Failed {
        /// Stable failure-vocabulary id.
        kind: FailureKind,
        /// Human-readable reason.
        reason: String,
    },
}

struct State {
    /// Serialised cell lines, in write order (header not included).
    lines: Vec<String>,
    /// Key → entry for lookup; mirrors `lines`.
    entries: HashMap<String, JournalEntry>,
}

/// A crash-safe, resumable record of per-cell outcomes.
pub struct Journal {
    path: PathBuf,
    header: String,
    state: Mutex<State>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a run identified by
    /// `fingerprint`. An existing journal with a matching fingerprint is
    /// loaded for resumption; a mismatched or unparseable one is
    /// discarded. Unparseable *lines* are skipped individually.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the parent directory or writing
    /// the initial header.
    pub fn open(path: impl Into<PathBuf>, fingerprint: &str) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let header = format!(
            "{{\"journal\":{},\"fingerprint\":{}}}",
            esc(MAGIC),
            esc(fingerprint)
        );
        let mut state = State {
            lines: Vec::new(),
            entries: HashMap::new(),
        };
        if let Ok(existing) = std::fs::read_to_string(&path) {
            let mut lines = existing.lines();
            if lines
                .next()
                .is_some_and(|first| header_matches(first, fingerprint))
            {
                for line in lines {
                    if let Some((key, entry)) = parse_cell_line(line) {
                        state.entries.insert(key, entry);
                        state.lines.push(line.to_owned());
                    }
                }
            }
        }
        let journal = Journal {
            path,
            header,
            state: Mutex::new(state),
        };
        journal.rewrite(&journal.state.lock().unwrap().lines)?;
        Ok(journal)
    }

    /// Opens the journal named by `BSCHED_JOURNAL`, if set. I/O failures
    /// are reported to stderr and disable journaling rather than abort
    /// the run.
    #[must_use]
    pub fn from_env(fingerprint: &str) -> Option<Journal> {
        let path = std::env::var("BSCHED_JOURNAL").ok()?;
        if path.trim().is_empty() {
            return None;
        }
        match Journal::open(path.clone(), fingerprint) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("warning: BSCHED_JOURNAL={path}: {e}; journaling disabled");
                None
            }
        }
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded entry for `key`, if any.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<JournalEntry> {
        self.state.lock().unwrap().entries.get(key).cloned()
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a terminal outcome for `key` and atomically rewrites the
    /// file. Re-recording a key overwrites its lookup entry but keeps
    /// the newest line. Write errors are reported to stderr — losing the
    /// journal must not fail the run itself.
    pub fn record(&self, key: &str, entry: &JournalEntry) {
        let line = render_cell_line(key, entry);
        let mut state = self.state.lock().unwrap();
        if state.entries.contains_key(key) {
            state
                .lines
                .retain(|l| parse_cell_line(l).is_none_or(|(k, _)| k != key));
        }
        state.entries.insert(key.to_owned(), entry.clone());
        state.lines.push(line);
        if let Err(e) = self.rewrite(&state.lines) {
            eprintln!("warning: journal {}: {e}", self.path.display());
        }
    }

    /// Deletes the journal file (called after a complete, clean pass so
    /// the next run starts fresh).
    pub fn remove(self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{}", self.header)?;
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

fn header_matches(line: &str, fingerprint: &str) -> bool {
    let Some(Json::Obj(fields)) = parse_json(line) else {
        return false;
    };
    get_str(&fields, "journal") == Some(MAGIC)
        && get_str(&fields, "fingerprint") == Some(fingerprint)
}

// ---------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------

/// Escapes `s` as a JSON string literal (RFC 8259).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One f64, bit-exact, as a 16-hex-digit JSON string.
fn hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn hex_list(vs: &[f64]) -> String {
    let inner: Vec<String> = vs.iter().map(|v| hex(*v)).collect();
    format!("[{}]", inner.join(","))
}

fn eval_json(e: &ProgramEval) -> String {
    format!(
        "{{\"boot\":{},\"mean\":{},\"dyn\":{},\"ilk\":{}}}",
        hex_list(&e.bootstrap_runtimes),
        hex(e.mean_runtime),
        hex(e.dynamic_instructions),
        hex(e.mean_interlocks)
    )
}

fn render_cell_line(key: &str, entry: &JournalEntry) -> String {
    match entry {
        JournalEntry::Ok(cell) => format!(
            "{{\"key\":{},\"status\":\"ok\",\"imp\":{{\"mean\":{},\"low\":{},\"high\":{},\"level\":{}}},\"trad\":{},\"bal\":{},\"tspill\":{},\"bspill\":{}}}",
            esc(key),
            hex(cell.improvement.mean_percent),
            hex(cell.improvement.interval.low),
            hex(cell.improvement.interval.high),
            hex(cell.improvement.interval.level),
            eval_json(&cell.traditional),
            eval_json(&cell.balanced),
            hex(cell.traditional_spill_percent),
            hex(cell.balanced_spill_percent)
        ),
        JournalEntry::Failed { kind, reason } => format!(
            "{{\"key\":{},\"status\":\"failed\",\"kind\":{},\"reason\":{}}}",
            esc(key),
            esc(kind.id()),
            esc(reason)
        ),
    }
}

// ---------------------------------------------------------------------
// Deserialisation — a minimal recursive-descent JSON reader. The crate
// policy is no external dependencies, and the journal only ever contains
// objects, arrays and strings (floats travel as hex strings), so this
// stays small. Unparseable input yields `None`, never a panic: a torn
// or hand-edited line is simply not resumed.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn parse_json(src: &str) -> Option<Json> {
    let bytes = src.as_bytes();
    let mut at = 0usize;
    let value = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Option<Json> {
    skip_ws(bytes, at);
    match bytes.get(*at)? {
        b'"' => parse_string(bytes, at).map(Json::Str),
        b'{' => parse_object(bytes, at),
        b'[' => parse_array(bytes, at),
        b't' => parse_literal(bytes, at, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, at, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, at, "null", Json::Null),
        _ => parse_number(bytes, at),
    }
}

fn parse_literal(bytes: &[u8], at: &mut usize, word: &str, value: Json) -> Option<Json> {
    if bytes[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Option<Json> {
    let start = *at;
    while *at < bytes.len() && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *at += 1;
    }
    std::str::from_utf8(&bytes[start..*at])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Option<String> {
    if bytes.get(*at) != Some(&b'"') {
        return None;
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*at)? {
            b'"' => {
                *at += 1;
                return Some(out);
            }
            b'\\' => {
                *at += 1;
                match bytes.get(*at)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let digits = bytes.get(*at + 1..*at + 5)?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(digits).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *at += 4;
                    }
                    _ => return None,
                }
                *at += 1;
            }
            _ => {
                // Advance over one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*at..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Option<Json> {
    *at += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b']' => {
                *at += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Option<Json> {
    *at += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        skip_ws(bytes, at);
        if bytes.get(*at) != Some(&b':') {
            return None;
        }
        *at += 1;
        let value = parse_value(bytes, at)?;
        fields.push((key, value));
        skip_ws(bytes, at);
        match bytes.get(*at)? {
            b',' => *at += 1,
            b'}' => {
                *at += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    match get(fields, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn unhex(v: &Json) -> Option<f64> {
    match v {
        Json::Str(s) if s.len() == 16 => u64::from_str_radix(s, 16).ok().map(f64::from_bits),
        _ => None,
    }
}

fn get_f64(fields: &[(String, Json)], key: &str) -> Option<f64> {
    unhex(get(fields, key)?)
}

fn parse_eval(v: &Json) -> Option<ProgramEval> {
    let Json::Obj(fields) = v else { return None };
    let Json::Arr(boot) = get(fields, "boot")? else {
        return None;
    };
    Some(ProgramEval {
        bootstrap_runtimes: boot.iter().map(unhex).collect::<Option<Vec<f64>>>()?,
        mean_runtime: get_f64(fields, "mean")?,
        dynamic_instructions: get_f64(fields, "dyn")?,
        mean_interlocks: get_f64(fields, "ilk")?,
    })
}

fn parse_cell_line(line: &str) -> Option<(String, JournalEntry)> {
    let Json::Obj(fields) = parse_json(line)? else {
        return None;
    };
    let key = get_str(&fields, "key")?.to_owned();
    match get_str(&fields, "status")? {
        "ok" => {
            let Json::Obj(imp) = get(&fields, "imp")? else {
                return None;
            };
            let cell = Cell {
                improvement: Improvement {
                    mean_percent: get_f64(imp, "mean")?,
                    interval: ConfidenceInterval {
                        low: get_f64(imp, "low")?,
                        high: get_f64(imp, "high")?,
                        level: get_f64(imp, "level")?,
                    },
                },
                traditional: parse_eval(get(&fields, "trad")?)?,
                balanced: parse_eval(get(&fields, "bal")?)?,
                traditional_spill_percent: get_f64(&fields, "tspill")?,
                balanced_spill_percent: get_f64(&fields, "bspill")?,
            };
            Some((key, JournalEntry::Ok(cell)))
        }
        "failed" => Some((
            key,
            JournalEntry::Failed {
                kind: FailureKind::from_id(get_str(&fields, "kind")?)?,
                reason: get_str(&fields, "reason")?.to_owned(),
            },
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> Cell {
        Cell {
            improvement: Improvement {
                mean_percent: 9.875,
                interval: ConfidenceInterval {
                    low: -1.5,
                    high: 12.25,
                    level: 0.95,
                },
            },
            traditional: ProgramEval {
                // PI/3 has no short decimal form — proves bit-exactness.
                bootstrap_runtimes: vec![100.0, 101.5, std::f64::consts::PI / 3.0],
                mean_runtime: 100.75,
                dynamic_instructions: 42.0,
                mean_interlocks: 7.125,
            },
            balanced: ProgramEval {
                bootstrap_runtimes: vec![90.0, 91.5],
                mean_runtime: 90.75,
                dynamic_instructions: 42.0,
                mean_interlocks: 3.0,
            },
            traditional_spill_percent: 1.25,
            balanced_spill_percent: 2.5,
        }
    }

    fn assert_cells_identical(a: &Cell, b: &Cell) {
        assert_eq!(
            a.improvement.mean_percent.to_bits(),
            b.improvement.mean_percent.to_bits()
        );
        assert_eq!(
            a.improvement.interval.low.to_bits(),
            b.improvement.interval.low.to_bits()
        );
        assert_eq!(
            a.improvement.interval.high.to_bits(),
            b.improvement.interval.high.to_bits()
        );
        assert_eq!(
            a.improvement.interval.level.to_bits(),
            b.improvement.interval.level.to_bits()
        );
        for (x, y) in [(&a.traditional, &b.traditional), (&a.balanced, &b.balanced)] {
            assert_eq!(
                x.bootstrap_runtimes
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                y.bootstrap_runtimes
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(x.mean_runtime.to_bits(), y.mean_runtime.to_bits());
            assert_eq!(
                x.dynamic_instructions.to_bits(),
                y.dynamic_instructions.to_bits()
            );
            assert_eq!(x.mean_interlocks.to_bits(), y.mean_interlocks.to_bits());
        }
        assert_eq!(
            a.traditional_spill_percent.to_bits(),
            b.traditional_spill_percent.to_bits()
        );
        assert_eq!(
            a.balanced_spill_percent.to_bits(),
            b.balanced_spill_percent.to_bits()
        );
    }

    #[test]
    fn cell_lines_roundtrip_bit_exactly() {
        let cell = sample_cell();
        let line = render_cell_line("MDG|N(2,2) @ 2|UNLIMITED", &JournalEntry::Ok(cell.clone()));
        let (key, entry) = parse_cell_line(&line).expect("roundtrip");
        assert_eq!(key, "MDG|N(2,2) @ 2|UNLIMITED");
        match entry {
            JournalEntry::Ok(parsed) => assert_cells_identical(&cell, &parsed),
            JournalEntry::Failed { .. } => panic!("expected ok"),
        }
    }

    #[test]
    fn failed_lines_roundtrip() {
        let entry = JournalEntry::Failed {
            kind: FailureKind::Timeout,
            reason: "timed out after 5s \"hard\"".to_owned(),
        };
        let line = render_cell_line("k", &entry);
        let (key, parsed) = parse_cell_line(&line).expect("roundtrip");
        assert_eq!(key, "k");
        match parsed {
            JournalEntry::Failed { kind, reason } => {
                assert_eq!(kind, FailureKind::Timeout);
                assert_eq!(reason, "timed out after 5s \"hard\"");
            }
            JournalEntry::Ok(_) => panic!("expected failed"),
        }
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped() {
        assert_eq!(parse_cell_line("").map(|(k, _)| k), None);
        assert_eq!(
            parse_cell_line("{\"key\":\"x\",\"status\":\"ok\",").map(|(k, _)| k),
            None
        );
        assert_eq!(parse_cell_line("not json at all").map(|(k, _)| k), None);
        assert_eq!(
            parse_cell_line("{\"key\":\"x\",\"status\":\"weird\"}").map(|(k, _)| k),
            None
        );
    }

    #[test]
    fn journal_survives_reopen_and_rejects_other_fingerprints() {
        let dir = std::env::temp_dir().join(format!(
            "bsched-journal-test-{}-{:x}",
            std::process::id(),
            std::ptr::from_ref(&MAGIC) as usize
        ));
        let path = dir.join("results/.journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);

        let j = Journal::open(&path, "fp-a").expect("open");
        assert!(j.is_empty());
        j.record("cell-1", &JournalEntry::Ok(sample_cell()));
        j.record(
            "cell-2",
            &JournalEntry::Failed {
                kind: FailureKind::Panic,
                reason: "boom".to_owned(),
            },
        );
        assert_eq!(j.len(), 2);
        drop(j);

        let j = Journal::open(&path, "fp-a").expect("reopen");
        assert_eq!(j.len(), 2, "matching fingerprint resumes");
        assert!(matches!(j.lookup("cell-1"), Some(JournalEntry::Ok(_))));
        assert!(matches!(
            j.lookup("cell-2"),
            Some(JournalEntry::Failed {
                kind: FailureKind::Panic,
                ..
            })
        ));
        drop(j);

        let j = Journal::open(&path, "fp-b").expect("reopen changed");
        assert!(j.is_empty(), "changed fingerprint discards the journal");
        drop(j);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_and_match() {
        let good = format!("{{\"journal\":\"{MAGIC}\",\"fingerprint\":\"abc\"}}");
        assert!(header_matches(&good, "abc"));
        assert!(!header_matches(&good, "xyz"));
        assert!(!header_matches("{}", "abc"));
        assert!(!header_matches("", "abc"));
    }
}
