//! Crash-safe evaluation journal.
//!
//! [`run_cells_reported`](crate::run_cells_reported) records every
//! terminal cell outcome to a JSONL file (one object per line) named by
//! `BSCHED_JOURNAL`. Each write rewrites the whole file to a sibling
//! temp file and renames it over the original, so the journal on disk is
//! always a complete, parseable prefix of the run — killing the process
//! at any instant loses at most the in-flight cell. A re-run with the
//! same configuration loads the journal and *resumes*: recorded cells
//! are returned verbatim instead of re-evaluated.
//!
//! The first line is a header carrying a fingerprint of everything that
//! determines cell values (master seed, runs, fault plan, and the shape
//! of the job list). A journal whose fingerprint does not match the
//! current run is discarded **whole**, never merged or partially
//! resumed — resuming must be bit-identical to not having crashed — and
//! the discard is reported ([`Journal::discarded`], surfaced on stderr
//! by [`Journal::from_env`]).
//!
//! Floats are serialised as 16-hex-digit [`f64::to_bits`] strings, not
//! decimal, so a resumed cell is bit-for-bit the cell that was measured.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bsched_analyze::json::{self, Json};
use bsched_analyze::FailureKind;
use bsched_pipeline::ProgramEval;
use bsched_stats::{ConfidenceInterval, Improvement};

use crate::Cell;

/// Magic first-field value identifying a journal file and its version.
const MAGIC: &str = "bsched-journal-v1";

/// One recorded terminal outcome.
#[derive(Debug, Clone)]
pub enum JournalEntry {
    /// The cell evaluated cleanly (possibly after retries).
    Ok(Cell),
    /// The cell degraded to a typed failure.
    Failed {
        /// Stable failure-vocabulary id.
        kind: FailureKind,
        /// Human-readable reason.
        reason: String,
    },
}

struct State {
    /// Serialised cell lines, in write order (header not included).
    lines: Vec<String>,
    /// Key → entry for lookup; mirrors `lines`.
    entries: HashMap<String, JournalEntry>,
}

/// A crash-safe, resumable record of per-cell outcomes.
pub struct Journal {
    path: PathBuf,
    header: String,
    state: Mutex<State>,
    /// Recorded cells found on disk but thrown away because the file's
    /// fingerprint did not match this run's.
    discarded: usize,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a run identified by
    /// `fingerprint`. An existing journal with a matching fingerprint is
    /// loaded for resumption; a mismatched or unparseable one is
    /// discarded whole — never partially resumed — with the number of
    /// thrown-away cells reported via [`discarded`](Journal::discarded).
    /// Unparseable *lines* are skipped individually.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the parent directory or writing
    /// the initial header.
    pub fn open(path: impl Into<PathBuf>, fingerprint: &str) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let header = format!(
            "{{\"journal\":{},\"fingerprint\":{}}}",
            json::string(MAGIC),
            json::string(fingerprint)
        );
        let mut state = State {
            lines: Vec::new(),
            entries: HashMap::new(),
        };
        let mut discarded = 0;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            let mut lines = existing.lines();
            if lines
                .next()
                .is_some_and(|first| header_matches(first, fingerprint))
            {
                for line in lines {
                    if let Some((key, entry)) = parse_cell_line(line) {
                        state.entries.insert(key, entry);
                        state.lines.push(line.to_owned());
                    }
                }
            } else {
                // Count what a matching fingerprint would have resumed,
                // so the discard can be reported rather than silent.
                discarded = lines.filter(|l| parse_cell_line(l).is_some()).count();
            }
        }
        let journal = Journal {
            path,
            header,
            state: Mutex::new(state),
            discarded,
        };
        journal.rewrite(&journal.state.lock().unwrap().lines)?;
        Ok(journal)
    }

    /// Opens the journal named by `BSCHED_JOURNAL`, if set. I/O failures
    /// are reported to stderr and disable journaling rather than abort
    /// the run; a fingerprint mismatch (the journal came from a run with
    /// a different seed, run count, job list, or fault plan) reports how
    /// many recorded cells were discarded.
    #[must_use]
    pub fn from_env(fingerprint: &str) -> Option<Journal> {
        let path = std::env::var("BSCHED_JOURNAL").ok()?;
        if path.trim().is_empty() {
            return None;
        }
        match Journal::open(path.clone(), fingerprint) {
            Ok(j) => {
                if j.discarded() > 0 {
                    eprintln!(
                        "warning: BSCHED_JOURNAL={path}: fingerprint changed (seed, runs, \
                         job list, or fault plan differ); discarded {} recorded cell{} \
                         instead of resuming",
                        j.discarded(),
                        if j.discarded() == 1 { "" } else { "s" }
                    );
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("warning: BSCHED_JOURNAL={path}: {e}; journaling disabled");
                None
            }
        }
    }

    /// Number of recorded cells found on disk but discarded because the
    /// journal's fingerprint did not match this run's.
    #[must_use]
    pub fn discarded(&self) -> usize {
        self.discarded
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded entry for `key`, if any.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<JournalEntry> {
        self.state.lock().unwrap().entries.get(key).cloned()
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a terminal outcome for `key` and atomically rewrites the
    /// file. Re-recording a key overwrites its lookup entry but keeps
    /// the newest line. Write errors are reported to stderr — losing the
    /// journal must not fail the run itself.
    pub fn record(&self, key: &str, entry: &JournalEntry) {
        let line = render_cell_line(key, entry);
        let mut state = self.state.lock().unwrap();
        if state.entries.contains_key(key) {
            state
                .lines
                .retain(|l| parse_cell_line(l).is_none_or(|(k, _)| k != key));
        }
        state.entries.insert(key.to_owned(), entry.clone());
        state.lines.push(line);
        if let Err(e) = self.rewrite(&state.lines) {
            eprintln!("warning: journal {}: {e}", self.path.display());
        }
    }

    /// Deletes the journal file (called after a complete, clean pass so
    /// the next run starts fresh).
    pub fn remove(self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{}", self.header)?;
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

fn header_matches(line: &str, fingerprint: &str) -> bool {
    let Some(v) = json::parse(line) else {
        return false;
    };
    v.get("journal").and_then(Json::as_str) == Some(MAGIC)
        && v.get("fingerprint").and_then(Json::as_str) == Some(fingerprint)
}

// ---------------------------------------------------------------------
// Serialisation. Reading goes through the shared
// [`bsched_analyze::json`] parser; only the journal-specific rendering
// and the hex-bit float convention live here.
// ---------------------------------------------------------------------

/// One f64, bit-exact, as a 16-hex-digit JSON string.
fn hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn hex_list(vs: &[f64]) -> String {
    let inner: Vec<String> = vs.iter().map(|v| hex(*v)).collect();
    format!("[{}]", inner.join(","))
}

fn eval_json(e: &ProgramEval) -> String {
    format!(
        "{{\"boot\":{},\"mean\":{},\"dyn\":{},\"ilk\":{}}}",
        hex_list(&e.bootstrap_runtimes),
        hex(e.mean_runtime),
        hex(e.dynamic_instructions),
        hex(e.mean_interlocks)
    )
}

fn render_cell_line(key: &str, entry: &JournalEntry) -> String {
    match entry {
        JournalEntry::Ok(cell) => format!(
            "{{\"key\":{},\"status\":\"ok\",\"imp\":{{\"mean\":{},\"low\":{},\"high\":{},\"level\":{}}},\"trad\":{},\"bal\":{},\"tspill\":{},\"bspill\":{}}}",
            json::string(key),
            hex(cell.improvement.mean_percent),
            hex(cell.improvement.interval.low),
            hex(cell.improvement.interval.high),
            hex(cell.improvement.interval.level),
            eval_json(&cell.traditional),
            eval_json(&cell.balanced),
            hex(cell.traditional_spill_percent),
            hex(cell.balanced_spill_percent)
        ),
        JournalEntry::Failed { kind, reason } => format!(
            "{{\"key\":{},\"status\":\"failed\",\"kind\":{},\"reason\":{}}}",
            json::string(key),
            json::string(kind.id()),
            json::string(reason)
        ),
    }
}

// ---------------------------------------------------------------------
// Deserialisation, on top of the shared reader. Unparseable input yields
// `None`, never a panic: a torn or hand-edited line is simply not
// resumed.
// ---------------------------------------------------------------------

fn unhex(v: &Json) -> Option<f64> {
    match v.as_str() {
        Some(s) if s.len() == 16 => u64::from_str_radix(s, 16).ok().map(f64::from_bits),
        _ => None,
    }
}

fn get_f64(obj: &Json, key: &str) -> Option<f64> {
    unhex(obj.get(key)?)
}

fn parse_eval(v: &Json) -> Option<ProgramEval> {
    let boot = v.get("boot")?.as_array()?;
    Some(ProgramEval {
        bootstrap_runtimes: boot.iter().map(unhex).collect::<Option<Vec<f64>>>()?,
        mean_runtime: get_f64(v, "mean")?,
        dynamic_instructions: get_f64(v, "dyn")?,
        mean_interlocks: get_f64(v, "ilk")?,
    })
}

fn parse_cell_line(line: &str) -> Option<(String, JournalEntry)> {
    let v = json::parse(line)?;
    v.as_object()?;
    let key = v.get("key")?.as_str()?.to_owned();
    match v.get("status")?.as_str()? {
        "ok" => {
            let imp = v.get("imp")?;
            let cell = Cell {
                improvement: Improvement {
                    mean_percent: get_f64(imp, "mean")?,
                    interval: ConfidenceInterval {
                        low: get_f64(imp, "low")?,
                        high: get_f64(imp, "high")?,
                        level: get_f64(imp, "level")?,
                    },
                },
                traditional: parse_eval(v.get("trad")?)?,
                balanced: parse_eval(v.get("bal")?)?,
                traditional_spill_percent: get_f64(&v, "tspill")?,
                balanced_spill_percent: get_f64(&v, "bspill")?,
            };
            Some((key, JournalEntry::Ok(cell)))
        }
        "failed" => Some((
            key,
            JournalEntry::Failed {
                kind: FailureKind::from_id(v.get("kind")?.as_str()?)?,
                reason: v.get("reason")?.as_str()?.to_owned(),
            },
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> Cell {
        Cell {
            improvement: Improvement {
                mean_percent: 9.875,
                interval: ConfidenceInterval {
                    low: -1.5,
                    high: 12.25,
                    level: 0.95,
                },
            },
            traditional: ProgramEval {
                // PI/3 has no short decimal form — proves bit-exactness.
                bootstrap_runtimes: vec![100.0, 101.5, std::f64::consts::PI / 3.0],
                mean_runtime: 100.75,
                dynamic_instructions: 42.0,
                mean_interlocks: 7.125,
            },
            balanced: ProgramEval {
                bootstrap_runtimes: vec![90.0, 91.5],
                mean_runtime: 90.75,
                dynamic_instructions: 42.0,
                mean_interlocks: 3.0,
            },
            traditional_spill_percent: 1.25,
            balanced_spill_percent: 2.5,
        }
    }

    fn assert_cells_identical(a: &Cell, b: &Cell) {
        assert_eq!(
            a.improvement.mean_percent.to_bits(),
            b.improvement.mean_percent.to_bits()
        );
        assert_eq!(
            a.improvement.interval.low.to_bits(),
            b.improvement.interval.low.to_bits()
        );
        assert_eq!(
            a.improvement.interval.high.to_bits(),
            b.improvement.interval.high.to_bits()
        );
        assert_eq!(
            a.improvement.interval.level.to_bits(),
            b.improvement.interval.level.to_bits()
        );
        for (x, y) in [(&a.traditional, &b.traditional), (&a.balanced, &b.balanced)] {
            assert_eq!(
                x.bootstrap_runtimes
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                y.bootstrap_runtimes
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(x.mean_runtime.to_bits(), y.mean_runtime.to_bits());
            assert_eq!(
                x.dynamic_instructions.to_bits(),
                y.dynamic_instructions.to_bits()
            );
            assert_eq!(x.mean_interlocks.to_bits(), y.mean_interlocks.to_bits());
        }
        assert_eq!(
            a.traditional_spill_percent.to_bits(),
            b.traditional_spill_percent.to_bits()
        );
        assert_eq!(
            a.balanced_spill_percent.to_bits(),
            b.balanced_spill_percent.to_bits()
        );
    }

    #[test]
    fn cell_lines_roundtrip_bit_exactly() {
        let cell = sample_cell();
        let line = render_cell_line("MDG|N(2,2) @ 2|UNLIMITED", &JournalEntry::Ok(cell.clone()));
        let (key, entry) = parse_cell_line(&line).expect("roundtrip");
        assert_eq!(key, "MDG|N(2,2) @ 2|UNLIMITED");
        match entry {
            JournalEntry::Ok(parsed) => assert_cells_identical(&cell, &parsed),
            JournalEntry::Failed { .. } => panic!("expected ok"),
        }
    }

    #[test]
    fn failed_lines_roundtrip() {
        let entry = JournalEntry::Failed {
            kind: FailureKind::Timeout,
            reason: "timed out after 5s \"hard\"".to_owned(),
        };
        let line = render_cell_line("k", &entry);
        let (key, parsed) = parse_cell_line(&line).expect("roundtrip");
        assert_eq!(key, "k");
        match parsed {
            JournalEntry::Failed { kind, reason } => {
                assert_eq!(kind, FailureKind::Timeout);
                assert_eq!(reason, "timed out after 5s \"hard\"");
            }
            JournalEntry::Ok(_) => panic!("expected failed"),
        }
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped() {
        assert_eq!(parse_cell_line("").map(|(k, _)| k), None);
        assert_eq!(
            parse_cell_line("{\"key\":\"x\",\"status\":\"ok\",").map(|(k, _)| k),
            None
        );
        assert_eq!(parse_cell_line("not json at all").map(|(k, _)| k), None);
        assert_eq!(
            parse_cell_line("{\"key\":\"x\",\"status\":\"weird\"}").map(|(k, _)| k),
            None
        );
    }

    #[test]
    fn journal_survives_reopen_and_rejects_other_fingerprints() {
        let dir = std::env::temp_dir().join(format!(
            "bsched-journal-test-{}-{:x}",
            std::process::id(),
            std::ptr::from_ref(&MAGIC) as usize
        ));
        let path = dir.join("results/.journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);

        let j = Journal::open(&path, "fp-a").expect("open");
        assert!(j.is_empty());
        j.record("cell-1", &JournalEntry::Ok(sample_cell()));
        j.record(
            "cell-2",
            &JournalEntry::Failed {
                kind: FailureKind::Panic,
                reason: "boom".to_owned(),
            },
        );
        assert_eq!(j.len(), 2);
        drop(j);

        let j = Journal::open(&path, "fp-a").expect("reopen");
        assert_eq!(j.len(), 2, "matching fingerprint resumes");
        assert_eq!(j.discarded(), 0, "matching fingerprint discards nothing");
        assert!(matches!(j.lookup("cell-1"), Some(JournalEntry::Ok(_))));
        assert!(matches!(
            j.lookup("cell-2"),
            Some(JournalEntry::Failed {
                kind: FailureKind::Panic,
                ..
            })
        ));
        drop(j);

        let j = Journal::open(&path, "fp-b").expect("reopen changed");
        assert!(j.is_empty(), "changed fingerprint discards the journal");
        assert_eq!(
            j.discarded(),
            2,
            "the discard is counted, not silent — both cells were thrown away"
        );
        assert!(
            j.lookup("cell-1").is_none() && j.lookup("cell-2").is_none(),
            "discard is whole: no cell is partially resumed"
        );
        drop(j);

        // A later reopen under the *new* fingerprint resumes nothing and
        // reports nothing discarded: the mismatched file was truncated.
        let j = Journal::open(&path, "fp-b").expect("reopen truncated");
        assert!(j.is_empty());
        assert_eq!(j.discarded(), 0);
        drop(j);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_and_match() {
        let good = format!("{{\"journal\":\"{MAGIC}\",\"fingerprint\":\"abc\"}}");
        assert!(header_matches(&good, "abc"));
        assert!(!header_matches(&good, "xyz"));
        assert!(!header_matches("{}", "abc"));
        assert!(!header_matches("", "abc"));
    }
}
